//! Bring your own data: persist a registry to CSV, load it back, and run
//! the full algorithm suite — including the synthetic benchmark
//! distributions (independent / correlated / anti-correlated) that stress
//! skyline algorithms in opposite ways.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_synthetic, Dataset, Distribution, SyntheticConfig};

fn main() {
    let dir = std::env::temp_dir().join("mr-skyline-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        let data = generate_synthetic(&SyntheticConfig::new(5_000, 4, dist));

        // round-trip through CSV, as a user loading their own file would
        let path = dir.join(format!("{}.csv", dist.name()));
        data.save_csv(&path).expect("write CSV");
        let loaded = Dataset::load_csv(data.name.clone(), &path).expect("read CSV");
        assert_eq!(loaded.len(), data.len());

        let report = SkylineJob::new(Algorithm::MrAngle, 8).run(&loaded);
        println!(
            "{:<28} skyline {:>5} of {:>5}  ({:>5.1}% )  sim {:>6.1}s  LSO {:.3}",
            data.name,
            report.global_skyline.len(),
            loaded.len(),
            100.0 * report.global_skyline.len() as f64 / loaded.len() as f64,
            report.processing_time(),
            report.optimality,
        );
        std::fs::remove_file(&path).ok();
    }

    println!("\ncorrelated data collapses to a handful of skyline services;");
    println!("anti-correlated data (every trade-off is real) keeps most of the");
    println!("registry on the skyline — the adversarial case for any partitioner.");
}
