//! Dynamic registries: services come and go (the paper's UDDI churn
//! scenario, Section II). A [`MaintainedRegistry`] keeps the skyline live by
//! touching only the affected partition per event, and this example measures
//! how much cheaper that is than recomputing from scratch.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::dataset::{update_stream, Update};
use mr_skyline_suite::qws::{generate_qws, QwsConfig};
use mr_skyline_suite::skyline::bnl::{bnl_skyline_stats, BnlConfig};

fn main() {
    let registry_data = generate_qws(&QwsConfig::new(10_000, 4));
    let events = update_stream(&registry_data, 500, 0.6, 0.08, 42);

    // --- incremental maintenance ---
    let mut registry = MaintainedRegistry::bootstrap(Algorithm::MrAngle, 8, &registry_data)
        .expect("partitioner fit");
    let bootstrap_comparisons = registry.comparisons();
    println!(
        "bootstrapped {} services, skyline {} ({} comparisons)\n",
        registry.len(),
        registry.skyline().len(),
        bootstrap_comparisons
    );

    let mut skyline_changes = 0usize;
    for event in &events {
        if registry.apply(event) {
            skyline_changes += 1;
        }
    }
    let incremental_comparisons = registry.comparisons() - bootstrap_comparisons;
    let (adds, removals, _) = registry.churn_stats();
    println!(
        "applied {} events ({adds} adds, {removals} removals); skyline changed {skyline_changes} times",
        events.len()
    );
    println!(
        "incremental cost: {incremental_comparisons} comparisons ({} per event)\n",
        incremental_comparisons / events.len() as u64
    );

    // --- the "traditional approach": recompute after every event ---
    let mut live = registry_data.points().to_vec();
    let mut batch_comparisons = 0u64;
    for event in &events {
        match event {
            Update::Add(p) => live.push(p.clone()),
            Update::Remove(id) => {
                if let Some(pos) = live.iter().position(|p| p.id() == *id) {
                    live.swap_remove(pos);
                }
            }
        }
        let (_, stats) = bnl_skyline_stats(&live, &BnlConfig::default());
        batch_comparisons += stats.counter.comparisons();
    }
    println!(
        "batch recomputation cost: {batch_comparisons} comparisons ({} per event)",
        batch_comparisons / events.len() as u64
    );
    println!(
        "\nincremental maintenance is {:.0}x cheaper per event",
        batch_comparisons as f64 / incremental_comparisons as f64
    );

    // Consistency check: the maintained skyline equals the batch skyline.
    let (batch_sky, _) = bnl_skyline_stats(&live, &BnlConfig::default());
    let mut a: Vec<u64> = registry
        .skyline()
        .iter()
        .map(mr_skyline_suite::skyline::point::Point::id)
        .collect();
    let mut b: Vec<u64> = batch_sky
        .iter()
        .map(mr_skyline_suite::skyline::point::Point::id)
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "maintained skyline must equal the batch skyline");
    println!("consistency check passed: maintained skyline == batch skyline");
}
