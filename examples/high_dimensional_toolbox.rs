//! What to do when the skyline itself explodes: at 10 QoS attributes the
//! paper measures thousands of "optimal" services. This example runs the
//! post-processing toolbox on one dataset:
//!
//! * multi-core skyline computation (block vs angular chunking),
//! * k-dominant skylines (services good on at least k of d attributes),
//! * top-k dominating services,
//! * k representatives (coverage + diversity).
//!
//! ```text
//! cargo run --release --example high_dimensional_toolbox
//! ```

use mr_skyline_suite::qws::{generate_qws, QwsConfig};
use mr_skyline_suite::skyline::kdominant::k_dominant_skyline;
use mr_skyline_suite::skyline::parallel::{parallel_skyline_partitioned, parallel_skyline_stats};
use mr_skyline_suite::skyline::partition::AnglePartitioner;
use mr_skyline_suite::skyline::representative::{
    distance_based_representatives, max_dominance_representatives,
};
use mr_skyline_suite::skyline::topk::top_k_dominating;

fn main() {
    let d = 8;
    let registry = generate_qws(&QwsConfig::new(30_000, d));
    println!("{} services x {d} attributes\n", registry.len());

    // --- multi-core skyline, two chunking strategies ---
    let t0 = std::time::Instant::now();
    let (skyline, block_stats) =
        parallel_skyline_stats(registry.points(), 0).expect("block-chunked skyline");
    let block_wall = t0.elapsed().as_secs_f64();
    let partitioner =
        AnglePartitioner::fit_quantile(registry.points(), 16).expect("valid partitioner");
    let t0 = std::time::Instant::now();
    let (skyline_ang, angular_stats) =
        parallel_skyline_partitioned(registry.points(), &partitioner, 0)
            .expect("angular-chunked skyline");
    let angular_wall = t0.elapsed().as_secs_f64();
    assert_eq!(skyline.len(), skyline_ang.len());
    println!(
        "skyline: {} services ({:.1}% of the registry)",
        skyline.len(),
        100.0 * skyline.len() as f64 / registry.len() as f64
    );
    println!(
        "  block chunks:   {:>8} merge candidates, {:>11} local comparisons, {:.3}s wall",
        block_stats.merge_candidates, block_stats.local_comparisons, block_wall
    );
    println!(
        "  angular chunks: {:>8} merge candidates, {:>11} local comparisons, {:.3}s wall",
        angular_stats.merge_candidates, angular_stats.local_comparisons, angular_wall
    );

    // --- k-dominant skylines shrink the answer ---
    println!(
        "\nk-dominant skylines (within the {}-point skyline):",
        skyline.len()
    );
    for k in (d - 3..=d).rev() {
        let kd = k_dominant_skyline(&skyline, k);
        println!("  k = {k:>2}: {:>6} services survive", kd.len());
    }

    // --- top dominators ---
    println!("\ntop-5 dominating services (how much of the registry each beats):");
    for entry in top_k_dominating(registry.points(), 5) {
        println!(
            "  service {:<6} dominates {:>6} services ({:.1}%)",
            entry.point.id(),
            entry.dominated,
            100.0 * entry.dominated as f64 / registry.len() as f64
        );
    }

    // --- representatives ---
    let covering = max_dominance_representatives(&skyline, registry.points(), 5);
    let diverse = distance_based_representatives(&skyline, 5);
    println!(
        "\n5 covering representatives: {:?}",
        covering
            .iter()
            .map(mr_skyline_suite::skyline::point::Point::id)
            .collect::<Vec<_>>()
    );
    println!(
        "5 diverse representatives:  {:?}",
        diverse
            .iter()
            .map(mr_skyline_suite::skyline::point::Point::id)
            .collect::<Vec<_>>()
    );
}
