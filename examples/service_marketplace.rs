//! The full marketplace loop the paper's introduction sketches: a UDDI-style
//! registry with categorised providers, per-category skyline selection, and
//! a newly registered disruptive service showing up in the winners.
//!
//! ```text
//! cargo run --release --example service_marketplace
//! ```

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{Category, Registry};

fn main() {
    let mut registry = Registry::synthetic(12_000, 4, 2026);
    println!(
        "registry: {} services, {} categories, {} QoS attributes\n",
        registry.len(),
        Category::ALL.len(),
        registry.dims()
    );

    // --- per-category skyline selection ---
    println!("per-category skyline (the providers worth negotiating with):");
    for category in Category::ALL {
        let data = registry
            .category_dataset(category)
            .expect("synthetic registry populates every category");
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        println!(
            "  {:<14} {:>5} providers -> {:>3} skyline services (sim {:>5.1}s)",
            category.name(),
            data.len(),
            report.global_skyline.len(),
            report.processing_time()
        );
    }

    // --- a disruptive newcomer enters the weather market ---
    let weather_before = registry
        .category_dataset(Category::Weather)
        .expect("non-empty");
    let before = SkylineJob::new(Algorithm::MrAngle, 4).run(&weather_before);

    // strictly better than everything on the first two attributes
    let disruptive_qos = vec![0.0, 0.0, 50.0, 10.0];
    let id = registry.register(
        "hypercast-weather",
        "hypercast-inc",
        Category::Weather,
        disruptive_qos,
    );
    let weather_after = registry
        .category_dataset(Category::Weather)
        .expect("non-empty");
    let after = SkylineJob::new(Algorithm::MrAngle, 4).run(&weather_after);

    println!(
        "\nregistered disruptive service {id} (hypercast-weather): skyline {} -> {}",
        before.global_skyline.len(),
        after.global_skyline.len()
    );
    assert!(
        after.global_skyline.iter().any(|p| p.id() == id),
        "the newcomer must appear in the skyline"
    );
    let entry = registry.get(id).expect("registered");
    println!(
        "the newcomer is on the skyline: {} by {} (category {})",
        entry.name,
        entry.provider,
        entry.category.name()
    );

    // --- who did it knock out? ---
    let survivors: std::collections::HashSet<u64> = after
        .global_skyline
        .iter()
        .map(mr_skyline_suite::skyline::point::Point::id)
        .collect();
    let displaced: Vec<String> = before
        .global_skyline
        .iter()
        .filter(|p| !survivors.contains(&p.id()))
        .map(|p| {
            registry
                .get(p.id())
                .map(|e| e.name.clone())
                .unwrap_or_else(|| format!("service-{}", p.id()))
        })
        .collect();
    println!("displaced from the skyline: {displaced:?}");
}
