//! Scalability study in miniature (the paper's Figure 6): how the MR-Angle
//! processing time decomposes into Map and Reduce as the simulated cluster
//! grows — including the saturation past ~24 servers the paper reports.
//!
//! The cluster is *simulated*: task durations come from instrumented
//! counters and a Hadoop-era cost model, so you can "rent" 32 servers on a
//! laptop. The computation itself runs for real on your cores.
//!
//! ```text
//! cargo run --release --example cluster_scalability
//! ```

use mr_skyline_suite::mapreduce::scheduler::{schedule_phase, SpeculationConfig};
use mr_skyline_suite::mapreduce::timeline::render_timeline;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, QwsConfig};

fn bar(len: f64, scale: f64, ch: char) -> String {
    std::iter::repeat_n(ch, (len * scale) as usize).collect()
}

fn main() {
    let registry = generate_qws(&QwsConfig::new(50_000, 10));
    println!(
        "MR-Angle over {} services x {} attributes; partitions = 2 x servers\n",
        registry.len(),
        registry.dim()
    );
    println!(
        "{:<8} {:>9} {:>9} {:>9}   (m = map, r = reduce)",
        "servers", "map", "reduce", "total"
    );

    let mut first_total = None;
    for servers in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let report = SkylineJob::new(Algorithm::MrAngle, servers).run(&registry);
        let (m, r, t) = (
            report.map_time(),
            report.reduce_time(),
            report.processing_time(),
        );
        let scale = 0.35;
        println!(
            "{:<8} {:>8.1}s {:>8.1}s {:>8.1}s   {}{}",
            servers,
            m,
            r,
            t,
            bar(m, scale, 'm'),
            bar(r, scale, 'r'),
        );
        first_total.get_or_insert(t);
    }

    let report4 = SkylineJob::new(Algorithm::MrAngle, 4).run(&registry);
    let report32 = SkylineJob::new(Algorithm::MrAngle, 32).run(&registry);

    // Gantt view of the 4-server map phase: the same task durations the
    // simulator scheduled, re-placed deterministically for display. Each row
    // is a map slot; digits are task indices; waves are visible as columns.
    println!(
        "
map-phase Gantt at 4 servers (8 slots, digits = task index mod 10):"
    );
    let schedule = schedule_phase(
        &report4.metrics.map.task_durations,
        4 * 2,
        0.0,
        &SpeculationConfig::default(),
    );
    print!("{}", render_timeline(&schedule, 64));
    println!(
        "\n4 -> 32 servers: {:.1}s -> {:.1}s ({:.0}% faster). The Map waves shrink",
        report4.processing_time(),
        report32.processing_time(),
        100.0 * (1.0 - report32.processing_time() / report4.processing_time()),
    );
    println!("with the cluster while the single-reducer merge does not — which is");
    println!("exactly the saturation the paper observes beyond ~24 servers.");
}
