//! Five-minute tour: generate a QWS-like service registry, run the paper's
//! three MapReduce skyline algorithms on a simulated 8-server cluster, and
//! compare them on processing time and local skyline optimality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, QwsConfig};

fn main() {
    // 5,000 web services with 6 QoS attributes (response time, price,
    // latency, availability, throughput, successability), oriented so lower
    // is better on every axis.
    let registry = generate_qws(&QwsConfig::new(5_000, 6));
    println!(
        "registry: {} services x {} attributes ({})\n",
        registry.len(),
        registry.dim(),
        registry.name
    );

    let servers = 8;
    println!("running MR-Dim / MR-Grid / MR-Angle on {servers} simulated servers...\n");
    for algorithm in Algorithm::paper_trio() {
        let report = SkylineJob::new(algorithm, servers).run(&registry);
        println!("{}", report.summary());

        // Every algorithm must produce the same skyline — only the cost of
        // getting there differs. Verify against an independent oracle.
        validate_report(&report, &registry).expect("skyline must match the oracle");
    }

    println!("\nAll three algorithms agree with the sequential oracle.");
    println!("Note MR-Angle's highest local skyline optimality (LSO): its local");
    println!("winners are most likely to be globally optimal, which is the paper's");
    println!("headline quality effect. The time gaps widen with cardinality and");
    println!("dimensionality — see the fig5/fig6 harnesses in mr-skyline-bench.");
}
