//! The paper's motivating scenario end-to-end: a user asks a registry of
//! 20,000 weather-forecast services for "the best" providers, with their own
//! idea of what matters — and gets an answer assembled from a MapReduce
//! skyline, a weighted ranking, and a k-representative summary.
//!
//! ```text
//! cargo run --release --example web_service_selection
//! ```

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, QwsConfig, QWS_ATTRIBUTES};

fn show(title: &str, result: &mr_skyline_suite::mr::SelectionResult, dims: usize) {
    println!("--- {title} ---");
    println!(
        "skyline: {} of {} services are non-dominated (computed in {:.1} simulated s)",
        result.skyline_size,
        result.report.cardinality,
        result.report.processing_time()
    );
    for (rank, (service, score)) in result.ranked.iter().enumerate() {
        let attrs: Vec<String> = (0..dims)
            .map(|i| format!("{}={:.0}", QWS_ATTRIBUTES[i].name, service.coord(i)))
            .collect();
        println!(
            "  #{:<2} service {:<6} score {:.3}  [{}]",
            rank + 1,
            service.id(),
            score,
            attrs.join(", ")
        );
    }
    println!();
}

fn main() {
    let dims = 4; // response_time, price, latency, availability (oriented)
    let registry = generate_qws(&QwsConfig::new(20_000, dims));
    let selector = ServiceSelector::new(Algorithm::MrAngle, 8);

    // A latency-sensitive customer: response time and latency dominate.
    let mut speed_first = SelectionRequest::top_k(dims, 5);
    speed_first.weights = vec![5.0, 0.5, 5.0, 1.0];
    show(
        "latency-sensitive customer (weights rt=5, price=0.5, lat=5, avail=1)",
        &selector.select(&registry, &speed_first),
        dims,
    );

    // A budget customer: price dominates.
    let mut budget = SelectionRequest::top_k(dims, 5);
    budget.weights = vec![0.5, 8.0, 0.5, 1.0];
    show(
        "budget customer (weights rt=0.5, price=8, lat=0.5, avail=1)",
        &selector.select(&registry, &budget),
        dims,
    );

    // A dashboard view: 4 diverse representatives of the whole skyline.
    let mut overview = SelectionRequest::top_k(dims, 0);
    overview.summary = Summary::Diverse(4);
    show(
        "diverse overview (4 representatives spanning the skyline contour)",
        &selector.select(&registry, &overview),
        dims,
    );

    // Coverage view: the representatives that dominate the most services.
    let mut coverage = SelectionRequest::top_k(dims, 0);
    coverage.summary = Summary::MaxDominance(4);
    show(
        "coverage view (representatives dominating the most of the registry)",
        &selector.select(&registry, &coverage),
        dims,
    );
}
