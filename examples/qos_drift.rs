//! The paper's second motivating problem, played out: *"The QoS of selected
//! service may get degraded rapidly, when the Internet traffic becomes
//! saturated."* A skyline is a snapshot — how fast does it rot?
//!
//! This example evolves a registry through congestion epochs, maintains the
//! skyline incrementally, and measures (a) churn of skyline membership and
//! (b) how often the service a user selected at epoch 0 is still Pareto
//! optimal later.
//!
//! ```text
//! cargo run --release --example qos_drift
//! ```

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, DriftConfig, DriftModel, QwsConfig};
use std::collections::HashSet;

fn main() {
    let registry = generate_qws(&QwsConfig::new(5_000, 4));
    // response time and latency drift with congestion; price and
    // availability stay put
    let mut drift = DriftModel::new(
        &registry,
        DriftConfig {
            drifting_dims: vec![0, 2],
            ..DriftConfig::default()
        },
    );

    let mut maintained =
        MaintainedRegistry::bootstrap(Algorithm::MrAngle, 8, &registry).expect("partitioner fit");
    let epoch0: HashSet<u64> = maintained
        .skyline()
        .iter()
        .map(mr_skyline_suite::skyline::point::Point::id)
        .collect();
    // "the user selected" the overall best service at epoch 0
    let selector = ServiceSelector::new(Algorithm::MrAngle, 8);
    let chosen = selector
        .select(&registry, &SelectionRequest::top_k(4, 1))
        .ranked[0]
        .0
        .id();
    println!(
        "epoch 0: skyline {} services; user selects service {chosen}\n",
        epoch0.len()
    );

    println!(
        "{:<7} {:>9} {:>9} {:>9} {:>16}",
        "epoch", "skyline", "entered", "left", "selected still?"
    );
    let mut prev: HashSet<u64> = epoch0.clone();
    for _ in 1..=10 {
        let (_, updates) = drift.step();
        for u in &updates {
            maintained.apply(u);
        }
        let now: HashSet<u64> = maintained
            .skyline()
            .iter()
            .map(mr_skyline_suite::skyline::point::Point::id)
            .collect();
        let entered = now.difference(&prev).count();
        let left = prev.difference(&now).count();
        println!(
            "{:<7} {:>9} {:>9} {:>9} {:>16}",
            drift.epoch(),
            now.len(),
            entered,
            left,
            if now.contains(&chosen) {
                "yes"
            } else {
                "NO - re-select!"
            }
        );
        prev = now;
    }

    println!("\nskyline membership churns every epoch under congestion drift —");
    println!("the reason the paper wants skyline selection fast enough to re-run");
    println!("in real time, and why MaintainedRegistry applies drift as cheap");
    println!("incremental updates instead of recomputing from scratch.");
}
