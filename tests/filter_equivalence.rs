//! Property-based exactness proofs for the early-pruning pipeline: the
//! filter-point broadcast, witness-based sector pruning, and the streaming
//! global merge must be *bit-identical* to the plain pipeline — across all
//! four partitioning schemes, all data distributions, arbitrary filter
//! sizes, and chaos fault interleavings. These optimisations may only drop
//! work, never answers.

use mr_skyline_suite::chaos::FaultPlan;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{
    generate_qws, generate_synthetic, Dataset, Distribution, QwsConfig, SyntheticConfig,
};
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::skyline::seq::naive_skyline_ids;
use proptest::prelude::*;
use std::sync::Once;

/// Chaos faults abort tasks by panicking on purpose, and every one of them
/// is caught and retried. Keep those expected panics out of the test
/// output while leaving real panics loud.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !(text.starts_with("chaos:") || text.starts_with("mrsky-chaos:")) {
                default_hook(info);
            }
        }));
    });
}

/// The skyline as sorted `(id, coordinate bit patterns)` rows — equality
/// on this is bit-for-bit equality, not approximate.
fn fingerprint(report: &SkylineRunReport) -> Vec<(u64, Vec<u64>)> {
    let mut rows: Vec<(u64, Vec<u64>)> = report
        .global_skyline
        .iter()
        .map(|p| (p.id(), p.coords().iter().map(|c| c.to_bits()).collect()))
        .collect();
    rows.sort();
    rows
}

const ALL_SCHEMES: [Algorithm; 4] = [
    Algorithm::MrAngle,
    Algorithm::MrDim,
    Algorithm::MrGrid,
    Algorithm::MrRandom,
];

/// Datasets from every distribution family the paper benchmarks:
/// anti-correlated (huge skylines), correlated (tiny skylines), uniform
/// independent, and the QWS-like quality-of-service generator.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let shape = (40usize..240, 2usize..5, 0u64..1u64 << 32);
    (0usize..4, shape).prop_map(|(family, (n, d, seed))| match family {
        0 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::AntiCorrelated).with_seed(seed),
        ),
        1 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::Correlated).with_seed(seed),
        ),
        2 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::Independent).with_seed(seed),
        ),
        _ => generate_qws(&QwsConfig::new(n, d).with_seed(seed)),
    })
}

/// The pipeline with every new optimisation armed.
fn optimised(filter_k: Option<usize>, streaming: bool) -> AlgoConfig {
    AlgoConfig {
        filter_k,
        sector_prune: true,
        streaming_merge: streaming,
        ..AlgoConfig::default()
    }
}

/// The plain pipeline: no filter, no witness pruning, barrier merge.
fn plain() -> AlgoConfig {
    AlgoConfig {
        filter_k: Some(0),
        sector_prune: false,
        streaming_merge: false,
        ..AlgoConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Filter + sector pruning + streaming merge returns bit-identical
    /// skylines to the plain pipeline on every partitioning scheme, and
    /// both match the independent sequential oracle.
    #[test]
    fn optimised_pipeline_is_bit_identical_on_every_scheme(
        data in arb_dataset(),
        servers in 1usize..6,
        filter_raw in 0usize..24,
        streaming_bit in 0u8..2,
    ) {
        // 0 means "auto-sized filter" here, not "filter off" — the plain
        // baseline is the only run with the filter disabled.
        let filter_k = (filter_raw > 0).then_some(filter_raw);
        let streaming = streaming_bit == 1;
        let oracle = naive_skyline_ids(data.points());
        for alg in ALL_SCHEMES {
            let fast = SkylineJob::new(alg, servers)
                .with_config(optimised(filter_k, streaming))
                .run(&data);
            let base = SkylineJob::new(alg, servers)
                .with_config(plain())
                .run(&data);
            prop_assert_eq!(fingerprint(&fast), fingerprint(&base), "{}", alg);
            let mut ids: Vec<u64> = fast.global_skyline.iter().map(Point::id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, oracle.clone(), "{} vs oracle", alg);
        }
    }

    /// Same property with chaos interleaved: injected task faults, retries,
    /// and shuffle disruption must not interact with filtering or the
    /// streaming merge (the `rows_filtered` ledger and the merge state only
    /// ever see each task's last successful attempt).
    #[test]
    fn optimised_pipeline_survives_chaos_exactly(
        data in arb_dataset(),
        seed in 0u64..1u64 << 16,
        heavy_bit in 0u8..2,
        streaming_bit in 0u8..2,
    ) {
        quiet_chaos_panics();
        let streaming = streaming_bit == 1;
        let plan = if heavy_bit == 1 { FaultPlan::heavy(seed) } else { FaultPlan::light(seed) };
        for alg in ALL_SCHEMES {
            let chaotic = SkylineJob::new(alg, 4)
                .with_config(optimised(None, streaming))
                .with_chaos(plan.clone())
                .run(&data);
            let calm = SkylineJob::new(alg, 4)
                .with_config(plain())
                .run(&data);
            prop_assert_eq!(fingerprint(&chaotic), fingerprint(&calm), "{}", alg);
        }
    }
}

/// Deterministic spot check on a larger anti-correlated input (the worst
/// case for skyline size): the filter must actually drop rows while the
/// answer stays exact — guarding against a silently disabled filter
/// passing the equivalence properties vacuously.
#[test]
fn filter_really_fires_and_stays_exact() {
    let data = generate_synthetic(
        &SyntheticConfig::new(4000, 4, Distribution::AntiCorrelated).with_seed(7),
    );
    let fast = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_config(optimised(None, true))
        .run(&data);
    let base = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_config(plain())
        .run(&data);
    assert!(fast.rows_filtered > 0, "filter sweep never dropped a row");
    assert_eq!(fingerprint(&fast), fingerprint(&base));
}
