//! Integration of the insight analyzer against real pipeline traces: on a
//! seeded skewed dataset the analyzer must name the actual hot partition,
//! and the critical path's phase blame must sum to the reported simulated
//! wall time within 1%.

use mr_skyline_suite::insight;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_synthetic, Distribution, SyntheticConfig};
use mr_skyline_suite::trace::{EventKind, Tracer};

/// Runs MR-Angle on seeded anti-correlated data (large skylines survive the
/// map-side filter, and the angular sectors load unevenly) and returns the
/// recorded events plus the reported sim total.
fn skewed_trace() -> (Vec<mr_skyline_suite::trace::TraceEvent>, f64) {
    let data = generate_synthetic(&SyntheticConfig::new(4000, 4, Distribution::AntiCorrelated));
    let tracer = Tracer::in_memory();
    let report = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_tracer(tracer.clone())
        .run(&data);
    (tracer.drain(), report.metrics.sim_total)
}

#[test]
fn analyzer_names_the_hot_partition_and_blame_sums_to_wall_time() {
    let (events, reported_sim) = skewed_trace();
    assert!(
        mr_skyline_suite::trace::validate_events(&events).is_empty(),
        "trace must stay schema-valid with causal events"
    );

    // Ground truth straight from the runtime's own partition accounting,
    // independent of the analyzer's model building.
    let mut truth: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PartitionLocalSkyline {
                partition, input, ..
            } => Some((*partition, *input)),
            _ => None,
        })
        .collect();
    assert!(
        !truth.is_empty(),
        "pipeline emitted no partition accounting"
    );
    truth.sort_by_key(|a| a.1);
    let (true_hot, true_rows) = *truth.last().unwrap();

    let run = insight::RunModel::from_events(&events).unwrap();
    let skew = insight::skew(&run).expect("partition job present");
    assert_eq!(skew.hot_partition, true_hot, "wrong hot partition");
    assert_eq!(skew.hot_rows, true_rows);
    assert!(skew.row_gini > 0.0, "skewed data must show row skew");
    assert_eq!(
        skew.hot_kernel, "bnl",
        "hot-partition blame must name the (default) kernel that ran it"
    );

    // Critical path: blame tiles the run exactly, so it reproduces the
    // reported simulated wall time within the 1% acceptance bound (it is
    // exact by construction; 1% is the contract's slack).
    let cp = insight::critical_path(&run);
    let blamed: f64 = cp.phase_blame.values().sum();
    assert!(
        (blamed - reported_sim).abs() <= 0.01 * reported_sim,
        "blame {blamed} vs reported {reported_sim}"
    );
    assert!((cp.total - run.total_sim()).abs() < 1e-6 * (1.0 + cp.total));

    // The rendered reports name the hot partition for the operator.
    let cp_text = insight::report::render_critical_path(&run, &cp);
    assert!(cp_text.contains("phase blame"), "{cp_text}");
    let skew_text = insight::report::render_skew(&skew);
    assert!(
        skew_text.contains(&format!("hot partition: {true_hot} ")),
        "{skew_text}"
    );
}

#[test]
fn causal_edges_cover_every_runtime_layer() {
    let (events, _) = skewed_trace();
    let run = insight::RunModel::from_events(&events).unwrap();
    let counts = run.edge_counts();
    for kind in ["dispatch", "barrier", "shuffle", "chain"] {
        assert!(
            counts.get(kind).copied().unwrap_or(0) > 0,
            "missing `{kind}` edges: {counts:?}"
        );
    }
    // Every edge endpoint follows the node-id grammar.
    for e in &run.edges {
        for node in [&e.src, &e.dst] {
            assert!(
                node.starts_with("job:") || node.starts_with("phase:") || node.starts_with("task:"),
                "bad node id {node}"
            );
        }
    }
}

#[test]
fn what_if_and_stragglers_run_on_real_traces() {
    let (events, _) = skewed_trace();
    let run = insight::RunModel::from_events(&events).unwrap();
    // Both analyses must complete; savings and flags depend on the data but
    // the structures must be internally consistent.
    for w in insight::what_if_speculation(&run) {
        assert!(w.speculative_wall <= w.baseline_wall + 1e-9);
        assert!(w.saved() >= 0.0);
    }
    for s in insight::stragglers(&run, insight::DEFAULT_THRESHOLD) {
        assert!(s.ratio >= insight::DEFAULT_THRESHOLD);
        assert!(s.duration > s.median);
    }
}
