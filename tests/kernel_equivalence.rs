//! Property-based exactness proofs for the pluggable local kernels: SFS,
//! SaLSa, DnC, and the `Auto` selector must return *bit-identical* global
//! skylines to the BNL oracle — across all four distribution families,
//! every partitioning scheme, and chaos fault interleavings. A kernel may
//! only reorder or skip comparisons, never change the answer.

use mr_skyline_suite::chaos::FaultPlan;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{
    generate_qws, generate_synthetic, Dataset, Distribution, QwsConfig, SyntheticConfig,
};
use mr_skyline_suite::skyline::block::PointBlock;
use mr_skyline_suite::skyline::kernel::{block_bnl, block_sfs};
use mr_skyline_suite::skyline::salsa::block_salsa;
use mr_skyline_suite::skyline::bnl::BnlConfig;
use mr_skyline_suite::skyline::select::{BlockKernel, KernelChoice};
use proptest::prelude::*;
use std::sync::Once;

/// Chaos faults abort tasks by panicking on purpose, and every one of them
/// is caught and retried. Keep those expected panics out of the test
/// output while leaving real panics loud.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !(text.starts_with("chaos:") || text.starts_with("mrsky-chaos:")) {
                default_hook(info);
            }
        }));
    });
}

/// The skyline as sorted `(id, coordinate bit patterns)` rows — equality
/// on this is bit-for-bit equality, not approximate.
fn fingerprint(report: &SkylineRunReport) -> Vec<(u64, Vec<u64>)> {
    let mut rows: Vec<(u64, Vec<u64>)> = report
        .global_skyline
        .iter()
        .map(|p| (p.id(), p.coords().iter().map(|c| c.to_bits()).collect()))
        .collect();
    rows.sort();
    rows
}

/// A block's skyline as sorted `(id, bit patterns)` rows.
fn block_fingerprint(block: &PointBlock) -> Vec<(u64, Vec<u64>)> {
    let mut rows: Vec<(u64, Vec<u64>)> = (0..block.len())
        .map(|i| {
            (
                block.id(i),
                block.row(i).iter().map(|c| c.to_bits()).collect(),
            )
        })
        .collect();
    rows.sort();
    rows
}

const ALL_KERNELS: [LocalKernel; 5] = [
    LocalKernel::Bnl,
    LocalKernel::Sfs,
    LocalKernel::Salsa,
    LocalKernel::Dnc,
    LocalKernel::Auto,
];

const ALL_SCHEMES: [Algorithm; 4] = [
    Algorithm::MrAngle,
    Algorithm::MrDim,
    Algorithm::MrGrid,
    Algorithm::MrRandom,
];

/// Datasets from every distribution family the paper benchmarks:
/// anti-correlated (huge skylines), correlated (tiny skylines), uniform
/// independent, and the QWS-like quality-of-service generator.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let shape = (40usize..240, 2usize..5, 0u64..1u64 << 32);
    (0usize..4, shape).prop_map(|(family, (n, d, seed))| match family {
        0 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::AntiCorrelated).with_seed(seed),
        ),
        1 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::Correlated).with_seed(seed),
        ),
        2 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::Independent).with_seed(seed),
        ),
        _ => generate_qws(&QwsConfig::new(n, d).with_seed(seed)),
    })
}

fn with_kernel(kernel: LocalKernel) -> AlgoConfig {
    AlgoConfig {
        kernel,
        ..AlgoConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At the block level every sort-based kernel — and whatever the
    /// selector picks — returns the same point set as `block_bnl`.
    #[test]
    fn block_kernels_match_the_bnl_oracle(data in arb_dataset()) {
        let block = PointBlock::from_points(data.points()).expect("generated data is uniform");
        let cfg = BnlConfig::default();
        let oracle = block_fingerprint(&block_bnl(&block, &cfg));
        prop_assert_eq!(
            block_fingerprint(&block_sfs(&block)), oracle.clone(), "sfs");
        prop_assert_eq!(
            block_fingerprint(&block_salsa(&block)), oracle.clone(), "salsa");
        for kernel in [BlockKernel::Bnl, BlockKernel::Sfs, BlockKernel::Salsa] {
            let (sky, _) = kernel.run(&block, &cfg);
            prop_assert_eq!(block_fingerprint(&sky), oracle.clone(), "{}", kernel.name());
        }
        let auto = KernelChoice::default().select_for_block(&block);
        let (sky, _) = auto.run(&block, &cfg);
        prop_assert_eq!(block_fingerprint(&sky), oracle, "auto -> {}", auto.name());
    }

    /// End-to-end: every kernel (and `Auto`) produces a bit-identical
    /// global skyline on every partitioning scheme.
    #[test]
    fn every_kernel_is_bit_identical_on_every_scheme(
        data in arb_dataset(),
        servers in 1usize..6,
    ) {
        for alg in ALL_SCHEMES {
            let oracle = fingerprint(
                &SkylineJob::new(alg, servers)
                    .with_config(with_kernel(LocalKernel::Bnl))
                    .run(&data),
            );
            for kernel in ALL_KERNELS {
                let run = SkylineJob::new(alg, servers)
                    .with_config(with_kernel(kernel))
                    .run(&data);
                prop_assert_eq!(
                    fingerprint(&run), oracle.clone(), "{} / {}", alg, kernel);
            }
        }
    }

    /// Same property with chaos interleaved: injected task faults, retries,
    /// and shuffle disruption must not interact with kernel choice (each
    /// retry re-runs the same deterministic kernel on the same block).
    #[test]
    fn kernels_survive_chaos_exactly(
        data in arb_dataset(),
        seed in 0u64..1u64 << 16,
        heavy_bit in 0u8..2,
    ) {
        quiet_chaos_panics();
        let plan = if heavy_bit == 1 { FaultPlan::heavy(seed) } else { FaultPlan::light(seed) };
        let calm = fingerprint(
            &SkylineJob::new(Algorithm::MrAngle, 4)
                .with_config(with_kernel(LocalKernel::Bnl))
                .run(&data),
        );
        for kernel in ALL_KERNELS {
            let chaotic = SkylineJob::new(Algorithm::MrAngle, 4)
                .with_config(with_kernel(kernel))
                .with_chaos(plan.clone())
                .run(&data);
            prop_assert_eq!(fingerprint(&chaotic), calm.clone(), "{}", kernel);
        }
    }
}

/// Deterministic spot check: on seeded anti-correlated d=6 data the `Auto`
/// selector must actually pick a sort-based kernel (the workload the cost
/// model exists for), and the answer must stay exact — guarding against a
/// selector that silently degenerates to BNL and passes the equivalence
/// properties vacuously.
#[test]
fn auto_picks_a_sort_kernel_on_anti_correlated_data() {
    let data = generate_synthetic(
        &SyntheticConfig::new(20_000, 6, Distribution::AntiCorrelated).with_seed(42),
    );
    let block = PointBlock::from_points(data.points()).expect("uniform dims");
    let choice = KernelChoice::default().select_for_block(&block);
    assert!(
        matches!(choice, BlockKernel::Sfs | BlockKernel::Salsa),
        "expected a sort-based kernel on anti d=6 n=20k, got {}",
        choice.name()
    );
    let auto = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_config(with_kernel(LocalKernel::Auto))
        .run(&data);
    let base = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_config(with_kernel(LocalKernel::Bnl))
        .run(&data);
    assert_eq!(fingerprint(&auto), fingerprint(&base));
}
