//! Property-based exactness proofs for the raw-scale machinery: the
//! zero-copy block shuffle, the work-stealing executor, and reduce-input
//! spilling must be *bit-identical* to the seed pipeline (row shuffle,
//! static chunks, everything in memory) — across all four partitioning
//! schemes, all data distributions, chaos fault interleavings, and a
//! mid-run kill/resume. These optimisations move bytes differently; they
//! may never change an answer.

use mr_skyline_suite::chaos::FaultPlan;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{
    generate_qws, generate_synthetic, Dataset, Distribution, QwsConfig, SyntheticConfig,
};
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::skyline::seq::naive_skyline_ids;
use proptest::prelude::*;
use std::sync::Once;

/// Chaos faults abort tasks by panicking on purpose, and every one of them
/// is caught and retried. Keep those expected panics out of the test
/// output while leaving real panics loud.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !(text.starts_with("chaos:") || text.starts_with("mrsky-chaos:")) {
                default_hook(info);
            }
        }));
    });
}

/// The skyline as sorted `(id, coordinate bit patterns)` rows — equality
/// on this is bit-for-bit equality, not approximate.
fn fingerprint(report: &SkylineRunReport) -> Vec<(u64, Vec<u64>)> {
    let mut rows: Vec<(u64, Vec<u64>)> = report
        .global_skyline
        .iter()
        .map(|p| (p.id(), p.coords().iter().map(|c| c.to_bits()).collect()))
        .collect();
    rows.sort();
    rows
}

const ALL_SCHEMES: [Algorithm; 4] = [
    Algorithm::MrAngle,
    Algorithm::MrDim,
    Algorithm::MrGrid,
    Algorithm::MrRandom,
];

/// Datasets from every distribution family the paper benchmarks.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let shape = (40usize..240, 2usize..5, 0u64..1u64 << 32);
    (0usize..4, shape).prop_map(|(family, (n, d, seed))| match family {
        0 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::AntiCorrelated).with_seed(seed),
        ),
        1 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::Correlated).with_seed(seed),
        ),
        2 => generate_synthetic(
            &SyntheticConfig::new(n, d, Distribution::Independent).with_seed(seed),
        ),
        _ => generate_qws(&QwsConfig::new(n, d).with_seed(seed)),
    })
}

/// The scaled pipeline: zero-copy block shuffle, work stealing, and an
/// optional reduce-input spill budget.
fn scaled(spill_dir: Option<&std::path::Path>) -> AlgoConfig {
    AlgoConfig {
        owned_shuffle: true,
        static_executor: false,
        spill_budget_bytes: spill_dir.map(|_| 0), // spill every reduce input
        spill_dir: spill_dir.map(std::path::Path::to_path_buf),
        ..AlgoConfig::default()
    }
}

/// The seed pipeline: every routed block shipped as its own value, fixed
/// task chunks per thread, everything held in memory.
fn seed() -> AlgoConfig {
    AlgoConfig {
        owned_shuffle: false,
        static_executor: true,
        spill_budget_bytes: None,
        spill_dir: None,
        ..AlgoConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Block shuffle + work stealing returns bit-identical skylines to the
    /// seed row shuffle on every partitioning scheme, and both match the
    /// independent sequential oracle.
    #[test]
    fn scaled_pipeline_is_bit_identical_on_every_scheme(
        data in arb_dataset(),
        servers in 1usize..6,
    ) {
        let oracle = naive_skyline_ids(data.points());
        for alg in ALL_SCHEMES {
            let fast = SkylineJob::new(alg, servers)
                .with_config(scaled(None))
                .run(&data);
            let base = SkylineJob::new(alg, servers)
                .with_config(seed())
                .run(&data);
            prop_assert_eq!(fingerprint(&fast), fingerprint(&base), "{}", alg);
            // the wire carries the same bytes either way
            prop_assert_eq!(
                fast.metrics.shuffle_bytes, base.metrics.shuffle_bytes,
                "{}: block concat changed shuffle bytes", alg
            );
            let mut ids: Vec<u64> = fast.global_skyline.iter().map(Point::id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, oracle.clone(), "{} vs oracle", alg);
        }
    }

    /// Same property with chaos interleaved and every reduce input forced
    /// through the disk spill: injected faults, retries, shuffle
    /// disruption, and the spill round-trip must compose without changing
    /// a single bit.
    #[test]
    fn scaled_pipeline_survives_chaos_and_spilling_exactly(
        data in arb_dataset(),
        seed_val in 0u64..1u64 << 16,
        heavy_bit in 0u8..2,
    ) {
        quiet_chaos_panics();
        let plan = if heavy_bit == 1 { FaultPlan::heavy(seed_val) } else { FaultPlan::light(seed_val) };
        let dir = std::env::temp_dir()
            .join(format!("mrsky-scale-eq-{}", std::process::id()));
        for alg in ALL_SCHEMES {
            let chaotic = SkylineJob::new(alg, 4)
                .with_config(scaled(Some(&dir)))
                .with_chaos(plan.clone())
                .run(&data);
            let calm = SkylineJob::new(alg, 4)
                .with_config(seed())
                .run(&data);
            prop_assert_eq!(fingerprint(&chaotic), fingerprint(&calm), "{}", alg);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A simulated driver crash mid-run (kill switch after N checkpoint
    /// writes) with the scale machinery armed: the resumed run restores
    /// finished partitions and still matches the seed pipeline bit for bit.
    #[test]
    fn scaled_pipeline_survives_kill_and_resume(
        data in arb_dataset(),
        kill_after in 1u64..6,
    ) {
        quiet_chaos_panics();
        let ckpt = std::env::temp_dir().join(format!(
            "mrsky-scale-kill-{}-{kill_after}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&ckpt);
        let mut plan = FaultPlan::off();
        plan.kill_after_checkpoints = Some(kill_after);
        let killed = SkylineJob::new(Algorithm::MrAngle, 4)
            .with_config(scaled(None))
            .with_chaos(plan)
            .with_checkpoints(&ckpt)
            .run_resilient(&data)
            .expect("audit clean");
        let base = SkylineJob::new(Algorithm::MrAngle, 4)
            .with_config(seed())
            .run(&data);
        prop_assert_eq!(fingerprint(&killed), fingerprint(&base));
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

/// Deterministic spot check on a larger anti-correlated input: the spill
/// path must actually fire (counter-proven) while the answer stays exact —
/// guarding against a silently disabled spill passing the equivalence
/// properties vacuously.
#[test]
fn spill_really_fires_and_stays_exact() {
    let data = generate_synthetic(
        &SyntheticConfig::new(4000, 4, Distribution::AntiCorrelated).with_seed(7),
    );
    let dir = std::env::temp_dir().join(format!("mrsky-scale-spot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spilled = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_config(AlgoConfig {
            spill_budget_bytes: Some(0),
            spill_dir: Some(dir.clone()),
            ..AlgoConfig::default()
        })
        .run(&data);
    let base = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_config(seed())
        .run(&data);
    let spilled_inputs = spilled
        .metrics
        .reduce
        .counters
        .get("spilled_inputs")
        .copied()
        .unwrap_or(0);
    assert!(spilled_inputs > 0, "spill path never fired");
    assert_eq!(fingerprint(&spilled), fingerprint(&base));
    // spilling must not leave files behind once every input is consumed
    let _ = std::fs::remove_dir_all(&dir);
}

/// Work stealing under deliberate skew: one partition gets almost all the
/// points (correlated data + range partitioning), so static chunking
/// leaves whole threads idle behind one long reduce task. Stealing must
/// produce the identical report while really executing on multiple
/// threads.
#[test]
fn stealing_matches_static_under_skew() {
    let data =
        generate_synthetic(&SyntheticConfig::new(3000, 3, Distribution::Correlated).with_seed(11));
    let steal = SkylineJob::new(Algorithm::MrDim, 8)
        .with_config(scaled(None))
        .run(&data);
    let fixed = SkylineJob::new(Algorithm::MrDim, 8)
        .with_config(AlgoConfig {
            owned_shuffle: true,
            static_executor: true,
            ..AlgoConfig::default()
        })
        .run(&data);
    assert_eq!(fingerprint(&steal), fingerprint(&fixed));
    assert_eq!(steal.metrics.sim_total, fixed.metrics.sim_total);
}
