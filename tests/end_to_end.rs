//! End-to-end integration: every algorithm, every dataset family, checked
//! against independent oracles, at reduced scale.

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{
    generate_qws, generate_synthetic, Distribution, QwsConfig, SyntheticConfig,
};
use mr_skyline_suite::skyline::seq::naive_skyline_ids;

fn sky_ids(report: &SkylineRunReport) -> Vec<u64> {
    let mut ids: Vec<u64> = report
        .global_skyline
        .iter()
        .map(mr_skyline_suite::skyline::point::Point::id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn all_algorithms_all_distributions_match_oracle() {
    let datasets = vec![
        generate_qws(&QwsConfig::new(800, 4)),
        generate_synthetic(&SyntheticConfig::new(800, 3, Distribution::Independent)),
        generate_synthetic(&SyntheticConfig::new(800, 3, Distribution::Correlated)),
        generate_synthetic(&SyntheticConfig::new(400, 2, Distribution::AntiCorrelated)),
    ];
    for data in &datasets {
        let oracle = naive_skyline_ids(data.points());
        for alg in [
            Algorithm::MrDim,
            Algorithm::MrGrid,
            Algorithm::MrAngle,
            Algorithm::MrRandom,
            Algorithm::Sequential,
        ] {
            let report = SkylineJob::new(alg, 4).run(data);
            assert_eq!(sky_ids(&report), oracle, "{alg} on {}", data.name);
            validate_report(&report, data).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }
}

#[test]
fn dimension_projection_pipeline() {
    // the figure harness workflow: one master dataset, projected per d
    let master = generate_qws(&QwsConfig::new(600, 10));
    for d in [2usize, 5, 10] {
        let data = master.project(d);
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        assert_eq!(report.dimensions, d);
        assert_eq!(sky_ids(&report), naive_skyline_ids(data.points()), "d={d}");
    }
}

#[test]
fn runs_are_bitwise_deterministic() {
    let data = generate_qws(&QwsConfig::new(500, 5));
    for alg in Algorithm::paper_trio() {
        let a = SkylineJob::new(alg, 8).run(&data);
        let b = SkylineJob::new(alg, 8).run(&data);
        assert_eq!(sky_ids(&a), sky_ids(&b));
        assert_eq!(a.metrics.sim_total, b.metrics.sim_total, "{alg}");
        assert_eq!(a.optimality, b.optimality);
        assert_eq!(a.partition_counts, b.partition_counts);
    }
}

#[test]
fn host_thread_count_does_not_change_results() {
    let data = generate_qws(&QwsConfig::new(400, 4));
    let mut single = SkylineJob::new(Algorithm::MrAngle, 8);
    single.threads = 1;
    let mut many = SkylineJob::new(Algorithm::MrAngle, 8);
    many.threads = 8;
    let a = single.run(&data);
    let b = many.run(&data);
    assert_eq!(sky_ids(&a), sky_ids(&b));
    assert_eq!(a.metrics.sim_total, b.metrics.sim_total);
}

#[test]
fn report_quantities_are_consistent() {
    let data = generate_qws(&QwsConfig::new(700, 4));
    let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
    assert_eq!(report.cardinality, 700);
    assert_eq!(report.servers, 4);
    assert_eq!(report.partition_counts.iter().sum::<usize>(), 700);
    assert_eq!(report.partition_counts.len(), report.partitions);
    assert!((0.0..=1.0).contains(&report.optimality));
    assert!(report.merge_candidates() >= report.global_skyline.len());
    assert!(report.processing_time() >= report.map_time() + report.reduce_time());
    assert!(report.metrics.shuffle_bytes > 0);
    // local skylines cover the global skyline
    let local: std::collections::HashSet<u64> = report
        .local_skylines
        .iter()
        .flat_map(|(_, v)| v.iter().map(mr_skyline_suite::skyline::point::Point::id))
        .collect();
    assert!(report
        .global_skyline
        .iter()
        .all(|p| local.contains(&p.id())));
}

#[test]
fn sequential_baseline_is_slower_than_parallel() {
    let data = generate_qws(&QwsConfig::new(20_000, 6));
    let seq = SkylineJob::new(Algorithm::Sequential, 1).run(&data);
    let par = SkylineJob::new(Algorithm::MrAngle, 8).run(&data);
    assert!(
        seq.processing_time() > par.processing_time(),
        "sequential {:.1}s should exceed 8-server {:.1}s",
        seq.processing_time(),
        par.processing_time()
    );
    assert_eq!(sky_ids(&seq), sky_ids(&par));
}

#[test]
fn paper_headline_effects_at_scale() {
    // a mid-size version of the Fig.5(b)/Fig.7(b) cells: at d=8+ the angular
    // method must beat both baselines on simulated time and optimality
    let data = generate_qws(&QwsConfig::new(20_000, 8));
    let dim = SkylineJob::new(Algorithm::MrDim, 8).run(&data);
    let grid = SkylineJob::new(Algorithm::MrGrid, 8).run(&data);
    let angle = SkylineJob::new(Algorithm::MrAngle, 8).run(&data);
    assert!(
        angle.processing_time() <= dim.processing_time(),
        "angle {:.1}s vs dim {:.1}s",
        angle.processing_time(),
        dim.processing_time()
    );
    assert!(
        angle.processing_time() <= grid.processing_time(),
        "angle {:.1}s vs grid {:.1}s",
        angle.processing_time(),
        grid.processing_time()
    );
    assert!(angle.optimality > dim.optimality);
    assert!(angle.optimality > grid.optimality);
    // and the angular partitioning balances load best
    assert!(angle.load_balance.cv < dim.load_balance.cv);
    assert!(angle.load_balance.cv < grid.load_balance.cv);
}
