//! Chaos integration for the serving layer: arbitrary fault plans,
//! kill/resume across checkpoints, and the headline property that the
//! service never serves a fresh response that disagrees with the
//! mutations it acknowledged — and that after quiescing, every
//! tenant's skyline is bit-identical to the acknowledged-mutation
//! oracle. Rejections are allowed under chaos, but every one must be
//! typed (a known `ServeError` outcome string); nothing drops
//! silently.

use mr_skyline_suite::chaos::{FaultKind, FaultPlan, FaultSite, KillSwitch, SiteRule};
use mr_skyline_suite::mr::checkpoint::CheckpointStore;
use mr_skyline_suite::serve::{
    load_script, BreakerConfig, LoadReport, LoadRunner, LoadgenConfig, ServeConfig, SkylineService,
};
use mr_skyline_suite::trace::{EventKind, Tracer};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

/// Serve-layer chaos aborts via deliberate panics (the kill switch);
/// keep those quiet while leaving real panics loud.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !(text.starts_with("chaos:") || text.starts_with("mrsky-chaos:")) {
                default_hook(info);
            }
        }));
    });
}

/// Every rejection outcome the service may legally produce. The load
/// report keys rejections by `ServeError::outcome()`; anything outside
/// this set means an untyped failure leaked onto the request path.
const TYPED_OUTCOMES: &[&str] = &[
    "rejected-overloaded",
    "rejected-breaker",
    "rejected-retries",
    "rejected-deadline",
    "dead-letter",
    "rejected-invalid",
];

fn assert_report_clean(report: &LoadReport, label: &str) {
    assert_eq!(
        report.incorrect, 0,
        "{label}: fresh responses must match the acknowledged-mutation oracle"
    );
    assert_eq!(
        report.final_mismatches, 0,
        "{label}: quiesced skylines must be bit-identical to the oracle"
    );
    for outcome in report.rejections.keys() {
        assert!(
            TYPED_OUTCOMES.contains(&outcome.as_str()),
            "{label}: untyped rejection outcome {outcome:?}"
        );
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mrsky-serve-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Drives a script to completion against a checkpointed service,
/// recovering from kill-switch crashes by rebuilding the service from
/// its store and re-driving the interrupted op (which replay-skips if
/// it had committed). Returns the verified report and the crash count.
fn drive_with_recovery(
    cfg: &ServeConfig,
    plan: &FaultPlan,
    dir: &std::path::Path,
    ops: Vec<mr_skyline_suite::serve::Op>,
    kill_after: Option<u64>,
) -> (LoadReport, u32) {
    let mut runner = LoadRunner::new(ops);
    let mut kill = kill_after.map(|n| Arc::new(KillSwitch::new(n)));
    let mut crashes = 0u32;
    loop {
        let store = CheckpointStore::open(dir).expect("open store");
        let mut service = SkylineService::new(cfg.clone(), plan.clone(), Tracer::in_memory())
            .with_store(store)
            .expect("restore from store");
        // The switch is armed for the first boot only: one crash per
        // run keeps the test deterministic and the recovery path hot.
        if let Some(k) = kill.take() {
            service = service.with_kill_switch(k);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| runner.drive(&service)));
        match outcome {
            Ok(()) => {
                assert!(runner.done(), "drive returned without finishing");
                return (runner.finish(&service), crashes);
            }
            Err(payload) => {
                let simulated = payload
                    .downcast_ref::<String>()
                    .map(|s| s.starts_with("mrsky-chaos:"))
                    .unwrap_or(false);
                assert!(simulated, "non-simulated panic escaped the service");
                crashes += 1;
            }
        }
    }
}

#[test]
fn heavy_chaos_with_kill_and_resume_is_bit_identical_to_oracle() {
    quiet_chaos_panics();
    let dir = unique_dir("kill");
    let cfg = ServeConfig {
        checkpoint_every: 4,
        ..ServeConfig::default()
    };
    let ops = load_script(&LoadgenConfig {
        operations: 500,
        ..LoadgenConfig::default()
    });
    let (report, crashes) = drive_with_recovery(&cfg, &FaultPlan::heavy(23), &dir, ops, Some(3));
    assert_report_clean(&report, "kill/resume");
    assert_eq!(crashes, 1, "the armed kill switch must fire exactly once");
    assert!(report.mutations_ok > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breaker_trips_and_recovery_still_converges() {
    quiet_chaos_panics();
    // Tight budgets make retries-exhausted (and thus breaker opens)
    // reachable: service budget 2 < plan budget 6, so the plan's
    // final-attempt-never-faults guarantee doesn't save the request.
    let cfg = ServeConfig {
        max_attempts: 2,
        breaker: BreakerConfig {
            failure_threshold: 2,
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    };
    let tracer = Tracer::in_memory();
    let service = SkylineService::new(cfg, FaultPlan::heavy(3), tracer);
    let ops = load_script(&LoadgenConfig {
        operations: 600,
        ..LoadgenConfig::default()
    });
    let mut runner = LoadRunner::new(ops);
    runner.drive(&service);
    let events = service.tracer().drain();
    let report = runner.finish(&service);
    assert_report_clean(&report, "breaker");
    let stats = service.stats();
    assert!(stats.breaker_opens >= 1, "this seed must trip a breaker");
    assert!(
        stats.dead_lettered >= 1,
        "poison rows must be dead-lettered"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::BreakerTransition { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::StaleServed { .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary fault plans (seed, fault rates, retry budgets) never
    /// produce an incorrect fresh response or a diverged final
    /// skyline, and every rejection is typed.
    #[test]
    fn serve_survives_arbitrary_fault_plans(
        chaos_seed in 0u64..1_000,
        load_seed in 0u64..1_000,
        mutation_permille in 0u32..400,
        query_permille in 0u32..400,
        poison_permille in 0u32..400,
        service_budget in 0u32..4,
    ) {
        quiet_chaos_panics();
        let mut plan = FaultPlan::off();
        plan.seed = chaos_seed;
        plan.max_attempts = 6;
        plan.rules.push(SiteRule {
            site: FaultSite::ServeMutation,
            kind: FaultKind::TransientError,
            permille: mutation_permille,
        });
        plan.rules.push(SiteRule {
            site: FaultSite::ServeMutation,
            kind: FaultKind::PoisonRow,
            permille: poison_permille,
        });
        plan.rules.push(SiteRule {
            site: FaultSite::ServeQuery,
            kind: FaultKind::TransientError,
            permille: query_permille,
        });
        let cfg = ServeConfig {
            max_attempts: service_budget,
            ..ServeConfig::default()
        };
        let service = SkylineService::new(cfg, plan, Tracer::in_memory());
        let ops = load_script(&LoadgenConfig {
            seed: load_seed,
            operations: 200,
            ..LoadgenConfig::default()
        });
        let mut runner = LoadRunner::new(ops);
        runner.drive(&service);
        let report = runner.finish(&service);
        assert_report_clean(&report, "arbitrary-plan");
    }

    /// Kill/resume at varying checkpoint cadences and kill points is
    /// invisible to the oracle: the recovered service replays the
    /// interrupted op and converges bit-identically.
    #[test]
    fn kill_resume_is_invisible_at_any_checkpoint_cadence(
        seed in 0u64..500,
        checkpoint_every in 1u64..8,
        kill_after in 1u64..6,
    ) {
        quiet_chaos_panics();
        let dir = unique_dir("prop");
        let cfg = ServeConfig {
            checkpoint_every,
            ..ServeConfig::default()
        };
        let ops = load_script(&LoadgenConfig {
            seed,
            operations: 250,
            ..LoadgenConfig::default()
        });
        let (report, _crashes) =
            drive_with_recovery(&cfg, &FaultPlan::heavy(seed), &dir, ops, Some(kill_after));
        assert_report_clean(&report, "cadence");
        std::fs::remove_dir_all(&dir).ok();
    }
}
