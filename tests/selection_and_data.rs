//! Integration tests of the selection façade and the data layer.

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, Dataset, QwsConfig};
use mr_skyline_suite::skyline::dominance::dominates;
use mr_skyline_suite::skyline::ranking::WeightedScore;
use proptest::prelude::*;

#[test]
fn selection_returns_pareto_optimal_services_only() {
    let data = generate_qws(&QwsConfig::new(2000, 5));
    let selector = ServiceSelector::new(Algorithm::MrAngle, 8);
    let result = selector.select(&data, &SelectionRequest::top_k(5, 10));
    assert!(!result.ranked.is_empty());
    for (service, _) in &result.ranked {
        assert!(
            !data.points().iter().any(|q| dominates(q, service)),
            "selected a dominated service"
        );
    }
}

#[test]
fn selection_best_equals_registry_wide_best() {
    // ranking the skyline loses nothing versus ranking the whole registry
    let data = generate_qws(&QwsConfig::new(1500, 4));
    let selector = ServiceSelector::new(Algorithm::MrGrid, 4);
    for weights in [
        vec![1.0, 1.0, 1.0, 1.0],
        vec![9.0, 0.1, 0.5, 2.0],
        vec![0.0, 1.0, 0.0, 0.0],
    ] {
        let mut req = SelectionRequest::top_k(4, 1);
        req.weights = weights.clone();
        let via_selection = selector.select(&data, &req).ranked[0].1;
        let scorer = WeightedScore::fit(&weights, data.points());
        let global_best = scorer.best(data.points()).expect("non-empty").1;
        assert!(
            (via_selection - global_best).abs() < 1e-12,
            "weights {weights:?}"
        );
    }
}

#[test]
fn csv_round_trip_preserves_algorithm_results() {
    let data = generate_qws(&QwsConfig::new(300, 3));
    let dir = std::env::temp_dir().join("mr-skyline-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round_trip.csv");
    data.save_csv(&path).unwrap();
    let loaded = Dataset::load_csv("loaded", &path).unwrap();
    std::fs::remove_file(&path).ok();

    let a = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
    let b = SkylineJob::new(Algorithm::MrAngle, 4).run(&loaded);
    let ids = |r: &SkylineRunReport| {
        let mut v: Vec<u64> = r
            .global_skyline
            .iter()
            .map(mr_skyline_suite::skyline::point::Point::id)
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&a), ids(&b));
    assert_eq!(a.metrics.sim_total, b.metrics.sim_total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn skyline_always_contains_a_weighted_optimum(
        seed in 0u64..2000,
        w0 in 0.0f64..5.0,
        w1 in 0.0f64..5.0,
        w2 in 0.0f64..5.0,
    ) {
        // for any non-negative weights, the best service overall is in the
        // skyline — the theoretical guarantee the selection API relies on
        let data = generate_qws(&QwsConfig::new(300, 3).with_seed(seed));
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        let scorer = WeightedScore::fit(&[w0, w1, w2], data.points());
        let global = scorer.best(data.points()).expect("non-empty").1;
        let on_sky = scorer.best(&report.global_skyline).expect("non-empty").1;
        prop_assert!((on_sky - global).abs() < 1e-12);
    }

    #[test]
    fn qws_generator_scales_without_shape_surprises(
        n in 10usize..600,
        d in 1usize..=10,
        seed in 0u64..500,
    ) {
        let data = generate_qws(&QwsConfig::new(n, d).with_seed(seed));
        prop_assert_eq!(data.len(), n);
        prop_assert_eq!(data.dim(), d);
        for p in data.points() {
            prop_assert!(p.coords().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }
}
