//! Integration + property tests of the extension operators (parallel
//! skyline, k-dominance, top-k dominating, representatives) and the service
//! registry, exercised together across crates.

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, Category, QwsConfig, Registry};
use mr_skyline_suite::skyline::dominance::dominates;
use mr_skyline_suite::skyline::kdominant::{k_dominant_skyline, k_dominates};
use mr_skyline_suite::skyline::parallel::{parallel_skyline, parallel_skyline_partitioned};
use mr_skyline_suite::skyline::partition::AnglePartitioner;
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::skyline::representative::{
    distance_based_representatives, max_dominance_representatives,
};
use mr_skyline_suite::skyline::seq::naive_skyline_ids;
use mr_skyline_suite::skyline::topk::top_k_dominating;
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    (2usize..=5).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(0u8..24, d), 1..100).prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, row)| {
                    Point::new(
                        i as u64,
                        row.iter().map(|&v| f64::from(v)).collect::<Vec<_>>(),
                    )
                })
                .collect()
        })
    })
}

fn ids(v: &[Point]) -> Vec<u64> {
    let mut out: Vec<u64> = v.iter().map(Point::id).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn parallel_skyline_equals_oracle(pts in arb_points(), threads in 1usize..9) {
        prop_assert_eq!(ids(&parallel_skyline(&pts, threads).unwrap()), naive_skyline_ids(&pts));
    }

    #[test]
    fn partitioned_parallel_equals_oracle(pts in arb_points(), np in 1usize..12) {
        let part = AnglePartitioner::fit_quantile(&pts, np).unwrap();
        let (sky, _) = parallel_skyline_partitioned(&pts, &part, 4).unwrap();
        prop_assert_eq!(ids(&sky), naive_skyline_ids(&pts));
    }

    #[test]
    fn k_dominant_members_satisfy_definition(pts in arb_points()) {
        let d = pts[0].dim();
        for k in (d.saturating_sub(2).max(1))..=d {
            let kd = k_dominant_skyline(&pts, k);
            for m in &kd {
                prop_assert!(
                    !pts.iter().any(|q| q.id() != m.id() && k_dominates(q, m, k)),
                    "k={} member {} is k-dominated", k, m.id()
                );
            }
            // every excluded point IS k-dominated by someone
            let kd_ids: std::collections::HashSet<u64> = kd.iter().map(Point::id).collect();
            for p in &pts {
                if !kd_ids.contains(&p.id()) {
                    prop_assert!(
                        pts.iter().any(|q| q.id() != p.id() && k_dominates(q, p, k)),
                        "k={} excluded {} but nobody k-dominates it", k, p.id()
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_counts_are_correct_and_sorted(pts in arb_points(), k in 1usize..8) {
        let top = top_k_dominating(&pts, k);
        prop_assert!(top.len() <= k);
        for entry in &top {
            let expected = pts.iter().filter(|q| dominates(&entry.point, q)).count();
            prop_assert_eq!(entry.dominated, expected);
        }
        for w in top.windows(2) {
            prop_assert!(w[0].dominated >= w[1].dominated);
        }
    }

    #[test]
    fn representatives_are_always_skyline_members(pts in arb_points(), k in 1usize..6) {
        let report = SkylineJob::new(Algorithm::MrAngle, 2).run(
            &mr_skyline_suite::qws::Dataset::new("prop", pts.clone()),
        );
        let sky = &report.global_skyline;
        let sky_ids: std::collections::HashSet<u64> = sky.iter().map(Point::id).collect();
        for rep in max_dominance_representatives(sky, &pts, k) {
            prop_assert!(sky_ids.contains(&rep.id()));
        }
        for rep in distance_based_representatives(sky, k) {
            prop_assert!(sky_ids.contains(&rep.id()));
        }
    }
}

#[test]
fn registry_category_skylines_partition_the_work() {
    let registry = Registry::synthetic(3000, 4, 11);
    let mut per_category_total = 0usize;
    for category in Category::ALL {
        let data = registry.category_dataset(category).expect("populated");
        per_category_total += data.len();
        let report = SkylineJob::new(Algorithm::MrGrid, 4).run(&data);
        validate_report(&report, &data).expect("category skyline valid");
        // every winner belongs to the right category
        for p in &report.global_skyline {
            assert_eq!(registry.get(p.id()).expect("resolves").category, category);
        }
    }
    assert_eq!(per_category_total, registry.len());
}

#[test]
fn registry_churn_flows_into_maintained_skyline() {
    let mut registry = Registry::synthetic(400, 3, 5);
    let data = registry.full_dataset();
    let mut maintained =
        MaintainedRegistry::bootstrap(Algorithm::MrAngle, 4, &data).expect("partitioner fit");

    // register a dominator of everything
    let id = registry.register("flawless", "acme", Category::Sms, vec![0.0, 0.0, 0.0]);
    maintained.apply(&mr_skyline_suite::qws::dataset::Update::Add(
        registry.get(id).unwrap().qos.clone(),
    ));
    assert_eq!(maintained.skyline().len(), 1);
    assert_eq!(maintained.skyline()[0].id(), id);

    // deregister it again: the old skyline must come back
    registry.deregister(id);
    maintained.apply(&mr_skyline_suite::qws::dataset::Update::Remove(id));
    assert_eq!(
        ids(maintained.skyline()),
        naive_skyline_ids(registry.full_dataset().points())
    );
}

#[test]
fn toolbox_composes_on_one_dataset() {
    let data = generate_qws(&QwsConfig::new(2500, 6));
    let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
    let sky = &report.global_skyline;

    // parallel recomputation agrees with the MR result
    assert_eq!(ids(&parallel_skyline(data.points(), 4).unwrap()), ids(sky));

    // k-dominant shrinks within the skyline
    let k5 = k_dominant_skyline(sky, 5);
    let k6 = k_dominant_skyline(sky, 6);
    assert!(k5.len() <= k6.len());
    assert_eq!(k6.len(), sky.len(), "k=d keeps the whole skyline");

    // top dominator is a skyline member
    let top = top_k_dominating(data.points(), 1);
    assert!(ids(sky).contains(&top[0].point.id()));
}
