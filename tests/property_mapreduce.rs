//! Property-based tests: the MapReduce pipelines compute the true skyline
//! for *arbitrary* inputs, regardless of algorithm, window, kernel, cluster
//! size, or injected failures.

use mini_mapreduce::task::FailureConfig;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::mr::SkylineJob;
use mr_skyline_suite::qws::Dataset;
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::skyline::seq::naive_skyline_ids;
use proptest::prelude::*;

/// Arbitrary small datasets: 1–120 points, 1–5 dimensions, coords in
/// [0, 16) quantised to .5 steps so duplicates and ties happen often.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..=5).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(0u8..32, d), 1..120).prop_map(
            move |rows| {
                let points: Vec<Point> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        Point::new(
                            i as u64,
                            row.iter().map(|&v| f64::from(v) * 0.5).collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                Dataset::new("prop", points)
            },
        )
    })
}

fn sky_ids(report: &SkylineRunReport) -> Vec<u64> {
    let mut ids: Vec<u64> = report.global_skyline.iter().map(Point::id).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mr_angle_equals_oracle(data in arb_dataset(), servers in 1usize..6) {
        let report = SkylineJob::new(Algorithm::MrAngle, servers).run(&data);
        prop_assert_eq!(sky_ids(&report), naive_skyline_ids(data.points()));
    }

    #[test]
    fn mr_dim_and_grid_equal_oracle(data in arb_dataset()) {
        let oracle = naive_skyline_ids(data.points());
        for alg in [Algorithm::MrDim, Algorithm::MrGrid] {
            let report = SkylineJob::new(alg, 3).run(&data);
            prop_assert_eq!(sky_ids(&report), oracle.clone(), "{}", alg);
        }
    }

    #[test]
    fn kernels_and_windows_agree(data in arb_dataset(), window in 1usize..40) {
        let oracle = naive_skyline_ids(data.points());
        for kernel in [LocalKernel::Bnl, LocalKernel::Sfs, LocalKernel::Dnc] {
            let mut job = SkylineJob::new(Algorithm::MrAngle, 2);
            job.config.kernel = kernel;
            job.config.bnl_window = Some(window);
            let report = job.run(&data);
            prop_assert_eq!(sky_ids(&report), oracle.clone(), "{:?} w={}", kernel, window);
        }
    }

    #[test]
    fn failure_injection_never_changes_the_answer(
        data in arb_dataset(),
        rate in 0u32..600,
        seed in 0u64..1000,
    ) {
        let mut job = SkylineJob::new(Algorithm::MrGrid, 3);
        job.failure = FailureConfig::with_rate(rate, seed);
        let flaky = job.run(&data);
        prop_assert_eq!(sky_ids(&flaky), naive_skyline_ids(data.points()));
    }

    #[test]
    fn equal_width_angle_also_correct(data in arb_dataset()) {
        // the paper's Figure 3(c) split strategy (no quantile balancing)
        let mut job = SkylineJob::new(Algorithm::MrAngle, 3);
        job.config.angle_quantile = false;
        let report = job.run(&data);
        prop_assert_eq!(sky_ids(&report), naive_skyline_ids(data.points()));
    }

    #[test]
    fn quantile_baselines_also_correct(data in arb_dataset()) {
        let oracle = naive_skyline_ids(data.points());
        for alg in [Algorithm::MrDim, Algorithm::MrGrid] {
            let mut job = SkylineJob::new(alg, 3);
            job.config.baseline_quantile = true;
            let report = job.run(&data);
            prop_assert_eq!(sky_ids(&report), oracle.clone(), "{} quantile", alg);
        }
    }

    #[test]
    fn grid_pruning_is_lossless(data in arb_dataset()) {
        let mut with = SkylineJob::new(Algorithm::MrGrid, 4);
        with.config.grid_dims = 0; // grid all dims so pruning can fire
        let mut without = with.clone();
        without.config.grid_pruning = false;
        let a = with.run(&data);
        let b = without.run(&data);
        prop_assert_eq!(sky_ids(&a), sky_ids(&b));
        prop_assert!(a.metrics.reduce.work_units <= b.metrics.reduce.work_units);
    }

    #[test]
    fn more_servers_never_changes_results(data in arb_dataset()) {
        let small = SkylineJob::new(Algorithm::MrAngle, 1).run(&data);
        let large = SkylineJob::new(Algorithm::MrAngle, 16).run(&data);
        prop_assert_eq!(sky_ids(&small), sky_ids(&large));
    }
}
