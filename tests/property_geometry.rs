//! Property-based tests of the geometric substrate: dominance axioms, the
//! hyperspherical transform, partitioner totality and invariances.

use mr_skyline_suite::skyline::bnl::{bnl_skyline, BnlConfig};
use mr_skyline_suite::skyline::dominance::{compare, dominates, DomRelation};
use mr_skyline_suite::skyline::hypersphere::{to_cartesian, to_hyperspherical};
use mr_skyline_suite::skyline::partition::{
    AnglePartitioner, Bounds, DimPartitioner, GridPartitioner, RandomPartitioner, SpacePartitioner,
};
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::skyline::seq::naive_skyline;
use proptest::prelude::*;

fn arb_coords(d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, d)
}

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    (1usize..=6).prop_flat_map(|d| {
        proptest::collection::vec(arb_coords(d), 1..80).prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, c)| Point::new(i as u64, c))
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_is_a_strict_partial_order(pts in arb_points()) {
        for p in &pts {
            prop_assert!(!dominates(p, p), "irreflexive");
        }
        for p in &pts {
            for q in &pts {
                prop_assert!(!(dominates(p, q) && dominates(q, p)), "asymmetric");
                for r in &pts {
                    if dominates(p, q) && dominates(q, r) {
                        prop_assert!(dominates(p, r), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn compare_is_antisymmetric(a in arb_coords(4), b in arb_coords(4)) {
        let p = Point::new(0, a);
        let q = Point::new(1, b);
        let expected = match compare(&p, &q) {
            DomRelation::LeftDominates => DomRelation::RightDominates,
            DomRelation::RightDominates => DomRelation::LeftDominates,
            other => other,
        };
        prop_assert_eq!(compare(&q, &p), expected);
    }

    #[test]
    fn skyline_is_sound_and_complete(pts in arb_points()) {
        let sky = bnl_skyline(&pts, &BnlConfig::default());
        // soundness: no skyline member dominated by any input point
        for s in &sky {
            prop_assert!(!pts.iter().any(|q| dominates(q, s)));
        }
        // completeness: every excluded point dominated by a skyline member
        let ids: std::collections::HashSet<u64> = sky.iter().map(Point::id).collect();
        for p in &pts {
            if !ids.contains(&p.id()) {
                prop_assert!(sky.iter().any(|s| dominates(s, p)));
            }
        }
        // minimality: equals the reference implementation
        prop_assert_eq!(sky.len(), naive_skyline(&pts).len());
    }

    #[test]
    fn hypersphere_round_trip(coords in (2usize..=8).prop_flat_map(arb_coords)) {
        let p = Point::new(7, coords);
        let h = to_hyperspherical(&p);
        prop_assert!(h.r >= 0.0);
        for &a in h.angles.iter() {
            prop_assert!((0.0..=std::f64::consts::FRAC_PI_2 + 1e-9).contains(&a));
        }
        let back = to_cartesian(&h);
        for i in 0..p.dim() {
            let err = (back.coord(i) - p.coord(i)).abs();
            prop_assert!(err < 1e-7 * (1.0 + p.coord(i)), "dim {}: {}", i, err);
        }
    }

    #[test]
    fn radius_scaling_preserves_angles(coords in (2usize..=6).prop_flat_map(arb_coords), k in 0.1f64..50.0) {
        let p = Point::new(0, coords.clone());
        let scaled = Point::new(1, coords.iter().map(|v| v * k).collect::<Vec<_>>());
        let hp = to_hyperspherical(&p);
        let hs = to_hyperspherical(&scaled);
        if hp.r > 1e-9 {
            for (a, b) in hp.angles.iter().zip(hs.angles.iter()) {
                prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn partitioners_are_total_and_in_range(pts in arb_points(), np in 1usize..20) {
        let bounds = Bounds::from_points(&pts).unwrap();
        let d = bounds.dim();
        let parts: Vec<Box<dyn SpacePartitioner>> = vec![
            Box::new(DimPartitioner::fit(&bounds, np).unwrap()),
            Box::new(DimPartitioner::fit_quantile(&pts, np).unwrap()),
            Box::new(GridPartitioner::fit(&bounds, np).unwrap()),
            Box::new(GridPartitioner::fit_on_dims(&bounds, np, 2.min(d)).unwrap()),
            Box::new(GridPartitioner::fit_quantile(&pts, np, 2.min(d)).unwrap()),
            Box::new(AnglePartitioner::fit(&bounds, np).unwrap()),
            Box::new(AnglePartitioner::fit_quantile(&pts, np).unwrap()),
            Box::new(RandomPartitioner::new(d, np).unwrap()),
        ];
        for part in &parts {
            for p in &pts {
                let idx = part.partition_of(p);
                prop_assert!(idx < part.num_partitions(), "{}", part.name());
            }
        }
    }

    #[test]
    fn partition_assignment_is_stable(pts in arb_points(), np in 1usize..10) {
        // the same point always lands in the same partition — required for
        // incremental maintenance
        let part = AnglePartitioner::fit_quantile(&pts, np).unwrap();
        for p in &pts {
            prop_assert_eq!(part.partition_of(p), part.partition_of(p));
        }
    }

    #[test]
    fn bnl_window_size_is_semantically_invisible(pts in arb_points(), w in 1usize..50) {
        let mut a: Vec<u64> = bnl_skyline(&pts, &BnlConfig::default())
            .iter().map(Point::id).collect();
        let mut b: Vec<u64> = bnl_skyline(&pts, &BnlConfig::with_window(w))
            .iter().map(Point::id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
