//! Chaos integration: seeded fault injection, bounded retries, and
//! checkpoint/resume across the whole execution stack — with the headline
//! property that none of it changes a single output bit.
//!
//! Injected faults are *real*: map tasks panic and re-run, shuffle
//! segments drop and re-fetch, parallel chunks die and are re-executed by
//! surviving workers, and the kill switch crashes a run mid-reduce so the
//! resilient driver resumes it from checkpoints. Every test compares the
//! survivor against a fault-free oracle, bit for bit.

use mr_skyline_suite::chaos::{FaultKind, FaultPlan, FaultSite, SiteRule};
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{generate_qws, Dataset, QwsConfig};
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::trace::{EventKind, Tracer};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Once;

/// Chaos faults abort tasks by panicking on purpose, and every one of
/// them is caught and retried. Keep those expected panics out of the test
/// output (the default hook would print a report per injection) while
/// leaving real panics loud.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !(text.starts_with("chaos:") || text.starts_with("mrsky-chaos:")) {
                default_hook(info);
            }
        }));
    });
}

/// The skyline as sorted `(id, coordinate bit patterns)` rows — equality
/// on this is bit-for-bit equality, not approximate.
fn fingerprint(report: &SkylineRunReport) -> Vec<(u64, Vec<u64>)> {
    let mut rows: Vec<(u64, Vec<u64>)> = report
        .global_skyline
        .iter()
        .map(|p| (p.id(), p.coords().iter().map(|c| c.to_bits()).collect()))
        .collect();
    rows.sort();
    rows
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mrsky-chaos-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Arbitrary small datasets, quantised so ties and duplicates happen.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..=4).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(0u8..32, d), 1..90).prop_map(
            move |rows| {
                let points: Vec<Point> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        Point::new(
                            i as u64,
                            row.iter().map(|&v| f64::from(v) * 0.5).collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                Dataset::new("prop", points)
            },
        )
    })
}

/// Arbitrary fault plans over every execution-path site, with rates up to
/// 40% and a retry budget the decision function converges within.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0u64..u64::MAX, 3u32..7),
        (0u32..400, 0u32..400, 0u32..400, 0u32..400),
    )
        .prop_map(
            |((seed, max_attempts), (chunk, map, fetch, dfs))| FaultPlan {
                seed,
                max_attempts,
                rules: vec![
                    SiteRule {
                        site: FaultSite::ParallelChunk,
                        kind: FaultKind::Panic,
                        permille: chunk,
                    },
                    SiteRule {
                        site: FaultSite::MapTask,
                        kind: FaultKind::Panic,
                        permille: map,
                    },
                    SiteRule {
                        site: FaultSite::ShuffleFetch,
                        kind: FaultKind::DropRecord,
                        permille: fetch,
                    },
                    SiteRule {
                        site: FaultSite::DfsRead,
                        kind: FaultKind::TransientError,
                        permille: dfs,
                    },
                ],
                ..FaultPlan::off()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: for any dataset, any seeded fault plan
    /// within its retry budget, and any cluster size, the chaos run's
    /// skyline equals the fault-free oracle bit for bit.
    #[test]
    fn any_fault_plan_yields_the_exact_skyline(
        data in arb_dataset(),
        plan in arb_plan(),
        servers in 1usize..6,
    ) {
        quiet_chaos_panics();
        let clean = SkylineJob::new(Algorithm::MrAngle, servers).run(&data);
        let chaotic = SkylineJob::new(Algorithm::MrAngle, servers)
            .with_chaos(plan)
            .run(&data);
        prop_assert_eq!(fingerprint(&chaotic), fingerprint(&clean));
    }

    /// Same property through the checkpointing writer: persisting every
    /// partition's local skyline on the way changes nothing.
    #[test]
    fn checkpointed_chaos_run_is_still_exact(
        data in arb_dataset(),
        seed in 0u64..u64::MAX,
    ) {
        quiet_chaos_panics();
        let dir = unique_dir("prop");
        let clean = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        let chaotic = SkylineJob::new(Algorithm::MrAngle, 4)
            .with_chaos(FaultPlan::light(seed))
            .with_checkpoints(&dir)
            .run(&data);
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(fingerprint(&chaotic), fingerprint(&clean));
    }
}

/// Seeded regression corpus: failure schedules that once exercised real
/// recovery paths, pinned so they re-run forever. Each entry is
/// `(profile, chaos seed, n, dims, servers)`.
const CORPUS: &[(&str, u64, usize, usize, usize)] = &[
    ("light", 1, 300, 4, 4),
    ("light", 7, 500, 5, 8),
    ("light", 42, 200, 2, 2),
    ("heavy", 2, 250, 3, 3),
    ("heavy", 11, 400, 6, 6),
    ("heavy", 0xDEAD_BEEF, 350, 4, 5),
];

#[test]
fn seeded_regression_corpus_is_exact_and_really_injects() {
    quiet_chaos_panics();
    for &(profile, seed, n, dims, servers) in CORPUS {
        let data = generate_qws(&QwsConfig::new(n, dims));
        let plan = FaultPlan::profile(profile, seed).unwrap();
        let clean = SkylineJob::new(Algorithm::MrAngle, servers).run(&data);
        let tracer = Tracer::in_memory();
        let chaotic = SkylineJob::new(Algorithm::MrAngle, servers)
            .with_chaos(plan)
            .with_tracer(tracer.clone())
            .run(&data);
        assert_eq!(
            fingerprint(&chaotic),
            fingerprint(&clean),
            "{profile} seed {seed} diverged from the oracle"
        );
        let injected = tracer
            .drain()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
            .count();
        if profile == "heavy" {
            assert!(
                injected > 0,
                "{profile} seed {seed} injected nothing — the corpus entry is dead"
            );
        }
    }
}

/// Splits a trace at the `RunResumed` marker and returns, for the resumed
/// segment, the restored partition set and the recomputed partition set.
fn resumed_segment_partitions(
    events: &[mr_skyline_suite::trace::TraceEvent],
) -> (BTreeSet<u64>, BTreeSet<u64>) {
    let resume_at = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::RunResumed { .. }))
        .expect("trace has a run_resumed marker");
    let mut restored = BTreeSet::new();
    let mut recomputed = BTreeSet::new();
    for e in &events[resume_at..] {
        match e.kind {
            EventKind::CheckpointRestored { partition, .. } => {
                restored.insert(partition);
            }
            EventKind::PartitionLocalSkyline { partition, .. } => {
                recomputed.insert(partition);
            }
            _ => {}
        }
    }
    (restored, recomputed)
}

/// The `--chaos-kill-after` scenario end to end: the kill switch crashes
/// the run mid-reduce, the resilient driver resumes from checkpoints, the
/// finished partitions are restored rather than recomputed, and the final
/// skyline is bit-identical to a run that never crashed.
#[test]
fn killed_run_resumes_without_recomputing_finished_partitions() {
    quiet_chaos_panics();
    let data = generate_qws(&QwsConfig::new(800, 4));
    let clean = SkylineJob::new(Algorithm::MrAngle, 8).run(&data);

    let dir = unique_dir("kill");
    let mut plan = FaultPlan::light(3);
    plan.kill_after_checkpoints = Some(4);
    let tracer = Tracer::in_memory();
    let survived = SkylineJob::new(Algorithm::MrAngle, 8)
        .with_chaos(plan)
        .with_checkpoints(&dir)
        .with_tracer(tracer.clone())
        .run_resilient(&data)
        .expect("plan audit is clean");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(fingerprint(&survived), fingerprint(&clean));
    let events = tracer.drain();
    let (restored, recomputed) = resumed_segment_partitions(&events);
    assert!(
        restored.len() >= 4,
        "the killed run checkpointed at least 4 partitions; restored {restored:?}"
    );
    assert!(
        restored.is_disjoint(&recomputed),
        "a restored partition was recomputed: {:?}",
        restored.intersection(&recomputed).collect::<Vec<_>>()
    );
    // the resumed trace passes schema validation, crash and all
    assert!(
        mr_skyline_suite::trace::validate_events(&events).is_empty(),
        "resumed trace violates the event schema"
    );
}

/// Resuming a *finished* run restores every partition and recomputes
/// none: the second run does no local-skyline work at all.
#[test]
fn resuming_a_finished_run_recomputes_nothing() {
    let data = generate_qws(&QwsConfig::new(600, 4));
    let dir = unique_dir("resume");
    let first = SkylineJob::new(Algorithm::MrAngle, 6)
        .with_checkpoints(&dir)
        .run(&data);
    let tracer = Tracer::in_memory();
    let second = SkylineJob::new(Algorithm::MrAngle, 6)
        .with_checkpoints(&dir)
        .with_resume(true)
        .with_tracer(tracer.clone())
        .run(&data);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(fingerprint(&second), fingerprint(&first));
    let events = tracer.drain();
    let restored = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CheckpointRestored { .. }))
        .count();
    let recomputed = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PartitionLocalSkyline { .. }))
        .count();
    assert!(restored > 0, "resume restored nothing");
    assert_eq!(recomputed, 0, "resume recomputed {recomputed} partitions");
}
