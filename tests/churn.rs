//! Dynamic-registry integration: incremental maintenance stays consistent
//! with batch recomputation under arbitrary churn.

use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::dataset::{update_stream, Update};
use mr_skyline_suite::qws::{generate_qws, QwsConfig};
use mr_skyline_suite::skyline::point::Point;
use mr_skyline_suite::skyline::seq::naive_skyline_ids;
use proptest::prelude::*;

fn replay(live: &mut Vec<Point>, u: &Update) {
    match u {
        Update::Add(p) => live.push(p.clone()),
        Update::Remove(id) => {
            let pos = live.iter().position(|p| p.id() == *id).expect("live id");
            live.swap_remove(pos);
        }
    }
}

fn registry_ids(reg: &MaintainedRegistry) -> Vec<u64> {
    let mut ids: Vec<u64> = reg.skyline().iter().map(Point::id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn long_churn_stream_stays_consistent() {
    let data = generate_qws(&QwsConfig::new(500, 4));
    let mut reg =
        MaintainedRegistry::bootstrap(Algorithm::MrAngle, 8, &data).expect("partitioner fit");
    let mut live = data.points().to_vec();
    for (i, u) in update_stream(&data, 1000, 0.55, 0.1, 11).iter().enumerate() {
        reg.apply(u);
        replay(&mut live, u);
        if i % 97 == 0 {
            assert_eq!(registry_ids(&reg), naive_skyline_ids(&live), "event {i}");
        }
    }
    assert_eq!(registry_ids(&reg), naive_skyline_ids(&live));
    assert_eq!(reg.len(), live.len());
}

#[test]
fn registry_survives_draining_to_empty_and_refilling() {
    let data = generate_qws(&QwsConfig::new(30, 3));
    let mut reg =
        MaintainedRegistry::bootstrap(Algorithm::MrGrid, 2, &data).expect("partitioner fit");
    for p in data.points() {
        reg.apply(&Update::Remove(p.id()));
    }
    assert!(reg.is_empty());
    assert!(reg.skyline().is_empty());
    // refill
    for p in data.points() {
        reg.apply(&Update::Add(p.clone()));
    }
    assert_eq!(reg.len(), 30);
    assert_eq!(registry_ids(&reg), naive_skyline_ids(data.points()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_churn_matches_batch(
        seed in 0u64..5000,
        steps in 1usize..120,
        add_prob in 0.2f64..0.9,
    ) {
        let data = generate_qws(&QwsConfig::new(60, 3).with_seed(seed));
        let mut reg = MaintainedRegistry::bootstrap(Algorithm::MrAngle, 4, &data).expect("partitioner fit");
        let mut live = data.points().to_vec();
        for u in update_stream(&data, steps, add_prob, 0.15, seed ^ 0xABCD) {
            reg.apply(&u);
            replay(&mut live, &u);
        }
        prop_assert_eq!(registry_ids(&reg), naive_skyline_ids(&live));
    }

    #[test]
    fn partitioner_choice_does_not_affect_maintained_skyline(
        seed in 0u64..1000,
        steps in 1usize..60,
    ) {
        let data = generate_qws(&QwsConfig::new(50, 3).with_seed(seed));
        let stream = update_stream(&data, steps, 0.6, 0.1, seed);
        let mut angle = MaintainedRegistry::bootstrap(Algorithm::MrAngle, 4, &data).expect("partitioner fit");
        let mut dim = MaintainedRegistry::bootstrap(Algorithm::MrDim, 4, &data).expect("partitioner fit");
        let mut random = MaintainedRegistry::bootstrap(Algorithm::MrRandom, 4, &data).expect("partitioner fit");
        for u in &stream {
            angle.apply(u);
            dim.apply(u);
            random.apply(u);
        }
        prop_assert_eq!(registry_ids(&angle), registry_ids(&dim));
        prop_assert_eq!(registry_ids(&angle), registry_ids(&random));
    }
}
