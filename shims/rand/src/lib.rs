//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *exact* API surface it consumes: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`. The generator is
//! splitmix64 — a well-tested 64-bit mixer with full period over its state,
//! more than adequate for test-data synthesis and property tests (this
//! workspace never uses `rand` for anything security-sensitive).
//!
//! Determinism matters here: every experiment seeds via `seed_from_u64`,
//! so results are reproducible across runs and machines as long as this
//! module's mixing constants stay fixed.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats, full range for integers, fair coin for bool).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the primitive numeric types.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            // the macro covers usize/isize, which have no `From` into i128
            #[allow(clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            // the macro covers usize/isize, which have no `From` into i128
            #[allow(clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64: the standard seeding PRNG from Vigna's xoshiro family.
    /// Passes BigCrush when used as shown (finalizer applied per output).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inclusive = [false; 3];
        for _ in 0..1_000 {
            seen_inclusive[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen_inclusive.iter().all(|&s| s));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(17);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
