//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API: `lock()`
//! returns the guard directly. A poisoned std mutex means a worker thread
//! panicked while holding the lock; the scoped-thread pools in this
//! workspace propagate such panics at join time anyway, so recovering the
//! inner value here matches parking_lot's semantics without losing the
//! crash signal.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
