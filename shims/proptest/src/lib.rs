//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_flat_map`, range strategies over
//! primitive numerics, `Just`, tuple strategies, `collection::vec`, and
//! `ProptestConfig::with_cases`. Inputs are generated from a deterministic
//! splitmix64 stream seeded per test case, so failures reproduce exactly.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports the raw inputs via the panic
//!   message of the underlying `assert!`;
//! - `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `TestCaseError` (equivalent test outcome, simpler plumbing).

pub mod test_runner {
    pub use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

    /// Deterministic case-input generator handed to strategies.
    pub struct TestRng(pub StdRng);

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // Stable per-test seed: FNV-1a over the test name, mixed with
            // the case index so each case draws a fresh stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32)))
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::{Rng, TestRng};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rng, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_strategy_respects_bounds() {
        let strat = crate::collection::vec(0u64..10, 2..5);
        let mut rng = TestRng::for_case("vec_strategy_respects_bounds", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (1usize..=4).prop_flat_map(|d| crate::collection::vec(0.0f64..1.0, d));
        let mut rng = TestRng::for_case("flat_map_threads_dependent_values", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(x in 0u32..50, y in 0.0f64..1.0, pair in (0u8..4, Just(7u8))) {
            prop_assert!(x < 50);
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert_eq!(pair.1, 7);
            prop_assert_ne!(usize::from(pair.0), 9);
        }
    }
}
