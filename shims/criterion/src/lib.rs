//! Offline stand-in for `criterion`.
//!
//! Provides the measurement API the workspace's benches use — groups,
//! `bench_with_input`, `BenchmarkId`, `black_box`, the `criterion_group!`/
//! `criterion_main!` macros — with a simple wall-clock sampler instead of
//! criterion's statistical engine: warm-up once, time `sample_size`
//! batches, report the median batch. Good enough to compare kernels and
//! catch order-of-magnitude regressions; not a replacement for criterion's
//! confidence intervals.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;

pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
            // mirrors criterion's `--test` CLI flag (smoke mode): run every
            // bench body exactly once and skip measurement entirely
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Forces `--test` mode on or off programmatically (the CLI flag sets
    /// the same switch).
    pub fn with_test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// `true` when running as a `--test` smoke pass rather than measuring.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(name, self.sample_size, self.test_mode, f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.test_mode,
            |b| {
                f(b, input);
            },
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    samples: usize,
    median_ns: f64,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            // smoke pass: execute the body once so panics/assertions still
            // surface, but measure nothing
            black_box(f());
            self.iters_per_sample = 1;
            return;
        }
        // Warm-up + calibration: size a batch to ~1ms so per-call timer
        // overhead is negligible for fast kernels.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let per_sample = (1_000_000 / once).clamp(1, 10_000) as u64;

        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / per_sample as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
        self.iters_per_sample = per_sample;
    }
}

fn run_one(label: &str, samples: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        median_ns: 0.0,
        iters_per_sample: 0,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("test bench {label:<50} ok");
        return;
    }
    let (value, unit) = humanize_ns(b.median_ns);
    println!(
        "bench {label:<50} {value:>9.3} {unit}/iter  ({} samples x {} iters)",
        samples, b.iters_per_sample
    );
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s ")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    }
}

/// Bundles bench functions into a group runner, mirroring criterion's
/// simple (non-config) form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default().with_test_mode(false);
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion::default().with_test_mode(true);
        assert!(c.is_test_mode());
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        // one warm-free execution, no sampling loop
        assert_eq!(calls, 1);
    }
}
