//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace tags its config and report structs with serde derives for
//! API compatibility, but all actual serialization goes through the
//! hand-rolled JSON writer in `mr-skyline::json` — no generated code is
//! ever called. With the registry unreachable, these derives expand to
//! nothing, which keeps every `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attribute in the tree compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
