//! Offline stand-in for `crossbeam`'s scoped threads.
//!
//! Since Rust 1.63 the standard library ships structured scoped threads,
//! so crossbeam's `scope` can be expressed directly on top of
//! `std::thread::scope`. Two API differences are bridged here:
//!
//! 1. crossbeam's spawn closures receive the scope as an argument (so
//!    workers can spawn recursively); std's take no argument. The wrapper
//!    hands each closure a fresh `Scope` borrowing the std scope.
//! 2. crossbeam's `scope` returns `Err` when a child thread panicked
//!    instead of unwinding; std re-raises the child panic at join. The
//!    wrapper catches that unwind and converts it back to a `Result`.

use std::any::Any;

pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        self.0.spawn(move || f(&Scope(inner)))
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope(s)))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn child_panic_becomes_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
