//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` and `#[derive(serde::Serialize)]` keep compiling without
//! registry access. No trait machinery is provided because nothing in the
//! workspace takes `T: Serialize` bounds — serialization is done by the
//! hand-rolled writer in `mr-skyline::json`.

pub use serde_derive::{Deserialize, Serialize};
