//! `mrsky` — command-line front end for the MapReduce skyline suite.
//!
//! ```text
//! mrsky generate --out services.csv --n 10000 --dims 6 [--dist qws|indep|corr|anti] [--seed 42]
//! mrsky skyline  --data services.csv [--algorithm angle|dim|grid|random|seq] [--servers 8] [--force]
//! mrsky compare  --data services.csv [--servers 8]
//! mrsky select   --data services.csv --weights 1,2,0.5 [--top 5] [--diverse K | --covering K]
//! ```
//!
//! Run any subcommand with `--help` for its flags. All randomness is seeded;
//! identical invocations produce identical output.

use mr_skyline_suite::chaos::{FaultPlan, KillSwitch};
use mr_skyline_suite::mr::checkpoint::CheckpointStore;
use mr_skyline_suite::mr::prelude::*;
use mr_skyline_suite::qws::{
    generate_qws, generate_synthetic, Dataset, Distribution, QwsConfig, SyntheticConfig,
};
use mr_skyline_suite::serve::{
    load_script, LoadRunner, LoadgenConfig, Mutation, Op, ServeConfig, SkylineService,
};
use mr_skyline_suite::trace::{self, EpochClock, TraceSummary, Tracer, VecSink};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Real wall-clock timestamps for interactive CLI runs. The runtime
/// crates themselves never read the wall clock (the `no-wall-clock`
/// lint enforces it); the CLI, as the outermost real-time consumer,
/// injects this clock into the tracer it owns.
struct WallClock {
    epoch: std::time::Instant,
}

impl EpochClock for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

fn main() -> ExitCode {
    // The chaos kill switch aborts a run by panicking, and the resilient
    // driver catches it and resumes — an expected, recovered event. Print
    // one line for it instead of the default panic report; everything
    // else keeps the default hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let simulated = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("mrsky-chaos:"));
        if simulated {
            eprintln!("simulated crash: kill switch tripped; resuming from checkpoints");
        } else {
            default_hook(info);
        }
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let rest = &args[1..];
    let result = match command {
        "generate" => cmd_generate(rest),
        "skyline" => cmd_skyline(rest),
        "compare" => cmd_compare(rest),
        "select" => cmd_select(rest),
        "sweep" => cmd_sweep(rest),
        "trace" => cmd_trace(rest),
        "insight" => cmd_insight(rest),
        "chaos" => cmd_chaos(rest),
        "serve" => cmd_serve(rest),
        "loadgen" => cmd_loadgen(rest),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "mrsky — MapReduce skyline query processing (IPDPSW'12 reproduction)

USAGE:
  mrsky generate --out FILE [--n 10000] [--dims 6] [--dist qws|indep|corr|anti] [--seed 42]
  mrsky skyline  --data FILE [--algorithm angle|dim|grid|random|seq] [--servers 8] [--force]
  mrsky compare  --data FILE [--servers 8]
  mrsky select   --data FILE --weights W1,W2,... [--top 5] [--diverse K | --covering K]
                 [--algorithm angle] [--servers 8]
  mrsky sweep    --data FILE --servers 4,8,16,32 [--algorithm angle] [--json]
  mrsky trace    --summary FILE | --validate FILE | --chrome OUT FILE
  mrsky insight  [--critical-path] [--stragglers] [--skew] [--what-if-speculation] FILE
  mrsky chaos    plan --profile light|heavy [--seed 42] [--kill-after N] [--out FILE]
  mrsky chaos    replay --plan FILE --data FILE [--algorithm angle] [--servers 8]
  mrsky loadgen  [--seed 7] [--tenants 3] [--ops 400] [--dim 3] [--out FILE]
  mrsky serve    [--ops 400] [--seed 7] [--tenants 3] [--dim 3] [--skyband-k 4]
                 [--max-attempts N] [--breaker-threshold 3]
                 [--chaos-profile off|light|heavy] [--chaos-seed 42]
                 [--checkpoint-dir DIR] [--kill-after N] [--trace FILE] [--json]

Any command accepting --data FILE also accepts --qws-file FILE to read the
original QWS v2 dataset file (9 QoS columns + name + WSDL).

Pruning knobs (skyline / compare / sweep):
  --kernel NAME           local-skyline kernel: bnl (default), sfs, salsa,
                          dnc, or auto (per-partition cost-model selection)
  --filter-k N            broadcast N filter points to the map tasks and drop
                          dominated rows before the shuffle (default: 8*dims,
                          at least 16)
  --no-filter             disable the map-side filter sweep
  --no-sector-prune       disable witness-based partition pruning
  --streaming-merge       stream local skylines into the global merge as
                          reduce tasks finish, removing the reduce barrier

Scale knobs (skyline / compare / sweep):
  --row-shuffle           disable the zero-copy block shuffle and ship every
                          routed block as a separate value (seed semantics)
  --static-executor       disable work stealing; assign fixed task chunks to
                          host threads
  --spill-budget BYTES    spill reduce inputs larger than BYTES to disk after
                          the shuffle and reload them just-in-time
  --spill-dir DIR         directory for spill files (default: system temp)

Observability (skyline / compare / sweep):
  --trace FILE            record a structured event trace of the run
  --trace-format FORMAT   jsonl (replayable, default) or chrome
                          (load in Perfetto / chrome://tracing)
  --metrics               print Prometheus-format counters and histograms
                          (dominance tests, window overflows, SIMD dispatch,
                          local-skyline sizes) after the run

Fault injection & recovery (skyline):
  --chaos-profile NAME    arm a seeded fault plan: off (default), light, heavy
  --chaos-seed N          seed folded into every injection decision (default 42)
  --chaos-kill-after N    simulate a crash after N partition checkpoints, then
                          auto-resume (requires --checkpoint-dir)
  --checkpoint-dir DIR    persist per-partition local skylines for resume
  --resume                restore finished partitions from --checkpoint-dir
                          instead of recomputing them

`mrsky trace` replays a recorded JSONL trace: --summary renders per-phase
task/retry/speculation tables, --chrome converts to a Perfetto-loadable
JSON file, --validate checks event-schema invariants.

`mrsky insight` analyzes a recorded JSONL trace: --critical-path extracts
the longest weighted chain with per-phase blame summing to the simulated
wall time, --stragglers flags tasks slow against their phase median (with
steal-rescue marks), --skew scores per-partition row and kernel-time Gini
and names the hot partition, --what-if-speculation estimates the wall time
a perfectly timed backup of the slowest task would save. With no section
flags, all sections print.

`mrsky chaos plan` writes a fault plan as JSON; `mrsky chaos replay` re-runs
a skyline job under a recorded plan and verifies the result against the
fault-free oracle — the exactness-under-failure contract, on demand.

`mrsky loadgen` prints a seeded, deterministic op script (tenant inserts,
deletes, poison payloads, queries) for the serving layer. `mrsky serve`
boots the fault-hardened incremental skyline service, drives that same
seeded workload through it (optionally under a chaos profile, optionally
crashing and resuming from --checkpoint-dir when --kill-after is set),
verifies every fresh response and the final quiesced skylines against a
recompute oracle, and reports request-path stats; --json emits the report
as one machine-readable JSON object for CI.";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .replace('_', "")
            .parse()
            .map_err(|_| format!("{name} expects an integer, got `{v}`")),
    }
}

/// The simulated cluster cannot exist with zero servers; refuse up front
/// instead of letting `ClusterConfig` abort.
fn flag_servers(args: &[String]) -> Result<usize, String> {
    let servers = flag_usize(args, "--servers", 8)?;
    if servers == 0 {
        return Err("--servers must be at least 1".into());
    }
    Ok(servers)
}

/// Parses `--chaos-profile`, `--chaos-seed`, and `--chaos-kill-after` into
/// a [`FaultPlan`] (the plan is `off` when no chaos flag is given).
fn chaos_opts(args: &[String]) -> Result<FaultPlan, String> {
    let profile = flag(args, "--chaos-profile").unwrap_or_else(|| "off".into());
    let seed = flag_usize(args, "--chaos-seed", 42)? as u64;
    let mut plan = FaultPlan::profile(&profile, seed)
        .ok_or_else(|| format!("unknown chaos profile `{profile}` (expected off|light|heavy)"))?;
    if let Some(n) = flag(args, "--chaos-kill-after") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("--chaos-kill-after expects an integer, got `{n}`"))?;
        plan.kill_after_checkpoints = Some(n);
    }
    Ok(plan)
}

/// Parses the pruning knobs shared by `skyline`, `compare`, and `sweep`
/// into an [`AlgoConfig`]: `--filter-k N` pins the broadcast filter size,
/// `--no-filter` disables the map-side filter sweep, `--no-sector-prune`
/// disables witness-based partition pruning, and `--streaming-merge`
/// overlaps the global merge with job 1's reduce wave.
fn pruning_opts(args: &[String]) -> Result<AlgoConfig, String> {
    let mut config = AlgoConfig::default();
    if let Some(k) = flag(args, "--kernel") {
        config.kernel = LocalKernel::parse(&k)
            .ok_or_else(|| format!("unknown kernel `{k}` (expected bnl|sfs|salsa|dnc|auto)"))?;
    }
    if let Some(k) = flag(args, "--filter-k") {
        let k: usize = k
            .parse()
            .map_err(|_| format!("--filter-k expects an integer, got `{k}`"))?;
        config.filter_k = Some(k);
    }
    if args.iter().any(|a| a == "--no-filter") {
        config.filter_k = Some(0);
    }
    if args.iter().any(|a| a == "--no-sector-prune") {
        config.sector_prune = false;
    }
    if args.iter().any(|a| a == "--streaming-merge") {
        config.streaming_merge = true;
    }
    if args.iter().any(|a| a == "--row-shuffle") {
        config.owned_shuffle = false;
    }
    if args.iter().any(|a| a == "--static-executor") {
        config.static_executor = true;
    }
    if let Some(b) = flag(args, "--spill-budget") {
        let b: u64 = b
            .replace('_', "")
            .parse()
            .map_err(|_| format!("--spill-budget expects a byte count, got `{b}`"))?;
        config.spill_budget_bytes = Some(b);
    }
    if let Some(dir) = flag(args, "--spill-dir") {
        if config.spill_budget_bytes.is_none() {
            return Err("--spill-dir needs --spill-budget BYTES".into());
        }
        config.spill_dir = Some(PathBuf::from(dir));
    }
    Ok(config)
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    match s {
        "angle" => Ok(Algorithm::MrAngle),
        "dim" => Ok(Algorithm::MrDim),
        "grid" => Ok(Algorithm::MrGrid),
        "random" => Ok(Algorithm::MrRandom),
        "seq" | "sequential" => Ok(Algorithm::Sequential),
        other => Err(format!(
            "unknown algorithm `{other}` (expected angle|dim|grid|random|seq)"
        )),
    }
}

fn load_data(args: &[String]) -> Result<Dataset, String> {
    if let Some(path) = flag(args, "--qws-file") {
        // the real QWS v2 distribution file
        let (data, _names) = mr_skyline_suite::qws::load_qws_file(PathBuf::from(&path).as_path())
            .map_err(|e| format!("cannot load QWS file `{path}`: {e}"))?;
        return Ok(data);
    }
    let path = flag(args, "--data").ok_or("--data FILE (or --qws-file FILE) is required")?;
    Dataset::load_csv(path.clone(), PathBuf::from(&path).as_path())
        .map_err(|e| format!("cannot load `{path}`: {e}"))
}

/// Observability flags shared by `skyline`, `compare`, and `sweep`.
struct TraceOpts {
    tracer: Tracer,
    out: Option<(PathBuf, String)>,
    metrics: bool,
}

/// Parses `--trace FILE`, `--trace-format jsonl|chrome`, and `--metrics`.
/// Enables the process-global metrics registry when `--metrics` is given so
/// kernels record before the run starts.
fn trace_opts(args: &[String]) -> Result<TraceOpts, String> {
    let metrics = args.iter().any(|a| a == "--metrics");
    if metrics {
        trace::metrics().set_enabled(true);
    }
    let out = match flag(args, "--trace") {
        None => None,
        Some(path) => {
            let format = flag(args, "--trace-format").unwrap_or_else(|| "jsonl".into());
            if format != "jsonl" && format != "chrome" {
                return Err(format!(
                    "--trace-format expects jsonl or chrome, got `{format}`"
                ));
            }
            Some((PathBuf::from(path), format))
        }
    };
    let tracer = if out.is_some() {
        Tracer::with_clock(
            Box::new(VecSink::new()),
            Box::new(WallClock {
                epoch: std::time::Instant::now(),
            }),
        )
    } else {
        Tracer::disabled()
    };
    Ok(TraceOpts {
        tracer,
        out,
        metrics,
    })
}

impl TraceOpts {
    /// Writes the recorded trace (if any) and prints the metrics exposition
    /// (if enabled). Call once, after the instrumented run.
    fn finish(&self) -> Result<(), String> {
        if let Some((path, format)) = &self.out {
            let events = self.tracer.drain();
            let text = if format == "chrome" {
                trace::to_chrome_trace(&events)
            } else {
                let mut s = String::with_capacity(events.len() * 96);
                for e in &events {
                    s.push_str(&e.to_json());
                    s.push('\n');
                }
                s
            };
            std::fs::write(path, text)
                .map_err(|e| format!("cannot write trace to `{}`: {e}", path.display()))?;
            eprintln!(
                "wrote {} trace events to {} ({format})",
                events.len(),
                path.display()
            );
        }
        if self.metrics {
            print!("{}", trace::metrics().snapshot().to_prometheus());
        }
        Ok(())
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("--out FILE is required")?;
    let n = flag_usize(args, "--n", 10_000)?;
    let dims = flag_usize(args, "--dims", 6)?;
    let seed = flag_usize(args, "--seed", 42)? as u64;
    let dist = flag(args, "--dist").unwrap_or_else(|| "qws".to_string());
    let data = match dist.as_str() {
        "qws" => generate_qws(&QwsConfig::new(n, dims).with_seed(seed)),
        "indep" => generate_synthetic(
            &SyntheticConfig::new(n, dims, Distribution::Independent).with_seed(seed),
        ),
        "corr" => generate_synthetic(
            &SyntheticConfig::new(n, dims, Distribution::Correlated).with_seed(seed),
        ),
        "anti" => generate_synthetic(
            &SyntheticConfig::new(n, dims, Distribution::AntiCorrelated).with_seed(seed),
        ),
        other => return Err(format!("unknown distribution `{other}`")),
    };
    data.save_csv(PathBuf::from(&out).as_path())
        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "wrote {} services x {} attributes to {out} ({})",
        data.len(),
        data.dim(),
        data.name
    );
    Ok(())
}

fn cmd_skyline(args: &[String]) -> Result<(), String> {
    let data = load_data(args)?;
    let algorithm = parse_algorithm(&flag(args, "--algorithm").unwrap_or_else(|| "angle".into()))?;
    let servers = flag_servers(args)?;
    let force = args.iter().any(|a| a == "--force");
    let topts = trace_opts(args)?;
    let chaos = chaos_opts(args)?;
    let checkpoint_dir = flag(args, "--checkpoint-dir");
    let resume = args.iter().any(|a| a == "--resume");
    if chaos.kill_after_checkpoints.is_some() && checkpoint_dir.is_none() {
        return Err("--chaos-kill-after needs --checkpoint-dir DIR to resume from".into());
    }
    if resume && checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir DIR".into());
    }
    if chaos.is_active() {
        eprintln!(
            "chaos armed: seed {}, {} rule(s), retry budget {}{}",
            chaos.seed,
            chaos.rules.len(),
            chaos.max_attempts,
            match chaos.kill_after_checkpoints {
                Some(n) => format!(", kill after {n} checkpoint(s)"),
                None => String::new(),
            }
        );
    }
    let mut job = SkylineJob::new(algorithm, servers)
        .with_config(pruning_opts(args)?)
        .with_force(force)
        .with_tracer(topts.tracer.clone())
        .with_chaos(chaos)
        .with_resume(resume);
    if let Some(dir) = checkpoint_dir {
        job = job.with_checkpoints(dir);
    }
    // resilient run: identical to run_checked without chaos, and
    // kill/resume-aware with it
    let report = job.run_resilient(&data).map_err(|audit| {
        format!(
            "plan audit found error-level diagnostics (re-run with --force to override):\n{}",
            audit.render_text()
        )
    })?;
    println!("{}", report.summary());
    println!(
        "partitions: {} (load CV {:.2}, largest {}), pruned: {}, rows filtered: {}",
        report.partitions,
        report.load_balance.cv,
        report.load_balance.max,
        report.pruned_partitions,
        report.rows_filtered
    );
    if report.merge_overlap_seconds > 0.0 {
        println!(
            "streaming merge overlapped {:.2}s of the reduce wave",
            report.merge_overlap_seconds
        );
    }
    println!(
        "peak memory: map-out {} B, reduce-in {} B",
        report.peak_map_out_bytes(),
        report.peak_reduce_in_bytes()
    );
    validate_report(&report, &data).map_err(|e| format!("result failed validation: {e}"))?;
    println!("validated against the independent oracle.");
    topts.finish()
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let data = load_data(args)?;
    let servers = flag_servers(args)?;
    let topts = trace_opts(args)?;
    let config = pruning_opts(args)?;
    for algorithm in Algorithm::paper_trio() {
        let report = SkylineJob::new(algorithm, servers)
            .with_config(config.clone())
            .with_tracer(topts.tracer.clone())
            .run(&data);
        println!("{}", report.summary());
    }
    topts.finish()
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let data = load_data(args)?;
    let algorithm = parse_algorithm(&flag(args, "--algorithm").unwrap_or_else(|| "angle".into()))?;
    let servers: Vec<usize> = flag(args, "--servers")
        .unwrap_or_else(|| "4,8,16,32".into())
        .split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(0) | Err(_) => Err(format!("bad server count `{s}` (must be at least 1)")),
            Ok(n) => Ok(n),
        })
        .collect::<Result<_, _>>()?;
    let json = args.iter().any(|a| a == "--json");
    let config = pruning_opts(args)?;
    let topts = trace_opts(args)?;
    if !json {
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>8}",
            "servers", "map (s)", "reduce (s)", "total (s)", "skyline"
        );
    }
    for &n in &servers {
        let report = SkylineJob::new(algorithm, n)
            .with_config(config.clone())
            .with_tracer(topts.tracer.clone())
            .run(&data);
        if json {
            println!("{}", report.to_json());
        } else {
            println!(
                "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>8}",
                n,
                report.map_time(),
                report.reduce_time(),
                report.processing_time(),
                report.global_skyline.len()
            );
        }
    }
    topts.finish()
}

/// Replays a recorded JSONL trace: summary table, Chrome conversion, or
/// schema validation.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let chrome_out = flag(args, "--chrome");
    let validate = args.iter().any(|a| a == "--validate");
    // the input file is the last operand that is neither a flag nor the
    // --chrome output path
    let input = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--chrome")
        })
        .map(|(_, a)| a.clone())
        .next_back()
        .ok_or("usage: mrsky trace --summary FILE | --validate FILE | --chrome OUT FILE")?;
    let text =
        std::fs::read_to_string(&input).map_err(|e| format!("cannot read trace `{input}`: {e}"))?;
    let events = trace::parse_jsonl(&text).map_err(|e| format!("`{input}`: {e}"))?;

    if validate {
        let problems = trace::validate_events(&events);
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("invalid: {p}");
            }
            return Err(format!(
                "{} schema violation(s) in {} events",
                problems.len(),
                events.len()
            ));
        }
        println!("{} events, schema valid", events.len());
        return Ok(());
    }
    if let Some(out) = chrome_out {
        let json = trace::to_chrome_trace(&events);
        std::fs::write(&out, json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!(
            "wrote Chrome trace for {} events to {out} (open in Perfetto or chrome://tracing)",
            events.len()
        );
        return Ok(());
    }
    // default (and --summary): the human-readable report
    print!("{}", TraceSummary::from_events(&events).render());
    Ok(())
}

/// Analyzes a recorded JSONL trace: critical path, stragglers, partition
/// skew, and the what-if-speculation estimate. Section flags select
/// sections; with none given, all sections print.
fn cmd_insight(args: &[String]) -> Result<(), String> {
    use mr_skyline_suite::insight;
    let want_cp = args.iter().any(|a| a == "--critical-path");
    let want_stragglers = args.iter().any(|a| a == "--stragglers");
    let want_skew = args.iter().any(|a| a == "--skew");
    let want_whatif = args.iter().any(|a| a == "--what-if-speculation");
    let all = !(want_cp || want_stragglers || want_skew || want_whatif);
    let input = args.iter().rfind(|a| !a.starts_with("--")).ok_or(
        "usage: mrsky insight [--critical-path] [--stragglers] [--skew] \
             [--what-if-speculation] FILE",
    )?;
    let text =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read trace `{input}`: {e}"))?;
    let events = trace::parse_jsonl(&text).map_err(|e| format!("`{input}`: {e}"))?;
    let run = insight::RunModel::from_events(&events).map_err(|e| format!("`{input}`: {e}"))?;
    if all || want_cp {
        let cp = insight::critical_path(&run);
        print!("{}", insight::report::render_critical_path(&run, &cp));
    }
    if all || want_stragglers {
        let list = insight::stragglers(&run, insight::DEFAULT_THRESHOLD);
        print!("{}", insight::report::render_stragglers(&list));
    }
    if all || want_skew {
        match insight::skew(&run) {
            Some(report) => print!("{}", insight::report::render_skew(&report)),
            None => println!("partition skew: no partition accounting in this trace"),
        }
    }
    if all || want_whatif {
        let list = insight::what_if_speculation(&run);
        print!("{}", insight::report::render_whatif(&list));
    }
    Ok(())
}

/// `mrsky chaos plan` writes a seeded fault plan as JSON; `mrsky chaos
/// replay` re-runs a skyline job under a recorded plan and verifies the
/// result against the fault-free oracle.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let usage = "usage: mrsky chaos plan --profile light|heavy [--seed 42] [--kill-after N] \
                 [--out FILE]\n       mrsky chaos replay --plan FILE --data FILE \
                 [--algorithm angle] [--servers 8] [--checkpoint-dir DIR]";
    match args.first().map(String::as_str) {
        Some("plan") => {
            let rest = &args[1..];
            let profile = flag(rest, "--profile").unwrap_or_else(|| "light".into());
            let seed = flag_usize(rest, "--seed", 42)? as u64;
            let mut plan = FaultPlan::profile(&profile, seed).ok_or_else(|| {
                format!("unknown chaos profile `{profile}` (expected off|light|heavy)")
            })?;
            if let Some(n) = flag(rest, "--kill-after") {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("--kill-after expects an integer, got `{n}`"))?;
                plan.kill_after_checkpoints = Some(n);
            }
            let json = plan.to_json();
            match flag(rest, "--out") {
                Some(out) => {
                    std::fs::write(&out, format!("{json}\n"))
                        .map_err(|e| format!("cannot write `{out}`: {e}"))?;
                    eprintln!("wrote {profile} fault plan (seed {seed}) to {out}");
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        Some("replay") => {
            let rest = &args[1..];
            let plan_path = flag(rest, "--plan").ok_or("--plan FILE is required")?;
            let text = std::fs::read_to_string(&plan_path)
                .map_err(|e| format!("cannot read plan `{plan_path}`: {e}"))?;
            let plan =
                FaultPlan::from_json(text.trim()).map_err(|e| format!("`{plan_path}`: {e}"))?;
            let data = load_data(rest)?;
            let algorithm =
                parse_algorithm(&flag(rest, "--algorithm").unwrap_or_else(|| "angle".into()))?;
            let servers = flag_servers(rest)?;
            let checkpoint_dir = flag(rest, "--checkpoint-dir");
            if plan.kill_after_checkpoints.is_some() && checkpoint_dir.is_none() {
                return Err(
                    "the plan kills the run after checkpoints; replay needs --checkpoint-dir DIR"
                        .into(),
                );
            }
            eprintln!(
                "replaying fault plan from {plan_path}: seed {}, {} rule(s), retry budget {}",
                plan.seed,
                plan.rules.len(),
                plan.max_attempts
            );
            let mut job = SkylineJob::new(algorithm, servers).with_chaos(plan);
            if let Some(dir) = checkpoint_dir {
                job = job.with_checkpoints(dir);
            }
            let report = job.run_resilient(&data).map_err(|audit| {
                format!(
                    "plan audit found error-level diagnostics:\n{}",
                    audit.render_text()
                )
            })?;
            println!("{}", report.summary());
            validate_report(&report, &data)
                .map_err(|e| format!("chaos run diverged from the fault-free oracle: {e}"))?;
            println!("chaos run matches the fault-free oracle exactly.");
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

/// Parses the workload-shape flags shared by `serve` and `loadgen`.
fn loadgen_opts(args: &[String]) -> Result<LoadgenConfig, String> {
    Ok(LoadgenConfig {
        seed: flag_usize(args, "--seed", 7)? as u64,
        tenants: flag_usize(args, "--tenants", 3)?.max(1),
        operations: flag_usize(args, "--ops", 400)? as u64,
        dim: flag_usize(args, "--dim", 3)?.max(1),
        ..LoadgenConfig::default()
    })
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let cfg = loadgen_opts(args)?;
    let ops = load_script(&cfg);
    let mut text = String::new();
    for op in &ops {
        match op {
            Op::Query { tenant } => text.push_str(&format!("query {tenant}\n")),
            Op::Mutate {
                tenant,
                seq,
                mutation: Mutation::Insert { id, coords },
            } => {
                let coords = coords
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                text.push_str(&format!("insert {tenant} {seq} {id} {coords}\n"));
            }
            Op::Mutate {
                tenant,
                seq,
                mutation: Mutation::Delete { id },
            } => text.push_str(&format!("delete {tenant} {seq} {id}\n")),
        }
    }
    match flag(args, "--out") {
        Some(out) => {
            std::fs::write(&out, text).map_err(|e| format!("cannot write `{out}`: {e}"))?;
            eprintln!(
                "wrote {} ops (seed {}, {} tenant(s)) to {out}",
                ops.len(),
                cfg.seed,
                cfg.tenants
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    let load_cfg = loadgen_opts(args)?;
    let plan = chaos_opts(args)?;
    let mut serve_cfg = ServeConfig {
        skyband_k: flag_usize(args, "--skyband-k", 4)?.max(1),
        ..ServeConfig::default()
    };
    serve_cfg.max_attempts = flag_usize(args, "--max-attempts", 0)? as u32;
    serve_cfg.breaker.failure_threshold = flag_usize(args, "--breaker-threshold", 3)?.max(1) as u32;
    let checkpoint_dir = flag(args, "--checkpoint-dir");
    let kill_after = match flag(args, "--kill-after") {
        None => None,
        Some(n) => Some(
            n.parse::<u64>()
                .map_err(|_| format!("--kill-after expects an integer, got `{n}`"))?,
        ),
    };
    if kill_after.is_some() && checkpoint_dir.is_none() {
        return Err("--kill-after needs --checkpoint-dir DIR to resume from".into());
    }
    let trace_out = flag(args, "--trace");
    let json = args.iter().any(|a| a == "--json");

    let build = |kill: Option<Arc<KillSwitch>>| -> Result<SkylineService, String> {
        let tracer = if trace_out.is_some() {
            Tracer::in_memory()
        } else {
            Tracer::disabled()
        };
        let mut service = SkylineService::new(serve_cfg.clone(), plan.clone(), tracer);
        if let Some(dir) = &checkpoint_dir {
            let store = CheckpointStore::open(dir)
                .map_err(|e| format!("cannot open checkpoint dir `{dir}`: {e}"))?;
            service = service
                .with_store(store)
                .map_err(|e| format!("cannot restore from `{dir}`: {e}"))?;
        }
        if let Some(kill) = kill {
            service = service.with_kill_switch(kill);
        }
        Ok(service)
    };

    let ops = load_script(&load_cfg);
    let mut runner = LoadRunner::new(ops);
    let mut events = Vec::new();
    let mut crashes = 0u64;
    // Arm the kill switch for the first boot only: the simulated crash
    // fires once, and the resumed service runs the log to completion.
    let mut kill = kill_after.map(|n| Arc::new(KillSwitch::new(n)));
    let (report, stats) = loop {
        let service = build(kill.take())?;
        let outcome = catch_unwind(AssertUnwindSafe(|| runner.drive(&service)));
        events.extend(service.tracer().drain());
        match outcome {
            Ok(()) => {
                let stats = service.stats();
                let report = runner.finish(&service);
                events.extend(service.tracer().drain());
                if service.dead_letter_len() > 0 && !json {
                    eprint!("{}", service.dead_letter_report());
                }
                break (report, stats);
            }
            Err(payload) => {
                let simulated = payload
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("mrsky-chaos:"));
                if !simulated {
                    resume_unwind(payload);
                }
                // The runner is still positioned at the interrupted op;
                // the next iteration rebuilds the service from its
                // checkpoints and re-drives from there.
                crashes += 1;
            }
        }
    };

    if let Some(path) = trace_out {
        let mut text = String::with_capacity(events.len() * 96);
        for e in &events {
            text.push_str(&e.to_json());
            text.push('\n');
        }
        std::fs::write(&path, text).map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        eprintln!("wrote {} trace events to {path}", events.len());
    }

    let rejections: u64 = report.rejections.values().sum();
    if json {
        let rej = report
            .rejections
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"ops\":{},\"mutations_ok\":{},\"queries_fresh\":{},\"queries_stale\":{},\
             \"incorrect\":{},\"final_mismatches\":{},\"rejections\":{{{rej}}},\
             \"shed\":{},\"breaker_opens\":{},\"dead_lettered\":{},\"retries_exhausted\":{},\
             \"deadline_exceeded\":{},\"checkpoints\":{},\"repairs_from_buffer\":{},\
             \"underflow_rebuilds\":{},\"crashes\":{crashes}}}",
            report.ops,
            report.mutations_ok,
            report.queries_fresh,
            report.queries_stale,
            report.incorrect,
            report.final_mismatches,
            stats.shed,
            stats.breaker_opens,
            stats.dead_lettered,
            stats.retries_exhausted,
            stats.deadline_exceeded,
            stats.checkpoints,
            stats.skyband.repairs_from_buffer,
            stats.skyband.underflow_rebuilds,
        );
    } else {
        println!(
            "served {} op(s) across {} tenant(s): {} mutation(s) ok, {} fresh / {} stale quer(ies), \
             {} typed rejection(s)",
            report.ops, load_cfg.tenants, report.mutations_ok, report.queries_fresh,
            report.queries_stale, rejections
        );
        for (outcome, n) in &report.rejections {
            println!("  rejected {n} as {outcome}");
        }
        println!(
            "hardening: {} shed, {} breaker open(s), {} dead-letter(s), {} retries-exhausted, \
             {} deadline-exceeded, {} checkpoint(s), {} crash(es)",
            stats.shed,
            stats.breaker_opens,
            stats.dead_lettered,
            stats.retries_exhausted,
            stats.deadline_exceeded,
            stats.checkpoints,
            crashes
        );
        println!(
            "skyband: {} repair(s) from buffer, {} underflow rebuild(s)",
            stats.skyband.repairs_from_buffer, stats.skyband.underflow_rebuilds
        );
    }
    if report.incorrect > 0 || report.final_mismatches > 0 {
        return Err(format!(
            "correctness violation: {} incorrect fresh response(s), {} final mismatch(es)",
            report.incorrect, report.final_mismatches
        ));
    }
    if !json {
        println!("every fresh response and final skyline matched the recompute oracle.");
    }
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let data = load_data(args)?;
    let servers = flag_servers(args)?;
    let algorithm = parse_algorithm(&flag(args, "--algorithm").unwrap_or_else(|| "angle".into()))?;
    let weights: Vec<f64> = flag(args, "--weights")
        .ok_or("--weights W1,W2,... is required")?
        .split(',')
        .map(|w| {
            w.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad weight `{w}`"))
        })
        .collect::<Result<_, _>>()?;
    if weights.len() != data.dim() {
        return Err(format!(
            "{} weights given but the dataset has {} attributes",
            weights.len(),
            data.dim()
        ));
    }
    let top = flag_usize(args, "--top", 5)?;
    let summary = if let Some(k) = flag(args, "--diverse") {
        Summary::Diverse(k.parse().map_err(|_| "--diverse expects an integer")?)
    } else if let Some(k) = flag(args, "--covering") {
        Summary::MaxDominance(k.parse().map_err(|_| "--covering expects an integer")?)
    } else {
        Summary::Full
    };
    let request = SelectionRequest {
        weights,
        top_k: top,
        summary,
    };
    let result = ServiceSelector::new(algorithm, servers).select(&data, &request);
    println!(
        "skyline: {} of {} services; showing {}:",
        result.skyline_size,
        data.len(),
        result.ranked.len()
    );
    for (rank, (service, score)) in result.ranked.iter().enumerate() {
        let coords: Vec<String> = service.coords().iter().map(|v| format!("{v:.2}")).collect();
        println!(
            "  #{:<2} service {:<8} score {:.4}  [{}]",
            rank + 1,
            service.id(),
            score,
            coords.join(", ")
        );
    }
    Ok(())
}
