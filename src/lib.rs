//! # mr-skyline-suite
//!
//! Umbrella crate for the reproduction of *"MapReduce Skyline Query
//! Processing with a New Angular Partitioning Approach"* (Chen, Hwang, Wu —
//! IEEE IPDPSW 2012).
//!
//! Re-exports the four workspace crates so examples and downstream users can
//! depend on a single crate:
//!
//! * [`skyline`] ([`skyline_algos`]) — skyline kernels, partitioners, metrics;
//! * [`mapreduce`] ([`mini_mapreduce`]) — the MapReduce runtime + cluster simulator;
//! * [`qws`] ([`qws_data`]) — QWS-like and synthetic dataset generators;
//! * [`mr`] ([`mr_skyline`]) — the MR-Dim / MR-Grid / MR-Angle algorithms;
//! * [`audit`] ([`mrsky_audit`]) — plan-time static analysis and the
//!   workspace lint pass;
//! * [`trace`] ([`mrsky_trace`]) — structured tracing, the metrics
//!   registry, and the Chrome/Prometheus exporters;
//! * [`chaos`] ([`mrsky_chaos`]) — seeded fault injection, bounded
//!   retries, and the quarantine/kill-switch machinery behind
//!   checkpoint/resume;
//! * [`insight`] ([`mrsky_insight`]) — causal critical-path analysis,
//!   straggler/skew attribution, and the bench regression gate;
//! * [`serve`] ([`mrsky_serve`]) — the fault-hardened online incremental
//!   skyline service: k-skyband deletion repair, circuit breakers,
//!   admission control, and dead-lettering on the request path.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use mini_mapreduce as mapreduce;
pub use mr_skyline as mr;
pub use mrsky_audit as audit;
pub use mrsky_chaos as chaos;
pub use mrsky_insight as insight;
pub use mrsky_serve as serve;
pub use mrsky_trace as trace;
pub use qws_data as qws;
pub use skyline_algos as skyline;
