//! `mrsky-insight`: offline analysis over recorded trace streams.
//!
//! The runtime's tracer (see `mrsky-trace`) records what happened; this
//! crate explains *why it took that long*:
//!
//! - **Model** ([`model`]): rebuilds jobs, phases, tasks, steals, shuffle
//!   accounting, and the causal-edge DAG from a JSONL trace, rebased onto
//!   one run-global sim timeline.
//! - **Critical path** ([`critpath`]): the longest weighted chain through
//!   the run, tiled so per-phase blame sums exactly to the simulated wall
//!   time.
//! - **Stragglers** ([`stragglers`]): tasks slow relative to their phase
//!   median, with work-stealing rescue accounting.
//! - **Skew** ([`skew`]): row-count and kernel-time Gini per partitioner
//!   sector, and the hot partition.
//! - **What-if** ([`whatif`]): wall time perfect speculation would save.
//! - **Gate** ([`gate`]): the `bench-gate` regression check comparing
//!   current `BENCH_*.json` artifacts against committed baselines.
//!
//! Everything is hand-rolled on the standard library plus `mrsky-trace`;
//! no external dependencies.

#![warn(missing_docs)]

pub mod critpath;
pub mod gate;
pub mod model;
pub mod report;
pub mod sim;
pub mod skew;
pub mod stragglers;
pub mod testutil;
pub mod whatif;

pub use critpath::{critical_path, CriticalPath, Segment, SegmentKind};
pub use gate::{evaluate, parse_baselines, BaselineMetric, Direction, GateOutcome};
pub use model::{JobRec, PhaseRec, RunModel, TaskRec};
pub use skew::{gini, skew, SkewReport};
pub use stragglers::{stragglers, Straggler, DEFAULT_THRESHOLD};
pub use whatif::{what_if_speculation, WhatIf};
