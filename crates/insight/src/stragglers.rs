//! Straggler attribution: tasks that ran long relative to their phase's
//! median, with work-stealing rescue accounting.

use crate::model::RunModel;
use mrsky_trace::PhaseKind;

/// Default flagging threshold: a task is a straggler when it ran at least
/// this many times the phase median.
pub const DEFAULT_THRESHOLD: f64 = 1.5;

/// One flagged straggler.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Job the task ran in.
    pub job: String,
    /// Phase the task ran in.
    pub phase: PhaseKind,
    /// Task index (equals the partition id for a partition job's reducers).
    pub task: u64,
    /// Slot it occupied.
    pub slot: u64,
    /// Task duration in sim seconds.
    pub duration: f64,
    /// Phase median duration.
    pub median: f64,
    /// `duration / median`.
    pub ratio: f64,
    /// Whether the work-stealing executor moved this task off its seeded
    /// worker (a steal both rebalances and *marks* the heavy range).
    pub stolen: bool,
}

/// Flags every task whose duration is at least `threshold` times its
/// phase's median, slowest first. Phases with fewer than two tasks are
/// skipped — a single task is trivially "the whole phase", not a straggler.
pub fn stragglers(run: &RunModel, threshold: f64) -> Vec<Straggler> {
    let mut out = Vec::new();
    for job in &run.jobs {
        for phase in [&job.map, &job.reduce] {
            if phase.tasks.len() < 2 {
                continue;
            }
            let median = phase.median_duration();
            if median <= 0.0 {
                continue;
            }
            for t in &phase.tasks {
                let ratio = t.duration() / median;
                if ratio >= threshold {
                    out.push(Straggler {
                        job: job.name.clone(),
                        phase: phase.kind,
                        task: t.task,
                        slot: t.slot,
                        duration: t.duration(),
                        median,
                        ratio,
                        stolen: phase.steals.iter().any(|s| s.task == t.task),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RunModel, StealRec};
    use crate::testutil::{job_events, SimJob};

    #[test]
    fn flags_the_slow_task_and_orders_by_ratio() {
        let job = SimJob::uniform("j", 4, &[1.0, 1.0, 8.0, 1.0], &[1.0, 4.0, 1.0, 1.0]);
        let run = RunModel::from_events(&job_events(&job, 0)).unwrap();
        let s = stragglers(&run, DEFAULT_THRESHOLD);
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].phase, s[0].task), (PhaseKind::Map, 2));
        assert_eq!((s[1].phase, s[1].task), (PhaseKind::Reduce, 1));
        assert!(s[0].ratio > s[1].ratio);
    }

    #[test]
    fn uniform_phases_produce_no_stragglers() {
        let job = SimJob::uniform("j", 2, &[1.0, 1.0, 1.0], &[2.0, 2.0]);
        let run = RunModel::from_events(&job_events(&job, 0)).unwrap();
        assert!(stragglers(&run, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn steal_on_the_straggler_is_reported_as_rescue() {
        let job = SimJob::uniform("j", 2, &[1.0, 5.0, 1.0], &[1.0]);
        let mut run = RunModel::from_events(&job_events(&job, 0)).unwrap();
        run.jobs[0].map.steals.push(StealRec {
            task: 1,
            thief: 0,
            victim: 1,
        });
        let s = stragglers(&run, DEFAULT_THRESHOLD);
        assert_eq!(s.len(), 1);
        assert!(s[0].stolen);
    }
}
