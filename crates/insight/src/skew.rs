//! Partitioner skew scoring: row-count and kernel-time Gini coefficients
//! per sector, plus hot-partition identification.
//!
//! The partition job routes key `k` to reduce task `k % reducers` with
//! `reducers == num_partitions`, so *reduce task index equals partition
//! id* — the reduce-task durations are a faithful per-partition kernel-time
//! proxy without any extra instrumentation.

use crate::model::RunModel;

/// Skew report over the partition job.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// `(partition, input rows)` sorted by partition id.
    pub rows: Vec<(u64, u64)>,
    /// Gini coefficient of the per-partition input row counts (0 =
    /// perfectly even, →1 = one partition holds everything).
    pub row_gini: f64,
    /// Gini coefficient of the partition job's reduce-task durations.
    pub time_gini: f64,
    /// The partition with the most input rows.
    pub hot_partition: u64,
    /// Its row count.
    pub hot_rows: u64,
    /// The local kernel that processed the hot partition (`"pruned"` if it
    /// was skipped, empty for pre-schema traces).
    pub hot_kernel: String,
    /// Mean rows per partition.
    pub mean_rows: f64,
    /// Partitions pruned without running a kernel.
    pub pruned: u64,
}

/// Gini coefficient of a non-negative sample. 0 for empty/all-zero input.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = values.iter().map(|x| x.max(0.0)).collect();
    v.sort_by(f64::total_cmp);
    let sum: f64 = v.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (n as f64 * sum)) - (n as f64 + 1.0) / n as f64
}

/// Builds the skew report. `None` when the trace has no partition job or no
/// per-partition accounting (e.g. a plain word-count trace).
pub fn skew(run: &RunModel) -> Option<SkewReport> {
    if run.partitions.is_empty() {
        return None;
    }
    let rows: Vec<(u64, u64)> = run
        .partitions
        .iter()
        .map(|p| (p.partition, p.input))
        .collect();
    let row_values: Vec<f64> = rows.iter().map(|&(_, r)| r as f64).collect();
    let time_values: Vec<f64> = run
        .job_with_suffix("-partition")
        .map(|j| {
            j.reduce
                .tasks
                .iter()
                .map(super::model::TaskRec::duration)
                .collect()
        })
        .unwrap_or_default();
    let (hot_partition, hot_rows) = rows
        .iter()
        .copied()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
    let hot_kernel = run
        .partitions
        .iter()
        .find(|p| p.partition == hot_partition)
        .map(|p| p.kernel.clone())
        .unwrap_or_default();
    Some(SkewReport {
        row_gini: gini(&row_values),
        time_gini: gini(&time_values),
        hot_partition,
        hot_rows,
        hot_kernel,
        mean_rows: row_values.iter().sum::<f64>() / row_values.len() as f64,
        pruned: run.partitions.iter().filter(|p| p.pruned).count() as u64,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PartitionRec;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12, "even split");
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "{concentrated}");
        assert!(gini(&[1.0, 2.0, 3.0]) > 0.0);
    }

    #[test]
    fn hot_partition_is_the_row_argmax() {
        let mut run = RunModel::default();
        for (p, input, kernel) in [(0u64, 100u64, "bnl"), (1, 900, "salsa"), (2, 50, "bnl")] {
            run.partitions.push(PartitionRec {
                partition: p,
                input,
                output: input / 10,
                pruned: false,
                kernel: kernel.to_string(),
            });
        }
        let report = skew(&run).unwrap();
        assert_eq!(report.hot_partition, 1);
        assert_eq!(report.hot_rows, 900);
        assert_eq!(report.hot_kernel, "salsa", "blame names the kernel");
        assert!(report.row_gini > 0.3);
        assert_eq!(report.time_gini, 0.0, "no partition job in this model");
    }

    #[test]
    fn no_partition_events_means_no_report() {
        assert!(skew(&RunModel::default()).is_none());
    }
}
