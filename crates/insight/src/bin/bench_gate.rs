//! `bench-gate`: fail the build when a pinned bench metric regresses.
//!
//! ```text
//! bench-gate [--baseline benches/bench-baselines.json] [--dir .]
//! ```
//!
//! Reads the committed baseline file, loads each referenced `BENCH_*.json`
//! artifact from `--dir`, and exits non-zero if any pinned metric moved
//! past its tolerance in the bad direction (or could not be resolved).

use mrsky_insight::gate;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = PathBuf::from("benches/bench-baselines.json");
    let mut dir = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--baseline needs a path");
                    return ExitCode::from(2);
                };
                baseline = PathBuf::from(v);
            }
            "--dir" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--dir needs a path");
                    return ExitCode::from(2);
                };
                dir = PathBuf::from(v);
            }
            "--help" | "-h" => {
                println!("bench-gate [--baseline <file>] [--dir <artifact dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let text = match std::fs::read_to_string(&baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-gate: cannot read {}: {e}", baseline.display());
            return ExitCode::from(2);
        }
    };
    let baselines = match gate::parse_baselines(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };

    let outcome = gate::evaluate(&baselines, |file| {
        std::fs::read_to_string(Path::new(&dir).join(file)).ok()
    });
    for check in &outcome.checks {
        println!("{}", check.note);
    }
    let failed = outcome.checks.iter().filter(|c| !c.ok).count();
    if outcome.failed() {
        eprintln!(
            "bench-gate: {failed}/{} pinned metric(s) regressed",
            outcome.checks.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench-gate: all {} pinned metric(s) within tolerance",
            outcome.checks.len()
        );
        ExitCode::SUCCESS
    }
}
