//! What-if analysis: how much wall time would perfect speculation have
//! saved? For each phase we re-run the FIFO list scheduler twice — once
//! with the observed task durations, once with the slowest task clamped to
//! the phase median (what a perfectly timed backup copy would achieve) —
//! and report the difference. Both walls come from the same simulator, so
//! the comparison is apples-to-apples even when the original schedule used
//! speculation or locality placement.

use crate::model::RunModel;
use crate::sim::fifo_schedule;
use mrsky_trace::PhaseKind;

/// What-if result for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Job name.
    pub job: String,
    /// Phase analyzed.
    pub phase: PhaseKind,
    /// The slowest task (the one speculation would back up).
    pub slowest_task: u64,
    /// Its observed duration.
    pub slowest_duration: f64,
    /// Phase wall with observed durations (re-simulated).
    pub baseline_wall: f64,
    /// Phase wall with the slowest task clamped to the median.
    pub speculative_wall: f64,
}

impl WhatIf {
    /// Wall seconds perfect speculation would have saved on this phase.
    pub fn saved(&self) -> f64 {
        (self.baseline_wall - self.speculative_wall).max(0.0)
    }
}

/// Runs the what-if analysis over every phase with at least two tasks,
/// biggest saving first.
pub fn what_if_speculation(run: &RunModel) -> Vec<WhatIf> {
    let mut out = Vec::new();
    for job in &run.jobs {
        for phase in [&job.map, &job.reduce] {
            if phase.tasks.len() < 2 {
                continue;
            }
            let slots = phase
                .tasks
                .iter()
                .map(|t| t.slot as usize)
                .max()
                .unwrap_or(0)
                + 1;
            let mut durations = vec![0.0f64; phase.tasks.len()];
            for t in &phase.tasks {
                let i = t.task as usize;
                if i < durations.len() {
                    durations[i] = t.duration();
                }
            }
            let Some(slowest) =
                (0..durations.len()).max_by(|&a, &b| durations[a].total_cmp(&durations[b]))
            else {
                continue;
            };
            let median = phase.median_duration();
            if durations[slowest] <= median {
                continue;
            }
            let (_, baseline) = fifo_schedule(&durations, slots, 0.0);
            let mut clamped = durations.clone();
            clamped[slowest] = median;
            let (_, speculative) = fifo_schedule(&clamped, slots, 0.0);
            out.push(WhatIf {
                job: job.name.clone(),
                phase: phase.kind,
                slowest_task: slowest as u64,
                slowest_duration: durations[slowest],
                baseline_wall: baseline,
                speculative_wall: speculative,
            });
        }
    }
    out.sort_by(|a, b| b.saved().total_cmp(&a.saved()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RunModel;
    use crate::testutil::{job_events, SimJob};

    #[test]
    fn clamping_the_straggler_saves_wall_time() {
        let job = SimJob::uniform("j", 4, &[1.0, 1.0, 10.0, 1.0], &[1.0, 1.0]);
        let run = RunModel::from_events(&job_events(&job, 0)).unwrap();
        let res = what_if_speculation(&run);
        let map = res
            .iter()
            .find(|w| w.phase == PhaseKind::Map)
            .expect("map analyzed");
        assert_eq!(map.slowest_task, 2);
        assert!(map.saved() > 8.0, "saved {}", map.saved());
        assert!(map.speculative_wall >= 1.0);
    }

    #[test]
    fn uniform_phase_saves_nothing() {
        let job = SimJob::uniform("j", 2, &[1.0, 1.0, 1.0, 1.0], &[1.0]);
        let run = RunModel::from_events(&job_events(&job, 0)).unwrap();
        assert!(what_if_speculation(&run).is_empty());
    }
}
