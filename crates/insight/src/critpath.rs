//! Critical-path extraction over the reconstructed run model.
//!
//! In FIFO list scheduling every task starts either at its phase's start or
//! exactly when its slot's previous task ends, so the longest chain can be
//! recovered by walking backwards from the phase's last-finishing task:
//! follow the same-slot task whose end matches the current task's start
//! until the chain reaches the phase start, then cross the shuffle barrier
//! into the previous phase. The resulting segments *tile* each job's
//! `[0, sim_total]` interval exactly — task segments, explicit wait
//! segments for any scheduling gaps, and one overhead segment — so the
//! per-phase blame always sums to the reported simulated wall time.

use crate::model::{JobRec, PhaseRec, RunModel};
use mrsky_trace::PhaseKind;
use std::collections::BTreeMap;

/// What one critical-path segment spent its time on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentKind {
    /// Fixed job overhead (startup, scheduling).
    Overhead,
    /// Idle time on the critical slot — no task end lines up exactly.
    Wait {
        /// Phase the gap occurred in.
        phase: PhaseKind,
    },
    /// A task execution on the critical chain.
    Task {
        /// Phase the task belongs to.
        phase: PhaseKind,
        /// Task index (for a partition job's reduce phase this *is* the
        /// partition id).
        task: u64,
        /// Slot the task ran on.
        slot: u64,
    },
}

/// One tile of the critical path, in run-global sim seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Job the segment belongs to.
    pub job: String,
    /// What the time was spent on.
    pub kind: SegmentKind,
    /// Run-global start.
    pub start: f64,
    /// Run-global end.
    pub end: f64,
}

impl Segment {
    /// Segment duration in sim seconds.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// The extracted critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Chronological segments tiling the whole run.
    pub segments: Vec<Segment>,
    /// Sum of segment durations — equals the chained simulated wall time.
    pub total: f64,
    /// Blame per `{job}/{map|reduce|overhead}`, summing to `total`.
    pub phase_blame: BTreeMap<String, f64>,
}

fn approx(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + scale.abs())
}

/// Walks one phase backwards from its last-finishing task and returns the
/// chronological chain of task indices (into `phase.tasks`).
fn phase_chain(phase: &PhaseRec) -> Vec<usize> {
    let scale = phase.end;
    let Some(tail) = (0..phase.tasks.len()).max_by(|&a, &b| {
        phase.tasks[a]
            .end
            .total_cmp(&phase.tasks[b].end)
            .then(phase.tasks[b].task.cmp(&phase.tasks[a].task))
    }) else {
        return Vec::new();
    };
    let mut chain = vec![tail];
    let mut visited = vec![false; phase.tasks.len()];
    visited[tail] = true;
    let mut cur = tail;
    while phase.tasks[cur].start > phase.start + 1e-9 * (1.0 + scale.abs()) {
        let cur_start = phase.tasks[cur].start;
        let cur_slot = phase.tasks[cur].slot;
        let candidates = || {
            (0..phase.tasks.len()).filter(|&i| {
                !visited[i] && phase.tasks[i].end <= cur_start + 1e-9 * (1.0 + scale.abs())
            })
        };
        // Same-slot exact predecessor first (the FIFO invariant), then any
        // exact end match, then the latest earlier finisher (gap -> wait).
        let pred = candidates()
            .find(|&i| {
                phase.tasks[i].slot == cur_slot && approx(phase.tasks[i].end, cur_start, scale)
            })
            .or_else(|| candidates().find(|&i| approx(phase.tasks[i].end, cur_start, scale)))
            .or_else(|| {
                candidates().max_by(|&a, &b| phase.tasks[a].end.total_cmp(&phase.tasks[b].end))
            });
        let Some(p) = pred else { break };
        visited[p] = true;
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
}

/// Tiles `[phase.start, phase.end]` with the phase's critical chain,
/// inserting explicit wait segments for any gaps.
fn phase_segments(job: &JobRec, phase: &PhaseRec, out: &mut Vec<Segment>) {
    let scale = phase.end;
    let mut t0 = phase.start;
    for i in phase_chain(phase) {
        let t = &phase.tasks[i];
        if t.start > t0 + 1e-9 * (1.0 + scale.abs()) {
            out.push(Segment {
                job: job.name.clone(),
                kind: SegmentKind::Wait { phase: phase.kind },
                start: job.offset + t0,
                end: job.offset + t.start,
            });
            t0 = t.start;
        }
        out.push(Segment {
            job: job.name.clone(),
            kind: SegmentKind::Task {
                phase: phase.kind,
                task: t.task,
                slot: t.slot,
            },
            start: job.offset + t0,
            end: job.offset + t.end.max(t0),
        });
        t0 = t.end.max(t0);
    }
    if phase.end > t0 + 1e-9 * (1.0 + scale.abs()) {
        out.push(Segment {
            job: job.name.clone(),
            kind: SegmentKind::Wait { phase: phase.kind },
            start: job.offset + t0,
            end: job.offset + phase.end,
        });
    }
}

/// Extracts the run's critical path. Jobs are chained in completion order;
/// within a job the path crosses the shuffle barrier from the reduce chain
/// into the map chain, and the fixed job overhead gets its own segment.
pub fn critical_path(run: &RunModel) -> CriticalPath {
    let mut segments = Vec::new();
    for job in &run.jobs {
        phase_segments(job, &job.map, &mut segments);
        phase_segments(job, &job.reduce, &mut segments);
        let overhead = job.overhead();
        if overhead > 0.0 {
            segments.push(Segment {
                job: job.name.clone(),
                kind: SegmentKind::Overhead,
                start: job.offset + job.reduce.end,
                end: job.offset + job.reduce.end + overhead,
            });
        }
    }
    let mut phase_blame: BTreeMap<String, f64> = BTreeMap::new();
    let mut total = 0.0;
    for s in &segments {
        let key = match &s.kind {
            SegmentKind::Overhead => format!("{}/overhead", s.job),
            SegmentKind::Wait { phase } | SegmentKind::Task { phase, .. } => {
                format!("{}/{}", s.job, phase.as_str())
            }
        };
        *phase_blame.entry(key).or_insert(0.0) += s.duration();
        total += s.duration();
    }
    CriticalPath {
        segments,
        total,
        phase_blame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RunModel;
    use crate::testutil::{job_events, SimJob};

    fn run(job: &SimJob) -> RunModel {
        RunModel::from_events(&job_events(job, 0)).unwrap()
    }

    #[test]
    fn blame_sums_exactly_to_sim_total() {
        let job = SimJob::uniform("j", 3, &[1.0, 4.0, 2.0, 1.5, 0.5], &[2.0, 1.0]);
        let model = run(&job);
        let cp = critical_path(&model);
        assert!(
            (cp.total - model.total_sim()).abs() < 1e-9,
            "{} vs {}",
            cp.total,
            model.total_sim()
        );
        let blamed: f64 = cp.phase_blame.values().sum();
        assert!((blamed - cp.total).abs() < 1e-9);
    }

    #[test]
    fn path_includes_the_longest_map_task() {
        let job = SimJob::uniform("j", 4, &[0.1, 9.0, 0.1, 0.1], &[0.5]);
        let cp = critical_path(&run(&job));
        assert!(cp.segments.iter().any(|s| matches!(
            s.kind,
            SegmentKind::Task {
                phase: PhaseKind::Map,
                task: 1,
                ..
            }
        )));
    }

    #[test]
    fn segments_are_contiguous_within_each_job() {
        let job = SimJob::uniform("j", 2, &[1.0, 2.0, 3.0, 0.5], &[1.0, 2.5]);
        let cp = critical_path(&run(&job));
        for w in cp.segments.windows(2) {
            if w[0].job == w[1].job && !matches!(w[1].kind, SegmentKind::Overhead) {
                assert!((w[0].end - w[1].start).abs() < 1e-9, "gap between {w:?}");
            }
        }
    }

    #[test]
    fn chained_jobs_concatenate() {
        let a = SimJob::uniform("a", 2, &[1.0, 2.0], &[1.0]);
        let b = SimJob::uniform("b", 2, &[0.5], &[0.25]);
        let mut events = job_events(&a, 0);
        let n = events.len() as u64;
        events.extend(job_events(&b, n));
        let model = RunModel::from_events(&events).unwrap();
        let cp = critical_path(&model);
        assert!((cp.total - model.total_sim()).abs() < 1e-9);
        assert!(cp.phase_blame.keys().any(|k| k.starts_with("a/")));
        assert!(cp.phase_blame.keys().any(|k| k.starts_with("b/")));
    }

    #[test]
    fn empty_phase_becomes_a_wait_segment() {
        let job = SimJob::uniform("j", 2, &[], &[1.0]);
        let model = run(&job);
        let cp = critical_path(&model);
        // Map phase is empty (0 tasks, start == end == 0): nothing to tile.
        assert!((cp.total - model.total_sim()).abs() < 1e-9);
    }
}
