//! A tiny FIFO list scheduler, shared by the what-if analysis and the
//! synthetic-trace generators in tests.
//!
//! This mirrors the runtime scheduler's core rule: tasks are assigned in
//! task-index order, each to the slot that frees up earliest, and start at
//! `max(phase start, slot free time)`. It deliberately ignores speculation
//! and locality — it is the *counterfactual* baseline the what-if analysis
//! re-runs with altered durations.

use crate::model::TaskRec;

/// List-schedules `durations` (indexed by task) onto `slots` slots starting
/// at sim second `start`. Returns the per-task spans and the phase end.
pub fn fifo_schedule(durations: &[f64], slots: usize, start: f64) -> (Vec<TaskRec>, f64) {
    assert!(slots >= 1, "need at least one slot");
    let mut free = vec![start; slots];
    let mut tasks = Vec::with_capacity(durations.len());
    for (i, &d) in durations.iter().enumerate() {
        let slot = (0..slots)
            .min_by(|&a, &b| free[a].total_cmp(&free[b]))
            .unwrap_or(0);
        let t0 = free[slot];
        let t1 = t0 + d.max(0.0);
        free[slot] = t1;
        tasks.push(TaskRec {
            task: i as u64,
            slot: slot as u64,
            start: t0,
            end: t1,
            speculative: false,
        });
    }
    let end = tasks.iter().map(|t| t.end).fold(start, f64::max);
    (tasks, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes() {
        let (tasks, end) = fifo_schedule(&[1.0, 2.0, 3.0], 1, 0.0);
        assert_eq!(tasks[1].start, 1.0);
        assert_eq!(tasks[2].start, 3.0);
        assert_eq!(end, 6.0);
    }

    #[test]
    fn two_slots_overlap() {
        let (tasks, end) = fifo_schedule(&[2.0, 1.0, 1.0], 2, 5.0);
        assert_eq!(tasks[0].slot, 0);
        assert_eq!(tasks[1].slot, 1);
        // task 2 goes to the slot that frees first (slot 1 at t=6)
        assert_eq!(tasks[2].slot, 1);
        assert_eq!(end, 7.0);
    }

    #[test]
    fn empty_phase_ends_at_start() {
        let (tasks, end) = fifo_schedule(&[], 3, 2.5);
        assert!(tasks.is_empty());
        assert_eq!(end, 2.5);
    }
}
