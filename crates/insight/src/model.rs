//! Reconstructing a run model from a JSONL trace stream.
//!
//! The tracer writes each job's timing in that job's own sim clock
//! (starting at 0); chained jobs restart the clock. The model rebases
//! every job onto one run-global timeline by accumulating the finished
//! jobs' `sim_total`s — the same rebasing the Chrome exporter performs —
//! so downstream analyses (critical path, stragglers, what-if) can reason
//! about one monotonic clock.

use mrsky_trace::{EventKind, PhaseKind, TraceEvent};
use std::collections::BTreeMap;

/// One task execution, in job-local sim seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRec {
    /// Task index within its phase.
    pub task: u64,
    /// Slot (simulated cluster-wide execution slot) the task ran on.
    pub slot: u64,
    /// Sim start, job-local.
    pub start: f64,
    /// Sim end, job-local.
    pub end: f64,
    /// Whether a speculative backup won this task.
    pub speculative: bool,
}

impl TaskRec {
    /// Task duration in sim seconds.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// One executor steal observed during a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealRec {
    /// The stolen task index.
    pub task: u64,
    /// Worker that took the task.
    pub thief: u64,
    /// Worker it was taken from.
    pub victim: u64,
}

/// One phase (map or reduce) of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRec {
    /// Which phase this is.
    pub kind: PhaseKind,
    /// Phase start in job-local sim seconds.
    pub start: f64,
    /// Phase end in job-local sim seconds.
    pub end: f64,
    /// Per-task spans, in event order (task index order).
    pub tasks: Vec<TaskRec>,
    /// Steals the executor performed while running this phase.
    pub steals: Vec<StealRec>,
}

impl PhaseRec {
    fn new(kind: PhaseKind) -> Self {
        PhaseRec {
            kind,
            start: 0.0,
            end: 0.0,
            tasks: Vec::new(),
            steals: Vec::new(),
        }
    }

    /// Median task duration (0 for an empty phase).
    pub fn median_duration(&self) -> f64 {
        let mut d: Vec<f64> = self.tasks.iter().map(TaskRec::duration).collect();
        if d.is_empty() {
            return 0.0;
        }
        d.sort_by(f64::total_cmp);
        let mid = d.len() / 2;
        if d.len() % 2 == 1 {
            d[mid]
        } else {
            (d[mid - 1] + d[mid]) / 2.0
        }
    }
}

/// Shuffle accounting for one reduce task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShuffleRec {
    /// Receiving reduce task index.
    pub reducer: u64,
    /// Bytes fetched.
    pub bytes: u64,
    /// Records routed (pre-merge).
    pub records: u64,
    /// Contributing map-output segments.
    pub segments: u64,
}

/// Per-partition local-skyline accounting (emitted by the partition job's
/// reducers; the reduce task index equals the partition id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionRec {
    /// Partition id.
    pub partition: u64,
    /// Input rows routed to the partition.
    pub input: u64,
    /// Local-skyline rows it produced.
    pub output: u64,
    /// Whether the partition was pruned without running a kernel.
    pub pruned: bool,
    /// Resolved local kernel that processed the partition (`"pruned"` for
    /// skipped partitions, empty for pre-schema traces).
    pub kernel: String,
}

/// A causal edge from the trace, verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeRec {
    /// Edge kind (`dispatch`, `slot`, `barrier`, `shuffle`, `merge`, `chain`).
    pub edge: String,
    /// Source node id.
    pub src: String,
    /// Destination node id.
    pub dst: String,
}

/// One finished job, rebased onto the run-global timeline via [`JobRec::offset`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobRec {
    /// Job name.
    pub name: String,
    /// Run-global sim second at which this job's local clock zero sits.
    pub offset: f64,
    /// Total simulated job time (overhead + reduce end).
    pub sim_total: f64,
    /// The map phase.
    pub map: PhaseRec,
    /// The reduce phase.
    pub reduce: PhaseRec,
    /// Per-reducer shuffle accounting.
    pub shuffle: Vec<ShuffleRec>,
}

impl JobRec {
    /// The phase record for `kind`.
    pub fn phase(&self, kind: PhaseKind) -> &PhaseRec {
        match kind {
            PhaseKind::Map => &self.map,
            PhaseKind::Reduce => &self.reduce,
        }
    }

    /// Job overhead: the slice of `sim_total` not covered by the phases.
    pub fn overhead(&self) -> f64 {
        (self.sim_total - self.reduce.end).max(0.0)
    }
}

/// The reconstructed run: every finished job in completion order, plus the
/// run-wide causal edges and partition accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunModel {
    /// Finished jobs in completion order.
    pub jobs: Vec<JobRec>,
    /// All causal edges, in emission order.
    pub edges: Vec<EdgeRec>,
    /// Per-partition accounting from the partition job's reducers.
    pub partitions: Vec<PartitionRec>,
}

impl RunModel {
    /// Builds the model from a parsed event stream.
    ///
    /// # Errors
    ///
    /// Reports task/phase events for jobs that never started, or a stream
    /// with no finished job.
    pub fn from_events(events: &[TraceEvent]) -> Result<RunModel, String> {
        let mut open: BTreeMap<String, JobRec> = BTreeMap::new();
        let mut model = RunModel::default();
        let mut sim_cursor = 0.0f64;

        let lookup = |open: &mut BTreeMap<String, JobRec>, job: &str| -> Result<JobRec, String> {
            open.remove(job)
                .ok_or_else(|| format!("event for job `{job}` before its job_started"))
        };

        for ev in events {
            match &ev.kind {
                EventKind::JobStarted { job } => {
                    open.insert(
                        job.clone(),
                        JobRec {
                            name: job.clone(),
                            offset: 0.0,
                            sim_total: 0.0,
                            map: PhaseRec::new(PhaseKind::Map),
                            reduce: PhaseRec::new(PhaseKind::Reduce),
                            shuffle: Vec::new(),
                        },
                    );
                }
                EventKind::JobFinished { job, sim_total, .. } => {
                    let mut rec = lookup(&mut open, job)?;
                    rec.sim_total = *sim_total;
                    rec.offset = sim_cursor;
                    sim_cursor += *sim_total;
                    model.jobs.push(rec);
                }
                EventKind::PhaseStarted {
                    job, phase, sim, ..
                } => {
                    let mut rec = lookup(&mut open, job)?;
                    rec.phase_mut(*phase).start = *sim;
                    open.insert(job.clone(), rec);
                }
                EventKind::PhaseFinished {
                    job, phase, sim, ..
                } => {
                    let mut rec = lookup(&mut open, job)?;
                    rec.phase_mut(*phase).end = *sim;
                    open.insert(job.clone(), rec);
                }
                EventKind::TaskFinished {
                    job,
                    phase,
                    task,
                    slot,
                    sim_start,
                    sim_end,
                    speculative,
                } => {
                    let mut rec = lookup(&mut open, job)?;
                    rec.phase_mut(*phase).tasks.push(TaskRec {
                        task: *task,
                        slot: *slot,
                        start: *sim_start,
                        end: *sim_end,
                        speculative: *speculative,
                    });
                    open.insert(job.clone(), rec);
                }
                EventKind::TaskStolen {
                    job,
                    phase,
                    task,
                    thief,
                    victim,
                } => {
                    let mut rec = lookup(&mut open, job)?;
                    rec.phase_mut(*phase).steals.push(StealRec {
                        task: *task,
                        thief: *thief,
                        victim: *victim,
                    });
                    open.insert(job.clone(), rec);
                }
                EventKind::ShufflePartition {
                    job,
                    reducer,
                    bytes,
                    records,
                    segments,
                } => {
                    let mut rec = lookup(&mut open, job)?;
                    rec.shuffle.push(ShuffleRec {
                        reducer: *reducer,
                        bytes: *bytes,
                        records: *records,
                        segments: *segments,
                    });
                    open.insert(job.clone(), rec);
                }
                EventKind::CausalEdge { edge, src, dst } => {
                    model.edges.push(EdgeRec {
                        edge: edge.clone(),
                        src: src.clone(),
                        dst: dst.clone(),
                    });
                }
                EventKind::PartitionLocalSkyline {
                    partition,
                    input,
                    output,
                    pruned,
                    kernel,
                } => {
                    model.partitions.push(PartitionRec {
                        partition: *partition,
                        input: *input,
                        output: *output,
                        pruned: *pruned,
                        kernel: kernel.clone(),
                    });
                }
                _ => {}
            }
        }

        if model.jobs.is_empty() {
            return Err("trace contains no finished job".into());
        }
        model.partitions.sort_by_key(|p| p.partition);
        Ok(model)
    }

    /// The job whose name carries `suffix` (`-partition`, `-merge`, ...).
    pub fn job_with_suffix(&self, suffix: &str) -> Option<&JobRec> {
        self.jobs.iter().find(|j| j.name.ends_with(suffix))
    }

    /// Total simulated run time: every job's `sim_total`, chained.
    pub fn total_sim(&self) -> f64 {
        self.jobs.iter().map(|j| j.sim_total).sum()
    }

    /// Causal-edge counts by kind, sorted by kind.
    pub fn edge_counts(&self) -> BTreeMap<&str, u64> {
        let mut out = BTreeMap::new();
        for e in &self.edges {
            *out.entry(e.edge.as_str()).or_insert(0) += 1;
        }
        out
    }
}

impl JobRec {
    fn phase_mut(&mut self, kind: PhaseKind) -> &mut PhaseRec {
        match kind {
            PhaseKind::Map => &mut self.map,
            PhaseKind::Reduce => &mut self.reduce,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{job_events, SimJob};

    #[test]
    fn rebases_chained_jobs_onto_one_timeline() {
        let mut events = job_events(&SimJob::uniform("a", 2, &[1.0, 1.0], &[2.0]), 0);
        let next_seq = events.len() as u64;
        events.extend(job_events(
            &SimJob::uniform("b", 1, &[0.5], &[0.5]),
            next_seq,
        ));
        let run = RunModel::from_events(&events).unwrap();
        assert_eq!(run.jobs.len(), 2);
        assert_eq!(run.jobs[0].offset, 0.0);
        assert!((run.jobs[1].offset - run.jobs[0].sim_total).abs() < 1e-9);
        assert!((run.total_sim() - (run.jobs[0].sim_total + run.jobs[1].sim_total)).abs() < 1e-9);
    }

    #[test]
    fn task_event_before_job_started_is_an_error() {
        let ev = TraceEvent {
            seq: 0,
            wall_us: 0,
            kind: EventKind::PhaseStarted {
                job: "ghost".into(),
                phase: PhaseKind::Map,
                tasks: 1,
                sim: 0.0,
            },
        };
        let err = RunModel::from_events(&[ev]).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn median_duration_handles_even_and_odd() {
        let mut p = PhaseRec::new(PhaseKind::Map);
        for (i, d) in [1.0, 3.0, 2.0].iter().enumerate() {
            p.tasks.push(TaskRec {
                task: i as u64,
                slot: 0,
                start: 0.0,
                end: *d,
                speculative: false,
            });
        }
        assert!((p.median_duration() - 2.0).abs() < 1e-12);
        p.tasks.pop();
        assert!((p.median_duration() - 2.0).abs() < 1e-12);
    }
}
