//! The perf-regression gate: compares current `BENCH_*.json` artifacts
//! against a committed baseline file and fails on regressions beyond the
//! per-metric tolerance.
//!
//! Baseline format (JSON):
//!
//! ```json
//! {
//!   "metrics": [
//!     {"file": "BENCH_kernels.json", "path": "speedup",
//!      "value": 6.62, "direction": "higher", "tolerance": 0.15}
//!   ]
//! }
//! ```
//!
//! `path` is dot-separated; numeric components index arrays
//! (`dims.1.shuffle_row_reduction`). `direction` says which way is good:
//! `"higher"` metrics (speedups, reduction factors) regress when the
//! current value drops below `value * (1 - tolerance)`; `"lower"` metrics
//! (nanoseconds, overhead percentages) regress when the current value rises
//! above `value * (1 + tolerance)`.

use mrsky_trace::json::{parse, JsonValue};

/// Default relative tolerance when a baseline entry does not set one.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// Which direction of change counts as an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (speedup, reduction ratio).
    Higher,
    /// Smaller is better (latency, overhead).
    Lower,
}

impl Direction {
    fn parse(s: &str) -> Result<Direction, String> {
        match s {
            "higher" => Ok(Direction::Higher),
            "lower" => Ok(Direction::Lower),
            other => Err(format!("unknown direction `{other}` (higher|lower)")),
        }
    }

    /// Stable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
        }
    }
}

/// One pinned metric from the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMetric {
    /// Bench artifact file name, relative to the bench directory.
    pub file: String,
    /// Dot-separated path into the artifact's JSON document.
    pub path: String,
    /// Pinned baseline value.
    pub value: f64,
    /// Which direction is an improvement.
    pub direction: Direction,
    /// Relative tolerance before the gate fails.
    pub tolerance: f64,
}

/// The verdict on one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// The metric checked.
    pub metric: BaselineMetric,
    /// Current value, if the artifact and path resolved.
    pub current: Option<f64>,
    /// Whether the metric passed.
    pub ok: bool,
    /// Human-readable one-liner.
    pub note: String,
}

/// The gate's overall outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Per-metric verdicts, baseline order.
    pub checks: Vec<GateCheck>,
}

impl GateOutcome {
    /// True when any metric regressed or failed to resolve.
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| !c.ok)
    }
}

/// Parses the baseline document.
///
/// # Errors
///
/// Reports a malformed document, a missing `metrics` array, or a malformed
/// entry (missing `file`/`path`/`value`, unknown `direction`).
pub fn parse_baselines(text: &str) -> Result<Vec<BaselineMetric>, String> {
    let doc = parse(text).map_err(|e| format!("baseline file: {e}"))?;
    let Some(JsonValue::Arr(entries)) = doc.get("metrics") else {
        return Err("baseline file: missing `metrics` array".into());
    };
    let mut out = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let field = |k: &str| {
            entry
                .get(k)
                .ok_or_else(|| format!("metrics[{i}]: missing `{k}`"))
        };
        let file = field("file")?
            .as_str()
            .ok_or_else(|| format!("metrics[{i}]: `file` must be a string"))?
            .to_string();
        let path = field("path")?
            .as_str()
            .ok_or_else(|| format!("metrics[{i}]: `path` must be a string"))?
            .to_string();
        let value = field("value")?
            .as_f64()
            .ok_or_else(|| format!("metrics[{i}]: `value` must be a number"))?;
        let direction = Direction::parse(
            field("direction")?
                .as_str()
                .ok_or_else(|| format!("metrics[{i}]: `direction` must be a string"))?,
        )
        .map_err(|e| format!("metrics[{i}]: {e}"))?;
        let tolerance = match entry.get("tolerance") {
            Some(t) => t
                .as_f64()
                .filter(|t| *t >= 0.0)
                .ok_or_else(|| format!("metrics[{i}]: `tolerance` must be a number >= 0"))?,
            None => DEFAULT_TOLERANCE,
        };
        out.push(BaselineMetric {
            file,
            path,
            value,
            direction,
            tolerance,
        });
    }
    Ok(out)
}

/// Resolves a dot-separated `path` inside `doc`; numeric components index
/// arrays. Returns the value as `f64` if it is a number.
pub fn lookup(doc: &JsonValue, path: &str) -> Option<f64> {
    let mut cur = doc;
    for part in path.split('.') {
        cur = match (cur, part.parse::<usize>()) {
            (JsonValue::Arr(items), Ok(idx)) => items.get(idx)?,
            (obj, _) => obj.get(part)?,
        };
    }
    cur.as_f64()
}

/// Evaluates every baseline metric. `load` maps an artifact file name to
/// its contents (`None` when the file is absent — which fails the gate).
pub fn evaluate(
    baselines: &[BaselineMetric],
    load: impl Fn(&str) -> Option<String>,
) -> GateOutcome {
    let mut checks = Vec::with_capacity(baselines.len());
    for m in baselines {
        let check = match load(&m.file).map(|text| parse(&text)) {
            None => GateCheck {
                metric: m.clone(),
                current: None,
                ok: false,
                note: format!("{}: artifact missing", m.file),
            },
            Some(Err(e)) => GateCheck {
                metric: m.clone(),
                current: None,
                ok: false,
                note: format!("{}: malformed artifact ({e})", m.file),
            },
            Some(Ok(doc)) => match lookup(&doc, &m.path) {
                None => GateCheck {
                    metric: m.clone(),
                    current: None,
                    ok: false,
                    note: format!("{}: `{}` not found", m.file, m.path),
                },
                Some(current) => {
                    let (ok, verdict) = match m.direction {
                        Direction::Higher => {
                            let floor = m.value * (1.0 - m.tolerance);
                            (current >= floor, format!("floor {floor:.4}"))
                        }
                        Direction::Lower => {
                            let ceil = m.value * (1.0 + m.tolerance);
                            (current <= ceil, format!("ceiling {ceil:.4}"))
                        }
                    };
                    let delta = if m.value != 0.0 {
                        (current - m.value) / m.value * 100.0
                    } else {
                        0.0
                    };
                    GateCheck {
                        metric: m.clone(),
                        current: Some(current),
                        ok,
                        note: format!(
                            "{}:{} {} baseline {:.4} current {current:.4} ({delta:+.1}%, {verdict})",
                            m.file,
                            m.path,
                            if ok { "ok" } else { "REGRESSED" },
                            m.value,
                        ),
                    }
                }
            },
        };
        checks.push(check);
    }
    GateOutcome { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{"metrics": [
        {"file": "BENCH_a.json", "path": "speedup", "value": 6.0, "direction": "higher"},
        {"file": "BENCH_a.json", "path": "nested.1.wall_ns", "value": 1000.0,
         "direction": "lower", "tolerance": 0.15}
    ]}"#;

    fn artifact(speedup: f64, wall: f64) -> String {
        format!(r#"{{"speedup": {speedup}, "nested": [{{}}, {{"wall_ns": {wall}}}]}}"#)
    }

    #[test]
    fn passes_on_matching_values() {
        let baselines = parse_baselines(BASELINE).unwrap();
        let out = evaluate(&baselines, |_| Some(artifact(6.0, 1000.0)));
        assert!(!out.failed(), "{:?}", out.checks);
    }

    #[test]
    fn fails_on_a_2x_slowdown() {
        let baselines = parse_baselines(BASELINE).unwrap();
        let out = evaluate(&baselines, |_| Some(artifact(6.0, 2000.0)));
        assert!(out.failed());
        let bad = out.checks.iter().find(|c| !c.ok).unwrap();
        assert_eq!(bad.metric.path, "nested.1.wall_ns");
        assert!(bad.note.contains("REGRESSED"), "{}", bad.note);
    }

    #[test]
    fn fails_on_a_speedup_collapse_but_tolerates_noise() {
        let baselines = parse_baselines(BASELINE).unwrap();
        let noisy = evaluate(&baselines, |_| Some(artifact(5.2, 1100.0)));
        assert!(!noisy.failed(), "within 15%: {:?}", noisy.checks);
        let collapsed = evaluate(&baselines, |_| Some(artifact(3.0, 1000.0)));
        assert!(collapsed.failed());
    }

    #[test]
    fn improvement_never_fails() {
        let baselines = parse_baselines(BASELINE).unwrap();
        let out = evaluate(&baselines, |_| Some(artifact(12.0, 500.0)));
        assert!(!out.failed());
    }

    #[test]
    fn missing_artifact_or_path_fails() {
        let baselines = parse_baselines(BASELINE).unwrap();
        assert!(evaluate(&baselines, |_| None).failed());
        assert!(evaluate(&baselines, |_| Some("{}".into())).failed());
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(parse_baselines("{}").is_err());
        assert!(parse_baselines(r#"{"metrics": [{"file": "x"}]}"#).is_err());
        assert!(parse_baselines(
            r#"{"metrics": [{"file": "x", "path": "y", "value": 1, "direction": "sideways"}]}"#
        )
        .is_err());
    }

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let doc = parse(r#"{"a": [{"b": 3.5}, {"b": 4.5}]}"#).unwrap();
        assert_eq!(lookup(&doc, "a.1.b"), Some(4.5));
        assert_eq!(lookup(&doc, "a.2.b"), None);
        assert_eq!(lookup(&doc, "missing"), None);
    }
}
