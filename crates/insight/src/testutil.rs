//! Synthetic trace generation: turns declared phase durations into the
//! schema-valid event stream a real run would emit, via the same FIFO
//! scheduler the what-if analysis uses. Shared by this crate's unit tests
//! and the property tests; public so downstream tests can build fixtures.

use crate::sim::fifo_schedule;
use mrsky_trace::{EventKind, PhaseKind, TraceEvent};

/// A declarative job: per-task durations for both phases plus the slot
/// count and fixed job overhead.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Job name.
    pub name: String,
    /// Simulated slots available to both phases.
    pub slots: usize,
    /// Map-task durations, indexed by task.
    pub map_durations: Vec<f64>,
    /// Reduce-task durations, indexed by task.
    pub reduce_durations: Vec<f64>,
    /// Fixed per-job overhead added to `sim_total`.
    pub overhead: f64,
}

impl SimJob {
    /// A job with the given durations and a 0.1 s overhead.
    pub fn uniform(name: &str, slots: usize, map: &[f64], reduce: &[f64]) -> SimJob {
        SimJob {
            name: name.to_string(),
            slots,
            map_durations: map.to_vec(),
            reduce_durations: reduce.to_vec(),
            overhead: 0.1,
        }
    }
}

/// Emits the full event stream of one simulated job, with sequence numbers
/// starting at `seq0`. The stream passes `validate_events` and models the
/// runtime's emission order: job start, map phase, reduce phase, job finish.
pub fn job_events(job: &SimJob, seq0: u64) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let mut seq = seq0;
    let mut push = |out: &mut Vec<TraceEvent>, kind: EventKind| {
        out.push(TraceEvent {
            seq,
            wall_us: seq,
            kind,
        });
        seq += 1;
    };

    push(
        &mut out,
        EventKind::JobStarted {
            job: job.name.clone(),
        },
    );
    let (map_tasks, map_end) = fifo_schedule(&job.map_durations, job.slots, 0.0);
    let (reduce_tasks, reduce_end) = fifo_schedule(&job.reduce_durations, job.slots, map_end);
    for (kind, start, end, tasks) in [
        (PhaseKind::Map, 0.0, map_end, &map_tasks),
        (PhaseKind::Reduce, map_end, reduce_end, &reduce_tasks),
    ] {
        push(
            &mut out,
            EventKind::PhaseStarted {
                job: job.name.clone(),
                phase: kind,
                tasks: tasks.len() as u64,
                sim: start,
            },
        );
        for t in tasks.iter() {
            push(
                &mut out,
                EventKind::TaskScheduled {
                    job: job.name.clone(),
                    phase: kind,
                    task: t.task,
                },
            );
            push(
                &mut out,
                EventKind::TaskLaunched {
                    job: job.name.clone(),
                    phase: kind,
                    task: t.task,
                    slot: t.slot,
                    sim: t.start,
                },
            );
            push(
                &mut out,
                EventKind::TaskFinished {
                    job: job.name.clone(),
                    phase: kind,
                    task: t.task,
                    slot: t.slot,
                    sim_start: t.start,
                    sim_end: t.end,
                    speculative: false,
                },
            );
        }
        push(
            &mut out,
            EventKind::PhaseFinished {
                job: job.name.clone(),
                phase: kind,
                sim: end,
                speculative_wins: 0,
            },
        );
    }
    push(
        &mut out,
        EventKind::JobFinished {
            job: job.name.clone(),
            sim_total: job.overhead + reduce_end,
            wall_seconds: 0.0,
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_stream_is_schema_valid() {
        let events = job_events(&SimJob::uniform("j", 2, &[1.0, 2.0, 0.5], &[1.0]), 0);
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");
    }
}
