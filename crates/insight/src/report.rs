//! Plain-text rendering of the analyses for `mrsky insight`.

use crate::critpath::{CriticalPath, Segment, SegmentKind};
use crate::model::RunModel;
use crate::skew::SkewReport;
use crate::stragglers::Straggler;
use crate::whatif::WhatIf;
use std::fmt::Write as _;

fn secs(v: f64) -> String {
    format!("{v:.3}s")
}

/// Renders the critical path: phase blame first, then the top segments.
pub fn render_critical_path(run: &RunModel, cp: &CriticalPath) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "critical path ({} total)", secs(cp.total));
    let _ = writeln!(out, "  phase blame:");
    for (key, blame) in &cp.phase_blame {
        let pct = if cp.total > 0.0 {
            blame / cp.total * 100.0
        } else {
            0.0
        };
        let _ = writeln!(out, "    {key:<28} {:>10}  {pct:5.1}%", secs(*blame));
    }
    let mut tasks: Vec<&Segment> = cp
        .segments
        .iter()
        .filter(|s| matches!(s.kind, SegmentKind::Task { .. }))
        .collect();
    tasks.sort_by(|a, b| b.duration().total_cmp(&a.duration()));
    let _ = writeln!(out, "  longest segments:");
    for s in tasks.iter().take(8) {
        let SegmentKind::Task { phase, task, slot } = &s.kind else {
            continue;
        };
        let partition = if s.job.ends_with("-partition") && *phase == mrsky_trace::PhaseKind::Reduce
        {
            format!("  (partition {task})")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "    {:<28} {:>10}  slot {slot}{partition}",
            format!("{}/{}/{task}", s.job, phase.as_str()),
            secs(s.duration()),
        );
    }
    let counts = run.edge_counts();
    if !counts.is_empty() {
        let joined: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "  causal edges: {}", joined.join(" "));
    }
    out
}

/// Renders the straggler table.
pub fn render_stragglers(list: &[Straggler]) -> String {
    let mut out = String::new();
    if list.is_empty() {
        let _ = writeln!(
            out,
            "stragglers: none (no task ran >=1.5x its phase median)"
        );
        return out;
    }
    let _ = writeln!(out, "stragglers ({} flagged):", list.len());
    for s in list {
        let partition =
            if s.job.ends_with("-partition") && s.phase == mrsky_trace::PhaseKind::Reduce {
                format!("  partition {}", s.task)
            } else {
                String::new()
            };
        let rescue = if s.stolen { "  [stolen]" } else { "" };
        let _ = writeln!(
            out,
            "  {:<28} {:>10} vs median {:>10}  ({:.2}x){partition}{rescue}",
            format!("{}/{}/{}", s.job, s.phase.as_str(), s.task),
            secs(s.duration),
            secs(s.median),
            s.ratio,
        );
    }
    out
}

/// Renders the skew report.
pub fn render_skew(report: &SkewReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "partition skew ({} partitions):", report.rows.len());
    let _ = writeln!(
        out,
        "  rows:   gini {:.3}  mean {:.1} rows/partition",
        report.row_gini, report.mean_rows
    );
    let _ = writeln!(
        out,
        "  kernel: gini {:.3} (reduce-task durations)",
        report.time_gini
    );
    let _ = writeln!(
        out,
        "  hot partition: {} with {} rows ({:.2}x mean){}",
        report.hot_partition,
        report.hot_rows,
        if report.mean_rows > 0.0 {
            report.hot_rows as f64 / report.mean_rows
        } else {
            0.0
        },
        if report.hot_kernel.is_empty() {
            String::new()
        } else {
            format!(", kernel {}", report.hot_kernel)
        }
    );
    if report.pruned > 0 {
        let _ = writeln!(out, "  pruned partitions: {}", report.pruned);
    }
    out
}

/// Renders the what-if-speculation table.
pub fn render_whatif(list: &[WhatIf]) -> String {
    let mut out = String::new();
    if list.is_empty() {
        let _ = writeln!(out, "what-if speculation: nothing to save (uniform phases)");
        return out;
    }
    let _ = writeln!(out, "what-if speculation (slowest task clamped to median):");
    let mut total = 0.0;
    for w in list {
        total += w.saved();
        let _ = writeln!(
            out,
            "  {:<28} task {} ({}) -> saves {:>10}",
            format!("{}/{}", w.job, w.phase.as_str()),
            w.slowest_task,
            secs(w.slowest_duration),
            secs(w.saved()),
        );
    }
    let _ = writeln!(out, "  total potential saving: {}", secs(total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::critical_path;
    use crate::stragglers::{stragglers, DEFAULT_THRESHOLD};
    use crate::testutil::{job_events, SimJob};
    use crate::whatif::what_if_speculation;

    fn skewed_run() -> RunModel {
        let job = SimJob::uniform(
            "qws-partition",
            4,
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 9.0, 1.0, 1.0],
        );
        RunModel::from_events(&job_events(&job, 0)).unwrap()
    }

    #[test]
    fn critical_path_report_names_the_hot_reduce_partition() {
        let run = skewed_run();
        let text = render_critical_path(&run, &critical_path(&run));
        assert!(text.contains("(partition 1)"), "{text}");
        assert!(text.contains("phase blame"), "{text}");
    }

    #[test]
    fn straggler_report_marks_partitions() {
        let run = skewed_run();
        let text = render_stragglers(&stragglers(&run, DEFAULT_THRESHOLD));
        assert!(text.contains("partition 1"), "{text}");
    }

    #[test]
    fn whatif_report_totals_savings() {
        let run = skewed_run();
        let text = render_whatif(&what_if_speculation(&run));
        assert!(text.contains("total potential saving"), "{text}");
    }
}
