//! Property tests over arbitrary scheduled DAGs: the extracted critical
//! path must be at least as long as any single task and must never exceed
//! (in fact must equal) the job's simulated wall time.

use mrsky_insight::critpath::critical_path;
use mrsky_insight::model::RunModel;
use mrsky_insight::testutil::{job_events, SimJob};
use proptest::prelude::*;

fn durations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..50.0, 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn critical_path_bounds_hold_on_arbitrary_dags(
        map in durations(),
        reduce in durations(),
        slots in 1usize..7,
        overhead in 0.0f64..5.0,
    ) {
        let mut job = SimJob::uniform("p", slots, &map, &reduce);
        job.overhead = overhead;
        let events = job_events(&job, 0);
        prop_assert!(mrsky_trace::validate_events(&events).is_empty());
        let run = RunModel::from_events(&events).unwrap();
        let cp = critical_path(&run);

        // Lower bound: no single task can be shorter than the whole path.
        let longest_task = map
            .iter()
            .chain(reduce.iter())
            .copied()
            .fold(0.0f64, f64::max);
        prop_assert!(
            cp.total >= longest_task - 1e-9,
            "path {} shorter than longest task {longest_task}", cp.total
        );

        // Upper bound: the path cannot exceed the simulated wall time; with
        // gap-tiling it equals it exactly.
        let wall = run.total_sim();
        prop_assert!(cp.total <= wall + 1e-6, "path {} > wall {wall}", cp.total);
        prop_assert!(
            (cp.total - wall).abs() <= 1e-6 * (1.0 + wall),
            "blame {} != wall {wall}", cp.total
        );

        // Blame decomposition is conservative: the per-phase map sums back
        // to the total.
        let blamed: f64 = cp.phase_blame.values().sum();
        prop_assert!((blamed - cp.total).abs() <= 1e-6 * (1.0 + cp.total));

        // Segments are chronological and non-overlapping within the run.
        for w in cp.segments.windows(2) {
            prop_assert!(w[1].start >= w[0].start - 1e-9);
        }
    }

    #[test]
    fn chained_jobs_keep_the_bounds(
        a_map in durations(),
        b_reduce in durations(),
        slots in 1usize..5,
    ) {
        let a = SimJob::uniform("a", slots, &a_map, &[1.0]);
        let b = SimJob::uniform("b", slots, &[1.0], &b_reduce);
        let mut events = job_events(&a, 0);
        let n = events.len() as u64;
        events.extend(job_events(&b, n));
        let run = RunModel::from_events(&events).unwrap();
        let cp = critical_path(&run);
        let wall = run.total_sim();
        prop_assert!((cp.total - wall).abs() <= 1e-6 * (1.0 + wall));
    }
}
