//! The run report: everything a figure harness or a downstream service
//! selector needs from one algorithm execution.

use crate::config::Algorithm;
use mini_mapreduce::metrics::JobMetrics;
use serde::{Deserialize, Serialize};
use skyline_algos::metrics::LoadBalance;
use skyline_algos::point::Point;

/// Result of running one MapReduce skyline algorithm over one dataset on one
/// simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkylineRunReport {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Dataset provenance string.
    pub dataset: String,
    /// Number of services evaluated.
    pub cardinality: usize,
    /// Attribute dimensionality.
    pub dimensions: usize,
    /// Simulated cluster size (servers).
    pub servers: usize,
    /// Partitions actually used (grid/angle may round the `2 × nodes`
    /// request up to a full lattice).
    pub partitions: usize,
    /// The global skyline (sorted by service id).
    pub global_skyline: Vec<Point>,
    /// Per-partition local skylines (partition id, survivors).
    pub local_skylines: Vec<(u64, Vec<Point>)>,
    /// Point count per partition.
    pub partition_counts: Vec<usize>,
    /// Partitions whose local-skyline work was skipped — dominated-cell
    /// pruning (MR-Grid) plus sector-witness pruning (any scheme).
    pub pruned_partitions: usize,
    /// Rows dropped map-side by the broadcast filter before the shuffle.
    #[serde(default)]
    pub rows_filtered: u64,
    /// Partitions pruned by the sector-witness argument alone.
    #[serde(default)]
    pub sector_pruned_partitions: usize,
    /// Simulated seconds of merge work hidden behind Job 1's reduce wave
    /// by the streaming merge (`0.0` unless streaming was enabled).
    #[serde(default)]
    pub merge_overlap_seconds: f64,
    /// Local skyline optimality — paper Eq. (5).
    pub optimality: f64,
    /// Load-balance statistics of the partition assignment.
    pub load_balance: LoadBalance,
    /// Combined metrics of the two-job chain.
    pub metrics: JobMetrics,
}

impl SkylineRunReport {
    /// Total simulated processing time (the y-axis of Figure 5).
    pub fn processing_time(&self) -> f64 {
        self.metrics.sim_total
    }

    /// Simulated Map time (Figure 6 lower bars).
    pub fn map_time(&self) -> f64 {
        self.metrics.map_time()
    }

    /// Simulated Reduce time, including shuffle (Figure 6 upper bars).
    pub fn reduce_time(&self) -> f64 {
        self.metrics.reduce_time()
    }

    /// Total local-skyline candidates shipped to the merge job — the
    /// quantity the paper's Reduce-time argument hinges on.
    pub fn merge_candidates(&self) -> usize {
        self.local_skylines.iter().map(|(_, v)| v.len()).sum()
    }

    /// Peak bytes of map output held across the shuffle, maximized over the
    /// job chain (the map-side memory plateau of the run).
    pub fn peak_map_out_bytes(&self) -> u64 {
        self.metrics.peak_mem.map_out
    }

    /// Peak bytes of materialized reduce input, maximized over the job
    /// chain. Spilling reduce inputs to disk lowers this number.
    pub fn peak_reduce_in_bytes(&self) -> u64 {
        self.metrics.peak_mem.reduce_in
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} n={:<7} d={:<2} servers={:<2} | sky={:<5} cand={:<6} filt={:<6} prune={:<3} | sim {:>7.1}s (map {:>6.1}s, reduce {:>6.1}s) | LSO {:.3}",
            self.algorithm.name(),
            self.cardinality,
            self.dimensions,
            self.servers,
            self.global_skyline.len(),
            self.merge_candidates(),
            self.rows_filtered,
            self.pruned_partitions,
            self.processing_time(),
            self.map_time(),
            self.reduce_time(),
            self.optimality,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_mapreduce::metrics::PhaseMetrics;

    fn dummy() -> SkylineRunReport {
        SkylineRunReport {
            algorithm: Algorithm::MrAngle,
            dataset: "test".into(),
            cardinality: 10,
            dimensions: 2,
            servers: 4,
            partitions: 8,
            global_skyline: vec![Point::new(0, vec![1.0, 1.0])],
            local_skylines: vec![(0, vec![Point::new(0, vec![1.0, 1.0])]), (1, vec![])],
            partition_counts: vec![5, 5],
            pruned_partitions: 0,
            rows_filtered: 3,
            sector_pruned_partitions: 0,
            merge_overlap_seconds: 0.0,
            optimality: 0.5,
            load_balance: skyline_algos::metrics::load_balance(&[5, 5]),
            metrics: JobMetrics {
                name: "t".into(),
                map: PhaseMetrics {
                    sim_start: 0.0,
                    sim_end: 2.0,
                    ..PhaseMetrics::default()
                },
                reduce: PhaseMetrics {
                    sim_start: 2.0,
                    sim_end: 5.0,
                    ..PhaseMetrics::default()
                },
                shuffle_bytes: 0,
                job_overhead: 4.0,
                sim_total: 9.0,
                wall_seconds: 0.0,
                peak_mem: mini_mapreduce::PeakMemBytes {
                    map_out: 512,
                    reduce_in: 256,
                },
            },
        }
    }

    #[test]
    fn derived_times() {
        let r = dummy();
        assert_eq!(r.processing_time(), 9.0);
        assert_eq!(r.map_time(), 2.0);
        assert_eq!(r.reduce_time(), 3.0);
        assert_eq!(r.merge_candidates(), 1);
        assert_eq!(r.peak_map_out_bytes(), 512);
        assert_eq!(r.peak_reduce_in_bytes(), 256);
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = dummy().summary();
        assert!(s.contains("MR-Angle"));
        assert!(s.contains("n=10"));
        assert!(s.contains("LSO 0.500"));
    }
}
