//! # mr-skyline
//!
//! The paper's contribution: **MR-Dim**, **MR-Grid** and **MR-Angle** —
//! MapReduce skyline query processing under three data-space partitionings
//! (Chen, Hwang, Wu — IEEE IPDPSW 2012), plus a random-partitioning ablation
//! and a sequential baseline, all running on the [`mini_mapreduce`] runtime
//! over [`qws_data`] datasets.
//!
//! Every algorithm is the same two-job chain (the paper's Algorithm 1):
//!
//! 1. **Partitioning job** — Map assigns each service to a partition
//!    (`(partition id, service)` pairs); Reduce computes each partition's
//!    local skyline with BNL. MR-Grid additionally skips partitions whose
//!    entire contents are dominated by another non-empty cell.
//! 2. **Merging job** — Map rekeys every local-skyline service under a
//!    single key; the lone Reduce merges them with a final BNL pass into the
//!    global skyline.
//!
//! The only difference between the algorithms is the
//! [`SpacePartitioner`](skyline_algos::partition::SpacePartitioner) plugged
//! into job 1 — which is exactly the paper's claim: partitioning choice
//! alone drives the Reduce-stage savings.
//!
//! ## Entry point
//!
//! ```
//! use mr_skyline::prelude::*;
//! use qws_data::{generate_qws, QwsConfig};
//!
//! let data = generate_qws(&QwsConfig::new(500, 4));
//! let job = SkylineJob::new(Algorithm::MrAngle, 4); // 4 servers
//! let report = job.run(&data);
//! assert!(!report.global_skyline.is_empty());
//! println!(
//!     "{} skyline points, simulated {:.1}s (map {:.1}s / reduce {:.1}s), optimality {:.2}",
//!     report.global_skyline.len(),
//!     report.metrics.sim_total,
//!     report.metrics.map_time(),
//!     report.metrics.reduce_time(),
//!     report.optimality,
//! );
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod json;
pub mod maintain;
pub mod report;
pub mod selection;
pub mod validate;

pub use checkpoint::{dataset_fingerprint, CheckpointStore, Manifest};
pub use config::{AlgoConfig, Algorithm, LocalKernel};
pub use driver::SkylineJob;
pub use maintain::MaintainedRegistry;
pub use report::SkylineRunReport;
pub use selection::{SelectionRequest, SelectionResult, ServiceSelector, Summary};
pub use validate::{validate_against_oracle, validate_report, ValidationError};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{AlgoConfig, Algorithm, LocalKernel};
    pub use crate::driver::SkylineJob;
    pub use crate::maintain::MaintainedRegistry;
    pub use crate::report::SkylineRunReport;
    pub use crate::selection::{SelectionRequest, SelectionResult, ServiceSelector, Summary};
    pub use crate::validate::{validate_against_oracle, validate_report};
    pub use mini_mapreduce::runtime::ClusterConfig;
}
