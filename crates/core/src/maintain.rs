//! Dynamic registry maintenance — the paper's Section II churn scenario.
//!
//! *"Given a new service which is added into UDDI, traditional approach has
//! to compute the global skyline again. With the MapReduce approach, the new
//! service is first mapped into a group and added into the local skyline
//! computation."*
//!
//! [`MaintainedRegistry`] keeps the partitioned skyline of a live registry
//! up to date under adds and removals, using the same partitioner the batch
//! algorithms use, and tracks how many dominance comparisons maintenance
//! has cost versus periodic from-scratch recomputation.

use crate::algorithms::build_partitioner;
use crate::config::{AlgoConfig, Algorithm};
use qws_data::dataset::Update;
use qws_data::Dataset;
use skyline_algos::incremental::IncrementalSkyline;
use skyline_algos::partition::SpacePartitioner;
use skyline_algos::point::Point;
use std::sync::Arc;

/// A live service registry with an incrementally maintained skyline.
pub struct MaintainedRegistry {
    inner: IncrementalSkyline<Arc<dyn SpacePartitioner>>,
    adds: u64,
    removals: u64,
    global_changes: u64,
}

impl MaintainedRegistry {
    /// Bootstraps the registry from `dataset`, partitioned as `algorithm`
    /// would partition it on a cluster of `servers`.
    ///
    /// # Errors
    ///
    /// Propagates the partitioner fit error (see
    /// [`build_partitioner`](crate::algorithms::build_partitioner)).
    pub fn bootstrap(
        algorithm: Algorithm,
        servers: usize,
        dataset: &Dataset,
    ) -> Result<Self, skyline_algos::SkylineError> {
        let partitioner = build_partitioner(algorithm, &AlgoConfig::default(), dataset, servers)?;
        Ok(Self {
            inner: IncrementalSkyline::from_points(partitioner, dataset.points()),
            adds: 0,
            removals: 0,
            global_changes: 0,
        })
    }

    /// Applies one churn event. Returns `true` iff the global skyline
    /// changed.
    pub fn apply(&mut self, update: &Update) -> bool {
        match update {
            Update::Add(p) => {
                self.adds += 1;
                let changed = self.inner.insert(p.clone());
                self.global_changes += u64::from(changed);
                changed
            }
            Update::Remove(id) => {
                self.removals += 1;
                let before: Vec<u64> = self.skyline_ids();
                let removed = self.inner.remove(*id);
                if !removed {
                    return false;
                }
                let changed = before != self.skyline_ids();
                self.global_changes += u64::from(changed);
                changed
            }
        }
    }

    /// The current global skyline.
    pub fn skyline(&self) -> &[Point] {
        self.inner.global_skyline()
    }

    fn skyline_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.skyline().iter().map(Point::id).collect();
        ids.sort_unstable();
        ids
    }

    /// Number of live services.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Dominance comparisons spent on maintenance so far (bootstrap
    /// included).
    pub fn comparisons(&self) -> u64 {
        self.inner.comparisons()
    }

    /// `(adds, removals, events that changed the global skyline)`.
    pub fn churn_stats(&self) -> (u64, u64, u64) {
        (self.adds, self.removals, self.global_changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qws_data::dataset::update_stream;
    use qws_data::{generate_qws, QwsConfig};
    use skyline_algos::seq::naive_skyline_ids;

    #[test]
    fn bootstrap_matches_batch_skyline() {
        let data = generate_qws(&QwsConfig::new(400, 3));
        let reg =
            MaintainedRegistry::bootstrap(Algorithm::MrAngle, 4, &data).expect("partitioner fit");
        let mut ids: Vec<u64> = reg.skyline().iter().map(Point::id).collect();
        ids.sort_unstable();
        assert_eq!(ids, naive_skyline_ids(data.points()));
        assert_eq!(reg.len(), 400);
        assert!(!reg.is_empty());
    }

    #[test]
    fn churn_stream_stays_consistent() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        let mut reg =
            MaintainedRegistry::bootstrap(Algorithm::MrAngle, 4, &data).expect("partitioner fit");
        let mut live: Vec<Point> = data.points().to_vec();
        for (step, u) in update_stream(&data, 200, 0.6, 0.1, 5).iter().enumerate() {
            reg.apply(u);
            match u {
                Update::Add(p) => live.push(p.clone()),
                Update::Remove(id) => {
                    let pos = live.iter().position(|p| p.id() == *id).expect("live id");
                    live.swap_remove(pos);
                }
            }
            if step % 29 == 0 {
                let mut ids: Vec<u64> = reg.skyline().iter().map(Point::id).collect();
                ids.sort_unstable();
                assert_eq!(ids, naive_skyline_ids(&live), "step {step}");
            }
        }
        let (adds, removals, changes) = reg.churn_stats();
        assert_eq!(adds + removals, 200);
        assert!(changes > 0, "200 churn events should move the skyline");
    }

    #[test]
    fn removing_unknown_id_is_a_noop() {
        let data = generate_qws(&QwsConfig::new(50, 2));
        let mut reg =
            MaintainedRegistry::bootstrap(Algorithm::MrGrid, 2, &data).expect("partitioner fit");
        let before = reg.len();
        assert!(!reg.apply(&Update::Remove(9_999_999)));
        assert_eq!(reg.len(), before);
    }

    #[test]
    fn incremental_cheaper_than_recompute_per_event() {
        let data = generate_qws(&QwsConfig::new(2000, 3));
        let mut reg =
            MaintainedRegistry::bootstrap(Algorithm::MrAngle, 8, &data).expect("partitioner fit");
        let bootstrap_cost = reg.comparisons();
        let stream = update_stream(&data, 50, 1.0, 0.05, 9);
        for u in &stream {
            reg.apply(u);
        }
        let per_event = (reg.comparisons() - bootstrap_cost) / 50;
        // recomputing from scratch costs at least one comparison per point;
        // incremental inserts should be far below that
        assert!(
            per_event < 2000 / 4,
            "incremental insert cost {per_event} comparisons per event"
        );
    }
}
