//! Algorithm assembly: partitioner construction plus the shared two-job
//! MapReduce pipeline.

pub mod pipeline;

pub use pipeline::{run_two_job_pipeline, PipelineOptions, PipelineOutput};

use crate::config::{AlgoConfig, Algorithm};
use qws_data::Dataset;
use skyline_algos::partition::{
    AnglePartitioner, DimPartitioner, GridPartitioner, RandomPartitioner, SpacePartitioner,
};
use skyline_algos::SkylineError;
use std::sync::Arc;

/// Builds the partitioner an algorithm uses over `dataset`'s bounds for a
/// cluster of `servers`, following the paper's `2 × nodes` partition policy
/// (see [`AlgoConfig::partitions_for`]).
///
/// # Errors
///
/// Propagates the fit error when the derived partition count or split
/// dimensions are unusable for `dataset` (e.g. an empty sample for a
/// quantile fit).
pub fn build_partitioner(
    algorithm: Algorithm,
    config: &AlgoConfig,
    dataset: &Dataset,
    servers: usize,
) -> Result<Arc<dyn SpacePartitioner>, SkylineError> {
    let np = config.partitions_for(servers);
    let bounds = dataset.bounds();
    Ok(match algorithm {
        Algorithm::MrDim => {
            if config.baseline_quantile {
                let sample = stride_sample(dataset);
                Arc::new(DimPartitioner::fit_quantile(&sample, np)?)
            } else {
                Arc::new(DimPartitioner::fit(bounds, np)?)
            }
        }
        Algorithm::MrGrid => {
            let split_dims = if config.grid_dims == 0 {
                dataset.dim()
            } else {
                config.grid_dims.min(dataset.dim())
            };
            if config.baseline_quantile {
                let sample = stride_sample(dataset);
                Arc::new(GridPartitioner::fit_quantile(&sample, np, split_dims)?)
            } else {
                Arc::new(GridPartitioner::fit_on_dims(bounds, np, split_dims)?)
            }
        }
        Algorithm::MrAngle => {
            if config.angle_quantile {
                let sample = stride_sample(dataset);
                Arc::new(AnglePartitioner::fit_quantile(&sample, np)?)
            } else {
                Arc::new(AnglePartitioner::fit(bounds, np)?)
            }
        }
        Algorithm::MrRandom => Arc::new(RandomPartitioner::new(dataset.dim(), np)?),
        Algorithm::Sequential => Arc::new(RandomPartitioner::new(dataset.dim(), 1)?),
    })
}

/// Deterministic stride sample of up to ~10k points for quantile fitting —
/// the Hadoop analogue is a sampling pre-pass like `TotalOrderPartitioner`'s.
fn stride_sample(dataset: &Dataset) -> Vec<skyline_algos::point::Point> {
    let pts = dataset.points();
    let stride = (pts.len() / 10_000).max(1);
    pts.iter().step_by(stride).cloned().collect()
}

/// Per-point Map-stage CPU work (in cost-model work units) of computing the
/// partition assignment, by scheme:
///
/// * `dim` reads one coordinate;
/// * `grid` reads all `d` coordinates;
/// * `angle` additionally performs the hyperspherical transform of Eq. (1)
///   (suffix square sums + one `atan2` per angle ≈ 2 passes);
/// * `random` hashes the id.
///
/// This is the "the original Cartesian coordinate-based data should be
/// transformed into hyperspherical coordinate-based data in MR-Angle" cost
/// that makes MR-Angle's *Map* phase slightly dearer than the others while
/// its Reduce phase wins big.
pub fn map_work_per_point(algorithm: Algorithm, dim: usize) -> u64 {
    match algorithm {
        Algorithm::MrDim => 1,
        Algorithm::MrGrid => dim as u64,
        Algorithm::MrAngle => 2 * dim as u64,
        Algorithm::MrRandom | Algorithm::Sequential => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qws_data::{generate_qws, QwsConfig};

    fn data() -> Dataset {
        generate_qws(&QwsConfig::new(200, 3))
    }

    #[test]
    fn partitioner_kind_matches_algorithm() {
        let d = data();
        let cfg = AlgoConfig::default();
        assert_eq!(
            build_partitioner(Algorithm::MrDim, &cfg, &d, 4)
                .unwrap()
                .name(),
            "dim"
        );
        assert_eq!(
            build_partitioner(Algorithm::MrGrid, &cfg, &d, 4)
                .unwrap()
                .name(),
            "grid"
        );
        assert_eq!(
            build_partitioner(Algorithm::MrAngle, &cfg, &d, 4)
                .unwrap()
                .name(),
            "angle"
        );
        assert_eq!(
            build_partitioner(Algorithm::MrRandom, &cfg, &d, 4)
                .unwrap()
                .name(),
            "random"
        );
    }

    #[test]
    fn sequential_uses_one_partition() {
        let p =
            build_partitioner(Algorithm::Sequential, &AlgoConfig::default(), &data(), 8).unwrap();
        assert_eq!(p.num_partitions(), 1);
    }

    #[test]
    fn partition_counts_follow_policy() {
        let d = data();
        let cfg = AlgoConfig::default();
        let p = build_partitioner(Algorithm::MrDim, &cfg, &d, 8).unwrap();
        assert_eq!(p.num_partitions(), 16);
        // grid/angle may round up to a full lattice
        let g = build_partitioner(Algorithm::MrGrid, &cfg, &d, 8).unwrap();
        assert!(g.num_partitions() >= 16);
    }

    #[test]
    fn map_work_ordering() {
        // angle > grid > dim: the paper's Map-side cost ranking
        let d = 10;
        assert!(
            map_work_per_point(Algorithm::MrAngle, d) > map_work_per_point(Algorithm::MrGrid, d)
        );
        assert!(map_work_per_point(Algorithm::MrGrid, d) > map_work_per_point(Algorithm::MrDim, d));
    }
}
