//! The shared two-job pipeline (paper Algorithm 1).
//!
//! **Job 1 — partitioning job.** Map: compute each service's partition id
//! (lines 2–6 of Algorithm 1; for MR-Angle this includes the hyperspherical
//! transform) and emit `(partition, service)`. Reduce: per partition, run
//! the local-skyline kernel (lines 7–10) and emit the survivors. MR-Grid's
//! dominated-cell pruning empties pruned partitions before the kernel runs.
//!
//! **Job 2 — merging job.** Map: rekey every local-skyline service under
//! the single key `0` (lines 12–14, the paper's `output(null, s)`), Reduce:
//! one task merges everything with a final kernel pass into the global
//! skyline (line 15).
//!
//! # Record layout
//!
//! Both jobs move columnar [`PointBlock`] batches instead of one `Point`
//! per record: map splits are blocks of [`BLOCK_ROWS`] services, the mapper
//! shards each block by partition id with zero per-point allocations, and
//! reducers concatenate their value blocks into one flat buffer before
//! running a kernel from `skyline_algos::kernel`. Metric semantics:
//! `records_in` stays *point-weighted* (every task tops the counter up to
//! one record per service, keeping record counts comparable with the
//! paper's per-record accounting), while `records_out` counts the shuffled
//! block records — batching genuinely cuts per-record overhead and the
//! simulated cost model sees that. Shuffle bytes are unchanged in spirit:
//! the sizer charges per row, plus one 8-byte key per block.

use crate::checkpoint::CheckpointStore;
use crate::config::{AlgoConfig, LocalKernel};
use mini_mapreduce::prelude::*;
use mini_mapreduce::runtime::{LocalityConfig, SpillConfig, RECORDS_PER_SPLIT};
use mini_mapreduce::scheduler::SpeculationConfig;
use mini_mapreduce::task::FailureConfig;
use mini_mapreduce::{ExecutorMode, OwnedMergeFn};
use mrsky_chaos::{FaultPlan, KillSwitch, KILL_PAYLOAD};
use mrsky_trace::{EventKind, Tracer};
use qws_data::Dataset;
use skyline_algos::block::PointBlock;
use skyline_algos::bnl::BnlConfig;
use skyline_algos::dnc::dnc_skyline_stats;
use skyline_algos::filter::{filtered_out, select_filter_points};
use skyline_algos::incremental::{SharedStreamingMerge, StreamingMerge};
use skyline_algos::kernel::{block_bnl_stats, block_sfs_stats, presort_merge_stats, KernelStats};
use skyline_algos::partition::{witness_prunable, SpacePartitioner};
use skyline_algos::point::Point;
use skyline_algos::salsa::block_salsa_stats;
use skyline_algos::select::KernelChoice;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Rows per shuffled block: map splits and shuffle values carry at most
/// this many services per [`PointBlock`] record.
const BLOCK_ROWS: usize = 256;

/// Shared wire-size estimator for `(partition id, service block)` pairs.
type BlockSizer = Arc<dyn Fn(&u64, &PointBlock) -> usize + Send + Sync>;

/// Everything the pipeline needs beyond the dataset and the partitioner.
#[derive(Clone)]
pub struct PipelineOptions {
    /// Display name prefix for the two jobs (e.g. `"MR-Angle"`).
    pub name: String,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Cost model.
    pub cost: CostModel,
    /// Failure injection (applies to both jobs).
    pub failure: FailureConfig,
    /// Speculative execution.
    pub speculation: SpeculationConfig,
    /// Host execution threads (`0` = all cores).
    pub threads: usize,
    /// Algorithm knobs (kernel, window, pruning).
    pub config: AlgoConfig,
    /// Data-locality model for map scheduling (both jobs).
    pub locality: LocalityConfig,
    /// Map-stage work units charged per input point (partition-assignment
    /// cost; see [`crate::algorithms::map_work_per_point`]).
    pub map_work_per_point: u64,
    /// Structured-event tracer, threaded into both simulated jobs and the
    /// reduce-side kernels. [`Tracer::disabled`] costs one branch per site.
    pub tracer: Tracer,
    /// Seeded fault-injection plan, threaded into every simulated job
    /// (map re-execution, DFS read faults, shuffle re-fetches).
    pub chaos: FaultPlan,
    /// Per-partition local-skyline checkpoint store. When set, Job 1
    /// durably records each finished partition.
    pub checkpoints: Option<Arc<CheckpointStore>>,
    /// Resume from `checkpoints`: restore finished partitions, drop their
    /// points from Job 1's input, recompute only what never completed.
    /// Without a store this is a no-op. The caller is responsible for
    /// manifest validation (see `SkylineJob::run_resilient`).
    pub resume: bool,
    /// Crash simulator: when armed, Job 1 dies ([`KILL_PAYLOAD`]) after
    /// the switch's checkpoint-write budget (see [`KillSwitch`]).
    pub kill: Option<Arc<KillSwitch>>,
}

/// Everything the pipeline produces.
pub struct PipelineOutput {
    /// Per-partition local skylines, sorted by partition id. Pruned and
    /// empty partitions appear with empty skylines only if they received
    /// points.
    pub local_skylines: Vec<(u64, Vec<Point>)>,
    /// The global skyline.
    pub global_skyline: Vec<Point>,
    /// Combined metrics of both jobs (map/reduce spans concatenated).
    pub metrics: JobMetrics,
    /// Point count per partition (length = partitioner's partition count).
    pub partition_counts: Vec<usize>,
    /// Number of partitions whose local-skyline work was skipped, by
    /// dominated-cell pruning or sector-witness pruning combined.
    pub pruned_partitions: usize,
    /// Rows dropped map-side by the broadcast filter before the shuffle.
    pub rows_filtered: u64,
    /// Partitions pruned by the sector-witness argument alone (i.e. beyond
    /// what dominated-cell pruning already caught).
    pub sector_pruned_partitions: usize,
    /// Simulated seconds of the merge stage hidden behind Job 1's reduce
    /// wave by the streaming merge. `0.0` unless streaming is on.
    pub merge_overlap_seconds: f64,
}

/// Map-task count preserving the runtime's "one split per
/// [`RECORDS_PER_SPLIT`] records" rule in *services*, not blocks (block
/// records are ~256× denser, so auto-splitting on them would collapse the
/// map wave structure the paper's figures depend on).
fn point_splits(points: usize) -> usize {
    points.div_ceil(RECORDS_PER_SPLIT).max(1)
}

/// Concatenates shuffle value blocks into one flat batch.
fn concat_blocks(dim: usize, blocks: &[PointBlock]) -> PointBlock {
    let rows = blocks.iter().map(PointBlock::len).sum();
    let mut out = PointBlock::with_capacity(dim, rows);
    for b in blocks {
        out.extend_from_block(b);
    }
    out
}

/// Concatenates owned shuffle value blocks without copying the first one:
/// the first block is moved out wholesale and the rest are drained into it
/// (`append_owned`). Under the zero-copy shuffle a reducer receives one
/// already-concatenated block per key, making this a pure move.
fn concat_owned(dim: usize, blocks: Vec<PointBlock>) -> PointBlock {
    let mut it = blocks.into_iter();
    let mut out = it.next().unwrap_or_else(|| PointBlock::new(dim));
    for b in it {
        out.append_owned(b)
            .expect("same-job blocks share dimension");
    }
    out
}

/// Ownership-transfer merge for the shuffle: same-key blocks concatenate
/// in place during routing, so the reducer sees one flat block per key and
/// no value is ever cloned. Blocks of mismatched dimension (impossible
/// within one job, but the merge must be total) stay separate.
fn owned_block_merge() -> OwnedMergeFn<PointBlock> {
    Arc::new(|acc: &mut PointBlock, b: PointBlock| {
        if acc.dim() == b.dim() {
            acc.append_owned(b).expect("dimensions checked");
            None
        } else {
            Some(b)
        }
    })
}

/// Flat little-endian spill frame for one block:
/// `dim:u32, len:u32, ids:[u64], coord bits:[u64]`.
fn encode_block(b: &PointBlock) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + b.len() * 8 + b.coords().len() * 8);
    out.extend_from_slice(&(b.dim() as u32).to_le_bytes());
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    for id in b.ids() {
        out.extend_from_slice(&id.to_le_bytes());
    }
    for c in b.coords() {
        out.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    out
}

/// Inverse of [`encode_block`]. Panics on a malformed frame — spill files
/// are written and read within one run, so corruption is a bug, not input.
fn decode_block(bytes: &[u8]) -> PointBlock {
    let dim = u32::from_le_bytes(bytes[0..4].try_into().expect("frame header")) as usize;
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("frame header")) as usize;
    let mut b = PointBlock::with_capacity(dim, len);
    let ids = &bytes[8..8 + len * 8];
    let coords = &bytes[8 + len * 8..];
    assert_eq!(coords.len(), len * dim * 8, "torn spill frame");
    let mut row = vec![0.0f64; dim];
    for i in 0..len {
        let id = u64::from_le_bytes(ids[i * 8..(i + 1) * 8].try_into().expect("id"));
        for (j, slot) in row.iter_mut().enumerate() {
            let at = (i * dim + j) * 8;
            *slot = f64::from_bits(u64::from_le_bytes(
                coords[at..at + 8].try_into().expect("coord"),
            ));
        }
        b.push(id, &row)
            .expect("spilled rows were valid when written");
    }
    b
}

/// Resolves the configured spill policy into a runtime [`SpillConfig`]
/// with the block codec attached.
fn spill_config(cfg: &AlgoConfig) -> Option<SpillConfig<PointBlock>> {
    cfg.spill_budget_bytes.map(|budget_bytes| SpillConfig {
        budget_bytes,
        dir: cfg.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("mrsky-spill-{}", std::process::id()))
        }),
        encode: Arc::new(encode_block),
        decode: Arc::new(decode_block),
    })
}

/// Re-packs an AoS kernel result into a block.
fn repack(dim: usize, points: &[Point]) -> PointBlock {
    let mut out = PointBlock::with_capacity(dim, points.len());
    for p in points {
        out.push_point(p);
    }
    out
}

/// What one kernel invocation produced: the skyline block, the dim-weighted
/// work units the cost model charges, and the raw figures the trace's
/// [`EventKind::KernelRun`] events report.
struct KernelOutcome {
    sky: PointBlock,
    work: u64,
    comparisons: u64,
    passes: u64,
    /// Name of the kernel that actually ran — for `LocalKernel::Auto` this
    /// is the per-partition choice, not "auto".
    kernel: &'static str,
}

impl KernelOutcome {
    /// Emits a [`EventKind::KernelRun`] for this invocation over `input`
    /// points, `elapsed_us` of tracer-clock time after it finished. One
    /// branch when the tracer is disabled.
    fn trace(&self, tracer: &Tracer, input: u64, elapsed_us: u64) {
        tracer.emit(|| EventKind::KernelRun {
            kernel: self.kernel.to_string(),
            input,
            output: self.sky.len() as u64,
            comparisons: self.comparisons,
            passes: self.passes,
            elapsed_us,
        });
        mrsky_trace::metrics()
            .observe_quantile("skyline.kernel_comparisons", self.comparisons as f64);
    }
}

impl From<(PointBlock, KernelStats, &'static str)> for KernelOutcome {
    fn from((sky, stats, kernel): (PointBlock, KernelStats, &'static str)) -> Self {
        // Sort-based local kernels front-load an O(n log n) presort that the
        // dominance counters never see; charge it to the cost model so the
        // simulated timeline doesn't credit avoided comparisons for free.
        // (`presort-merge` predates this accounting and keeps the seed
        // cost shape: every scheme's merge runs the same kernel, so merge
        // costs compare candidate *counts* either way.)
        let sort_work = match kernel {
            "sfs" | "salsa" => CostModel::presort_work_units(stats.input_len),
            _ => 0,
        };
        KernelOutcome {
            sky,
            work: stats.dim_weighted + sort_work,
            comparisons: stats.comparisons,
            passes: u64::from(stats.passes),
            kernel,
        }
    }
}

/// Runs the configured local-skyline kernel over one block. BNL, SFS and
/// SaLSa run natively on the columnar layout; DnC converts at the boundary
/// (see DESIGN.md "Data layout & kernels" and "Local kernel selection").
/// `Auto` resolves to a concrete kernel per block via the calibrated
/// [`KernelChoice`] boundaries, and the returned outcome names the kernel
/// that actually ran.
fn run_local_kernel(
    block: &PointBlock,
    kernel: LocalKernel,
    window: Option<usize>,
) -> KernelOutcome {
    let bnl_cfg = || match window {
        Some(w) => BnlConfig::with_window(w),
        None => BnlConfig::unbounded(),
    };
    match kernel {
        LocalKernel::Bnl => {
            let (sky, stats) = block_bnl_stats(block, &bnl_cfg());
            (sky, stats, "bnl").into()
        }
        LocalKernel::Sfs => {
            let (sky, stats) = block_sfs_stats(block);
            (sky, stats, "sfs").into()
        }
        LocalKernel::Salsa => {
            let (sky, stats) = block_salsa_stats(block);
            (sky, stats, "salsa").into()
        }
        LocalKernel::Auto => {
            let choice = KernelChoice::default().select_for_block(block);
            let (sky, stats) = choice.run(block, &bnl_cfg());
            (sky, stats, choice.name()).into()
        }
        LocalKernel::Dnc => {
            let (sky, stats) = dnc_skyline_stats(&block.to_points());
            KernelOutcome {
                sky: repack(block.dim(), &sky),
                work: stats.counter.dim_weighted(),
                comparisons: stats.counter.comparisons(),
                passes: 1,
                kernel: "dnc",
            }
        }
    }
}

/// Runs the merge-stage kernel: candidates are presorted by L1 norm so one
/// filtering pass suffices ([`presort_merge_stats`]), independent of which
/// local kernel is configured. Every scheme's merge gets the same kernel,
/// so merge cost differences between schemes reflect candidate *counts*,
/// not candidate order.
fn run_merge_kernel(block: &PointBlock) -> KernelOutcome {
    let (sky, stats) = presort_merge_stats(block);
    (sky, stats, "presort-merge").into()
}

/// Runs the two-job chain of `partitioner` over `dataset`.
pub fn run_two_job_pipeline(
    partitioner: Arc<dyn SpacePartitioner>,
    dataset: &Dataset,
    opts: &PipelineOptions,
) -> PipelineOutput {
    let num_partitions = partitioner.num_partitions();
    let dim = dataset.points().first().map_or(1, Point::dim);
    let sizer: BlockSizer = Arc::new(|_k: &u64, b: &PointBlock| 8 + b.wire_size());

    // One columnar copy of the dataset; map splits are slices of it.
    let mut input_block = PointBlock::with_capacity(dim, dataset.len());
    for p in dataset.points() {
        input_block.push_point(p);
    }

    // Partition profile: per-partition counts and per-partition observed
    // coordinate minima, computed up front (the Hadoop analogue is a
    // counter pass / sampling job published via the distributed cache) and
    // used for grid pruning, witness pruning, and load metrics.
    let (partition_counts, observed_min) = opts.tracer.span("pipeline.partition_profile", || {
        let mut counts = vec![0usize; num_partitions];
        let mut mins: Vec<Option<Vec<f64>>> = vec![None; num_partitions];
        for (id, row) in input_block.iter() {
            let p = partitioner.partition_of_row(id, row);
            counts[p] += 1;
            match &mut mins[p] {
                Some(m) => {
                    for (mi, &v) in m.iter_mut().zip(row) {
                        *mi = mi.min(v);
                    }
                }
                None => mins[p] = Some(row.to_vec()),
            }
        }
        (counts, mins)
    });

    // Broadcast filter points (per-dimension minima + max-entropy fillers).
    // `filter_k == 0` disables map-side filtering, but the same candidates
    // still serve as pruning witnesses below, so selection falls back to
    // the automatic size in that case.
    let filter_k = opts.config.filter_points_for(dim);
    let witness_k = if filter_k > 0 {
        filter_k
    } else {
        crate::config::auto_filter_points(dim)
    };
    let filter_points: Arc<PointBlock> = Arc::new(select_filter_points(&input_block, witness_k));

    // Sector-witness pruning: a partition whose best possible corner (its
    // sector envelope tightened by observed minima) is dominated by a
    // filter point living in another partition cannot contribute a single
    // skyline point, so its local-skyline task is skipped outright.
    let mut prunable_vec = if opts.config.grid_pruning {
        partitioner.prunable(&partition_counts)
    } else {
        vec![false; num_partitions]
    };
    let mut sector_pruned_partitions = 0usize;
    if opts.config.sector_prune && num_partitions > 0 {
        let witnesses: Vec<(usize, Vec<f64>)> = filter_points
            .iter()
            .map(|(id, row)| (partitioner.partition_of_row(id, row), row.to_vec()))
            .collect();
        let witness_mask = witness_prunable(partitioner.as_ref(), &observed_min, &witnesses);
        for (h, hit) in witness_mask.iter().enumerate() {
            if *hit && !prunable_vec[h] {
                sector_pruned_partitions += 1;
                prunable_vec[h] = true;
                let points = partition_counts[h] as u64;
                opts.tracer.emit(|| EventKind::SectorPruned {
                    partition: h as u64,
                    points,
                });
            }
        }
    }
    let prunable: Arc<Vec<bool>> = Arc::new(prunable_vec);
    let pruned_partitions = prunable.iter().filter(|&&p| p).count();

    // ---- Checkpoint restore ----
    // A resumed run trusts every completed checkpoint: those partitions'
    // local skylines are restored verbatim and their points never enter
    // Job 1 (no recomputation — the trace validator enforces it).
    let restored: BTreeMap<u64, Vec<Point>> = match (&opts.checkpoints, opts.resume) {
        (Some(store), true) => {
            let map = store
                .restore()
                .unwrap_or_else(|e| panic!("cannot resume from checkpoints: {e}"));
            for (p, sky) in &map {
                opts.tracer.emit(|| EventKind::CheckpointRestored {
                    partition: *p,
                    points: sky.len() as u64,
                });
            }
            map
        }
        _ => BTreeMap::new(),
    };
    let job1_input = if restored.is_empty() {
        input_block.clone()
    } else {
        let mut b = PointBlock::with_capacity(dim, input_block.len());
        for i in 0..input_block.len() {
            let pid = partitioner.partition_of_row(input_block.id(i), input_block.row(i)) as u64;
            if !restored.contains_key(&pid) {
                b.push_row_from(&input_block, i);
            }
        }
        b
    };

    // ---- Streaming merge state ----
    // When enabled, Job 1's reduce tasks feed their local skylines into a
    // shared incremental merge as they complete, so the merge work happens
    // *inside* the reduce wave instead of waiting behind the job barrier.
    // Restored checkpoints are absorbed up front; the per-id dedup makes
    // re-absorbed blocks (retries, speculative duplicates) idempotent.
    let streaming: Option<Arc<SharedStreamingMerge>> = opts.config.streaming_merge.then(|| {
        let mut sm = StreamingMerge::new(dim);
        for sky in restored.values() {
            sm.absorb_block(&repack(dim, sky));
        }
        Arc::new(SharedStreamingMerge::new(sm))
    });

    // ---- Scale plumbing shared by every job in the chain ----
    let executor = if opts.config.static_executor {
        ExecutorMode::Static
    } else {
        ExecutorMode::WorkStealing
    };
    let owned_merge: Option<OwnedMergeFn<PointBlock>> =
        opts.config.owned_shuffle.then(owned_block_merge);
    let spill = spill_config(&opts.config);

    // ---- Job 1: partition + local skylines ----
    // One reduce task per partition, as a Hadoop job would configure for a
    // partition-keyed reduce; the cluster's reduce slots bound *concurrency*
    // (waves), not the task count.
    let mut spec1: JobSpec<u64, PointBlock> =
        JobSpec::new(format!("{}-partition", opts.name), opts.cluster.clone())
            .with_reducers(num_partitions.max(1))
            .with_map_tasks(point_splits(job1_input.len()))
            .with_executor(executor);
    spec1.owned_merge = owned_merge.clone();
    spec1.spill = spill.clone();
    spec1.cost = opts.cost.clone();
    spec1.failure = opts.failure.clone();
    spec1.speculation = opts.speculation.clone();
    spec1.threads = opts.threads;
    spec1.locality = opts.locality.clone();
    spec1.sizer = Some(sizer.clone());
    spec1.router = Some(Arc::new(|k: &u64, r: usize| (*k % r as u64) as usize));
    spec1.tracer = opts.tracer.clone();
    spec1.chaos = opts.chaos.clone();

    let part = Arc::clone(&partitioner);
    let map_work = opts.map_work_per_point;
    let map_filter: Option<Arc<PointBlock>> =
        (filter_k > 0 && !filter_points.is_empty()).then(|| Arc::clone(&filter_points));
    let mapper1 =
        move |b: &PointBlock, ctx: &mut TaskContext, out: &mut Emitter<u64, PointBlock>| {
            // The runtime charges one record per block; top up so records
            // stay point-weighted. The top-up uses the *unfiltered* block
            // length and filtered rows are never charged again downstream,
            // so `records_in` counts every input service exactly once no
            // matter how many the broadcast filter drops.
            ctx.add_records_in(b.len().saturating_sub(1) as u64);
            ctx.add_work(map_work * b.len() as u64);
            let mut shards: Vec<PointBlock> = vec![PointBlock::new(b.dim()); num_partitions.max(1)];
            let mut dropped = 0u64;
            for i in 0..b.len() {
                if let Some(f) = &map_filter {
                    if filtered_out(f, b.row(i)) {
                        dropped += 1;
                        continue;
                    }
                }
                shards[part.partition_of_row(b.id(i), b.row(i))].push_row_from(b, i);
            }
            if let Some(f) = &map_filter {
                // the broadcast sweep costs at most one dominance test per
                // (row, filter point) pair
                ctx.add_work((f.len() * b.len()) as u64);
                if dropped > 0 {
                    ctx.incr("rows_filtered", dropped);
                }
            }
            for (pid, shard) in shards.into_iter().enumerate() {
                if !shard.is_empty() {
                    out.emit(pid as u64, shard);
                }
            }
        };
    let kernel = opts.config.kernel;
    let window = opts.config.bnl_window;
    let prune_mask = Arc::clone(&prunable);
    // Reducers run on pool threads; the tracer clone shares one sink behind
    // a mutex, so events from concurrent partitions interleave but keep
    // globally ordered sequence numbers.
    let tracer1 = opts.tracer.clone();
    let ckpt_store = opts.checkpoints.clone();
    let kill_switch = opts.kill.clone();
    let ckpt_tracer = opts.tracer.clone();
    // Durably records a finished partition and trips the crash simulator
    // once its write budget is crossed. No-op without a store.
    let write_checkpoint = move |ctx: &mut TaskContext, partition: u64, sky: &[Point]| {
        let Some(store) = &ckpt_store else { return };
        store
            .write_partition(partition, sky)
            .unwrap_or_else(|e| panic!("checkpoint write for partition {partition} failed: {e}"));
        ctx.incr("checkpoints_written", 1);
        ckpt_tracer.emit(|| EventKind::CheckpointWritten {
            partition,
            points: sky.len() as u64,
        });
        if let Some(k) = &kill_switch {
            if k.record_write() {
                panic!("{KILL_PAYLOAD}");
            }
        }
    };
    let kill1 = opts.kill.clone();
    let stream1 = streaming.clone();
    // Node ids for the streaming-merge causal edges: each partition's local
    // skyline flows straight from Job 1's reduce task into the merge job.
    let stream_src_job = format!("{}-partition", opts.name);
    let stream_dst_node = format!("job:{}-merge", opts.name);
    let reducer1 = move |key: &u64,
                         values: Vec<PointBlock>,
                         ctx: &mut TaskContext,
                         out: &mut Vec<(u64, PointBlock)>| {
        // A fired kill switch means the simulated crash is in progress:
        // everything scheduled after it dies without leaving any state.
        if let Some(k) = &kill1 {
            if k.should_abort() {
                panic!("{KILL_PAYLOAD}");
            }
        }
        let points: u64 = values.iter().map(|b| b.len() as u64).sum();
        ctx.add_records_in(points.saturating_sub(values.len() as u64));
        let pruned = usize::try_from(*key)
            .ok()
            .and_then(|cell| prune_mask.get(cell).copied())
            .unwrap_or(false);
        if pruned {
            // Dominated cell: emit nothing, spend nothing (Section III-B).
            ctx.incr("partitions_pruned", 1);
            ctx.incr("points_pruned", points);
            tracer1.emit(|| EventKind::PartitionLocalSkyline {
                partition: *key,
                input: points,
                output: 0,
                pruned: true,
                kernel: "pruned".to_string(),
            });
            // An empty checkpoint: pruning this partition is finished work.
            write_checkpoint(ctx, *key, &[]);
            return;
        }
        let started_us = tracer1.now_us();
        let outcome = run_local_kernel(&concat_owned(dim, values), kernel, window);
        let elapsed_us = tracer1.now_us().saturating_sub(started_us);
        ctx.add_work(outcome.work);
        ctx.incr("local_skyline_points", outcome.sky.len() as u64);
        outcome.trace(&tracer1, points, elapsed_us);
        tracer1.emit(|| EventKind::PartitionLocalSkyline {
            partition: *key,
            input: points,
            output: outcome.sky.len() as u64,
            pruned: false,
            kernel: outcome.kernel.to_string(),
        });
        write_checkpoint(ctx, *key, &outcome.sky.to_points());
        if let Some(sm) = &stream1 {
            sm.absorb_block(&outcome.sky);
            // Job 1's reduce task index equals the partition id (modulo
            // router with reducers == num_partitions), so this names the
            // exact reduce task the merge consumed.
            tracer1.emit(|| EventKind::CausalEdge {
                edge: "merge".into(),
                src: format!("task:{stream_src_job}/reduce/{key}"),
                dst: stream_dst_node.clone(),
            });
        }
        out.push((*key, outcome.sky));
    };

    let input_splits = job1_input.chunks(BLOCK_ROWS);
    let job1: JobResult<u64, (u64, PointBlock)> =
        run_job(&spec1, &input_splits, &mapper1, None, &reducer1);
    let metrics1 = job1.metrics.clone();

    // The per-task counter sums to the exact map-side drop count (counters
    // come from each task's last successful attempt only).
    let rows_filtered = metrics1
        .map
        .counters
        .get("rows_filtered")
        .copied()
        .unwrap_or(0);
    if rows_filtered > 0 {
        let input = job1_input.len() as u64;
        opts.tracer.emit(|| EventKind::RowsFiltered {
            input,
            filtered: rows_filtered,
        });
    }

    // Local skylines sorted by partition id, points by service id.
    // Restored partitions join the computed ones here — downstream merge
    // stages cannot tell a restored local skyline from a fresh one.
    let mut flat: Vec<(u64, PointBlock)> = job1.into_outputs();
    for (p, sky) in &restored {
        if !sky.is_empty() {
            flat.push((*p, repack(dim, sky)));
        }
    }
    flat.sort_by_key(|(k, _)| *k);
    let local_skylines: Vec<(u64, Vec<Point>)> = flat
        .iter()
        .map(|(k, b)| {
            let mut v = b.to_points();
            v.sort_by_key(Point::id);
            (*k, v)
        })
        .collect();

    // ---- Optional hierarchical pre-merge rounds ----
    // Candidates are hash-spread over `fan_in` reducers, each computing the
    // skyline of its share; rounds repeat until one reducer's share is small
    // enough. Lossless: a global skyline point survives any subset's local
    // skyline, and every point pruned in a round is globally dominated.
    let mut premerge_metrics: Option<JobMetrics> = None;
    // Chain edges record which job feeds the next one; premerge rounds
    // splice themselves into the middle of the chain.
    let mut chain_prev_job = format!("{}-partition", opts.name);
    // Candidate order: by service id, i.e. the registry's original (random)
    // order — what a real shuffle's map-completion order would roughly
    // carry. The merge kernel presorts by L1 norm internally, so candidate
    // order no longer changes merge cost; the id sort keeps the record and
    // byte accounting deterministic.
    let mut streaming_candidates = 0u64;
    let mut merge_block = if let Some(sm) = &streaming {
        // Job 2's input is the streaming merge's running skyline: the merge
        // work already happened inside Job 1's reduce wave, so Job 2 is the
        // (cheap) finalization pass the two-job contract still requires.
        streaming_candidates = sm.absorbed();
        let mut b = sm.skyline_snapshot();
        b.sort_by_id();
        b
    } else {
        let mut b = PointBlock::with_capacity(dim, flat.iter().map(|(_, b)| b.len()).sum());
        for (_, sky) in &flat {
            b.extend_from_block(sky);
        }
        b.sort_by_id();
        b
    };
    // Hierarchical pre-merge is pointless after a streaming merge — the
    // candidate set is already a skyline — so streaming wins the conflict.
    if let (None, Some(fan_in)) = (&streaming, opts.config.merge_fan_in) {
        assert!(fan_in >= 2, "hierarchical merge needs fan-in >= 2");
        let mut round = 0u32;
        while merge_block.len() > fan_in * 64 && round < 8 {
            round += 1;
            let reducers = merge_block
                .len()
                .div_ceil(fan_in * 64)
                .min(opts.cluster.reduce_slots().max(1));
            if reducers <= 1 {
                break;
            }
            let mut spec_pm: JobSpec<u64, PointBlock> = JobSpec::new(
                format!("{}-premerge{round}", opts.name),
                opts.cluster.clone(),
            )
            .with_reducers(reducers)
            .with_map_tasks(point_splits(merge_block.len()))
            .with_executor(executor);
            spec_pm.owned_merge = owned_merge.clone();
            spec_pm.spill = spill.clone();
            spec_pm.cost = opts.cost.clone();
            spec_pm.failure = opts.failure.clone();
            spec_pm.speculation = opts.speculation.clone();
            spec_pm.threads = opts.threads;
            spec_pm.locality = opts.locality.clone();
            spec_pm.sizer = Some(sizer.clone());
            spec_pm.tracer = opts.tracer.clone();
            spec_pm.chaos = opts.chaos.clone();
            let r = reducers as u64;
            let mapper_pm =
                move |b: &PointBlock, ctx: &mut TaskContext, out: &mut Emitter<u64, PointBlock>| {
                    ctx.add_records_in(b.len().saturating_sub(1) as u64);
                    let mut shards: Vec<PointBlock> = vec![PointBlock::new(b.dim()); reducers];
                    for i in 0..b.len() {
                        let shard = usize::try_from(b.id(i) % r).unwrap_or(0);
                        shards[shard].push_row_from(b, i);
                    }
                    for (sid, shard) in shards.into_iter().enumerate() {
                        if !shard.is_empty() {
                            out.emit(sid as u64, shard);
                        }
                    }
                };
            let tracer_pm = opts.tracer.clone();
            let reducer_pm = move |key: &u64,
                                   values: Vec<PointBlock>,
                                   ctx: &mut TaskContext,
                                   out: &mut Vec<PointBlock>| {
                let _ = key;
                let points: u64 = values.iter().map(|b| b.len() as u64).sum();
                ctx.add_records_in(points.saturating_sub(values.len() as u64));
                let started_us = tracer_pm.now_us();
                let outcome = run_merge_kernel(&concat_owned(dim, values));
                let elapsed_us = tracer_pm.now_us().saturating_sub(started_us);
                ctx.add_work(outcome.work);
                outcome.trace(&tracer_pm, points, elapsed_us);
                out.push(outcome.sky);
            };
            let splits = merge_block.chunks(BLOCK_ROWS);
            let job: JobResult<u64, PointBlock> =
                run_job(&spec_pm, &splits, &mapper_pm, None, &reducer_pm);
            let this_job = format!("{}-premerge{round}", opts.name);
            opts.tracer.emit(|| EventKind::CausalEdge {
                edge: "chain".into(),
                src: format!("job:{chain_prev_job}"),
                dst: format!("job:{this_job}"),
            });
            chain_prev_job = this_job;
            premerge_metrics = Some(match premerge_metrics.take() {
                None => job.metrics.clone(),
                Some(m) => m.chain(&job.metrics),
            });
            let before = merge_block.len();
            merge_block = concat_blocks(dim, &job.into_outputs());
            merge_block.sort_by_id();
            if merge_block.len() == before {
                break; // no progress: everything is mutually non-dominated
            }
        }
    }

    // ---- Job 2: merge ----
    let mut spec2: JobSpec<u64, PointBlock> =
        JobSpec::new(format!("{}-merge", opts.name), opts.cluster.clone())
            .with_reducers(1)
            .with_map_tasks(point_splits(merge_block.len()))
            .with_executor(executor);
    spec2.owned_merge = owned_merge;
    spec2.spill = spill;
    spec2.cost = opts.cost.clone();
    spec2.failure = opts.failure.clone();
    spec2.speculation = opts.speculation.clone();
    spec2.threads = opts.threads;
    spec2.locality = opts.locality.clone();
    spec2.sizer = Some(sizer);
    spec2.tracer = opts.tracer.clone();
    spec2.chaos = opts.chaos.clone();

    let mapper2 = |b: &PointBlock, ctx: &mut TaskContext, out: &mut Emitter<u64, PointBlock>| {
        ctx.add_records_in(b.len().saturating_sub(1) as u64);
        out.emit(0u64, b.clone());
    };
    // Optional map-side pre-merge: each merge-map task reduces its slice of
    // candidates to a local skyline before the single reducer sees them —
    // the standard combiner trick the paper's Algorithm 1 does not use.
    let combiner2 = move |_key: &u64, values: Vec<PointBlock>, ctx: &mut TaskContext| {
        let outcome = run_merge_kernel(&concat_owned(dim, values));
        ctx.add_work(outcome.work);
        vec![outcome.sky]
    };
    let tracer2 = opts.tracer.clone();
    let reducer2 = move |_key: &u64,
                         values: Vec<PointBlock>,
                         ctx: &mut TaskContext,
                         out: &mut Vec<PointBlock>| {
        let points: u64 = values.iter().map(|b| b.len() as u64).sum();
        ctx.add_records_in(points.saturating_sub(values.len() as u64));
        let started_us = tracer2.now_us();
        let outcome = run_merge_kernel(&concat_owned(dim, values));
        let elapsed_us = tracer2.now_us().saturating_sub(started_us);
        ctx.add_work(outcome.work);
        outcome.trace(&tracer2, points, elapsed_us);
        out.push(outcome.sky);
    };

    let merge_splits = merge_block.chunks(BLOCK_ROWS);
    let job2: JobResult<u64, PointBlock> = run_job(
        &spec2,
        &merge_splits,
        &mapper2,
        if opts.config.merge_combiner {
            Some(&combiner2 as &dyn Combiner<u64, PointBlock>)
        } else {
            None
        },
        &reducer2,
    );
    let metrics2 = job2.metrics.clone();
    opts.tracer.emit(|| EventKind::CausalEdge {
        edge: "chain".into(),
        src: format!("job:{chain_prev_job}"),
        dst: format!("job:{}-merge", opts.name),
    });
    let mut global_block = concat_blocks(dim, &job2.into_outputs());
    global_block.sort_by_id();
    let global_skyline = global_block.to_points();

    let mut merge_overlap_seconds = 0.0f64;
    let chained = if streaming.is_some() {
        // Overlap credit: Job 2's map wave could have started as soon as
        // the first Job 1 reduce task delivered its local skyline, so the
        // simulated timeline hides up to that much of Job 2 behind the
        // remainder of Job 1's reduce wave.
        let reduce = &metrics1.reduce;
        let first_done = reduce.sim_start
            + reduce
                .task_durations
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
        let window = (reduce.sim_end - first_done).max(0.0);
        let overlap = window.min(metrics2.map.sim_span()).max(0.0);
        merge_overlap_seconds = overlap;
        if overlap > 0.0 {
            opts.tracer.emit(|| EventKind::MergeOverlap {
                seconds: overlap,
                candidates: streaming_candidates,
            });
        }
        metrics1.chain_overlapped(&metrics2, overlap)
    } else {
        match premerge_metrics {
            Some(pm) => metrics1.chain(&pm).chain(&metrics2),
            None => metrics1.chain(&metrics2),
        }
    };
    PipelineOutput {
        local_skylines,
        global_skyline,
        metrics: chained,
        partition_counts,
        pruned_partitions,
        rows_filtered,
        sector_pruned_partitions,
        merge_overlap_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{build_partitioner, map_work_per_point};
    use crate::config::Algorithm;
    use qws_data::{generate_qws, QwsConfig};
    use skyline_algos::seq::naive_skyline_ids;

    fn options(name: &str, servers: usize) -> PipelineOptions {
        PipelineOptions {
            name: name.into(),
            cluster: ClusterConfig::new(servers),
            cost: CostModel::default(),
            failure: FailureConfig::none(),
            speculation: SpeculationConfig::default(),
            threads: 0,
            config: AlgoConfig::default(),
            locality: LocalityConfig::default(),
            map_work_per_point: 1,
            tracer: Tracer::disabled(),
            chaos: FaultPlan::off(),
            checkpoints: None,
            resume: false,
            kill: None,
        }
    }

    fn run(algorithm: Algorithm, data: &Dataset, servers: usize) -> PipelineOutput {
        let cfg = AlgoConfig::default();
        let part = build_partitioner(algorithm, &cfg, data, servers).expect("fit");
        let mut opts = options(algorithm.name(), servers);
        opts.map_work_per_point = map_work_per_point(algorithm, data.dim());
        run_two_job_pipeline(part, data, &opts)
    }

    fn sky_ids(points: &[Point]) -> Vec<u64> {
        let mut v: Vec<u64> = points.iter().map(Point::id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn all_algorithms_agree_with_oracle() {
        let data = generate_qws(&QwsConfig::new(600, 3));
        let oracle = naive_skyline_ids(data.points());
        for alg in [
            Algorithm::MrDim,
            Algorithm::MrGrid,
            Algorithm::MrAngle,
            Algorithm::MrRandom,
            Algorithm::Sequential,
        ] {
            let out = run(alg, &data, 4);
            assert_eq!(sky_ids(&out.global_skyline), oracle, "{alg}");
        }
    }

    #[test]
    fn partition_counts_cover_dataset() {
        let data = generate_qws(&QwsConfig::new(300, 2));
        let out = run(Algorithm::MrAngle, &data, 4);
        assert_eq!(out.partition_counts.iter().sum::<usize>(), 300);
    }

    #[test]
    fn local_skylines_contain_global() {
        let data = generate_qws(&QwsConfig::new(400, 3));
        let out = run(Algorithm::MrGrid, &data, 4);
        let local_union: std::collections::HashSet<u64> = out
            .local_skylines
            .iter()
            .flat_map(|(_, v)| v.iter().map(Point::id))
            .collect();
        for p in &out.global_skyline {
            assert!(
                local_union.contains(&p.id()),
                "global point {} missing locally",
                p.id()
            );
        }
    }

    #[test]
    fn grid_pruning_skips_partitions_but_preserves_result() {
        let data = generate_qws(&QwsConfig::new(800, 2));
        let with = run(Algorithm::MrGrid, &data, 8);
        let cfg = AlgoConfig {
            grid_pruning: false,
            sector_prune: false,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrGrid, &cfg, &data, 8).expect("fit");
        let mut opts = options("MR-Grid-noprune", 8);
        opts.config = cfg;
        let without = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&with.global_skyline),
            sky_ids(&without.global_skyline)
        );
        assert!(
            with.pruned_partitions > 0,
            "2-D grid with 16 cells must prune"
        );
        assert_eq!(without.pruned_partitions, 0);
        assert!(
            with.metrics.reduce.work_units <= without.metrics.reduce.work_units,
            "pruning must not add reduce work"
        );
    }

    #[test]
    fn sfs_kernel_agrees_with_bnl() {
        let data = generate_qws(&QwsConfig::new(500, 4));
        let bnl = run(Algorithm::MrAngle, &data, 4);
        let cfg = AlgoConfig {
            kernel: LocalKernel::Sfs,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Angle-sfs", 4);
        opts.config = cfg;
        let sfs = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(sky_ids(&bnl.global_skyline), sky_ids(&sfs.global_skyline));
    }

    #[test]
    fn bounded_window_preserves_result() {
        let data = generate_qws(&QwsConfig::new(500, 3));
        let unbounded = run(Algorithm::MrAngle, &data, 4);
        let cfg = AlgoConfig {
            bnl_window: Some(8),
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Angle-w8", 4);
        opts.config = cfg;
        let windowed = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&unbounded.global_skyline),
            sky_ids(&windowed.global_skyline)
        );
    }

    #[test]
    fn failure_injection_preserves_result() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        let clean = run(Algorithm::MrAngle, &data, 4);
        let part =
            build_partitioner(Algorithm::MrAngle, &AlgoConfig::default(), &data, 4).expect("fit");
        let mut opts = options("MR-Angle-flaky", 4);
        opts.failure = FailureConfig::with_rate(300, 5);
        let flaky = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&clean.global_skyline),
            sky_ids(&flaky.global_skyline)
        );
        assert!(
            flaky.metrics.map.attempts + flaky.metrics.reduce.attempts
                > clean.metrics.map.attempts + clean.metrics.reduce.attempts
        );
    }

    #[test]
    fn merge_combiner_preserves_result_and_cuts_reducer_input() {
        let data = generate_qws(&QwsConfig::new(4000, 6));
        let plain = run(Algorithm::MrAngle, &data, 8);
        let cfg = AlgoConfig {
            merge_combiner: true,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 8).expect("fit");
        let mut opts = options("MR-Angle-combine", 8);
        opts.config = cfg;
        let combined = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&plain.global_skyline),
            sky_ids(&combined.global_skyline)
        );
        // the final reducer now receives at most as many records
        assert!(
            combined.metrics.reduce.records_in <= plain.metrics.reduce.records_in,
            "combiner must not inflate reducer input"
        );
    }

    #[test]
    fn hierarchical_merge_preserves_result() {
        let data = generate_qws(&QwsConfig::new(6000, 8));
        let plain = run(Algorithm::MrAngle, &data, 8);
        let cfg = AlgoConfig {
            merge_fan_in: Some(4),
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 8).expect("fit");
        let mut opts = options("MR-Angle-tree", 8);
        opts.config = cfg;
        let tree = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&plain.global_skyline),
            sky_ids(&tree.global_skyline)
        );
        // the final single reducer sees at most as much as without pre-merge
        let final_in = |out: &PipelineOutput| {
            *out.metrics
                .reduce
                .task_durations
                .last()
                .expect("merge task exists")
        };
        assert!(final_in(&tree) <= final_in(&plain) + 1e-9);
    }

    #[test]
    fn named_counters_surface_in_metrics() {
        let data = generate_qws(&QwsConfig::new(800, 2));
        // Filtering off: with it on, a partition can lose *all* its rows
        // map-side, never reach a reduce call, and so never bump the
        // counter — which would break the reconstruction below.
        let cfg = AlgoConfig {
            filter_k: Some(0),
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrGrid, &cfg, &data, 8).expect("fit");
        let mut opts = options("MR-Grid-counters", 8);
        opts.config = cfg;
        let out = run_two_job_pipeline(part, &data, &opts);
        let counters = &out.metrics.reduce.counters;
        assert!(counters.contains_key("local_skyline_points"));
        // the counter sees only pruned partitions that actually received
        // points (empty ones never reach a reduce call)
        let pruned_nonempty = out
            .partition_counts
            .iter()
            .zip(part_prunable(&out))
            .filter(|&(&c, p)| c > 0 && p)
            .count() as u64;
        assert_eq!(
            counters.get("partitions_pruned").copied().unwrap_or(0),
            pruned_nonempty
        );
    }

    fn part_prunable(out: &PipelineOutput) -> Vec<bool> {
        // reconstruct which partitions were prunable from the counts and
        // pruned total: partitions with points but no local skyline output
        let mut mask = vec![false; out.partition_counts.len()];
        let with_output: std::collections::HashSet<u64> =
            out.local_skylines.iter().map(|(k, _)| *k).collect();
        for (i, &c) in out.partition_counts.iter().enumerate() {
            if c > 0 && !with_output.contains(&(i as u64)) {
                mask[i] = true;
            }
        }
        mask
    }

    #[test]
    fn metrics_cover_both_jobs() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        let out = run(Algorithm::MrAngle, &data, 4);
        assert!(out.metrics.name.contains("partition"));
        assert!(out.metrics.name.contains("merge"));
        assert!(out.metrics.sim_total > 0.0);
        assert_eq!(out.metrics.map.records_in as usize, 300 + merge_in(&out));
        assert!(out.metrics.shuffle_bytes > 0);
    }

    fn merge_in(out: &PipelineOutput) -> usize {
        out.local_skylines.iter().map(|(_, v)| v.len()).sum()
    }

    #[test]
    fn traced_pipeline_emits_a_schema_valid_stream() {
        let data = generate_qws(&QwsConfig::new(800, 3));
        let part =
            build_partitioner(Algorithm::MrAngle, &AlgoConfig::default(), &data, 4).expect("fit");
        let mut opts = options("MR-Angle-traced", 4);
        opts.tracer = Tracer::in_memory();
        let out = run_two_job_pipeline(part, &data, &opts);
        let events = opts.tracer.drain();
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");

        // one PartitionLocalSkyline per non-empty partition, sizes matching
        // the pipeline's own local_skylines output
        let mut traced_sizes = std::collections::BTreeMap::new();
        let mut kernel_runs = 0usize;
        let mut jobs = 0usize;
        for e in &events {
            match &e.kind {
                EventKind::PartitionLocalSkyline {
                    partition,
                    output,
                    pruned: false,
                    ..
                } => {
                    traced_sizes.insert(*partition, *output);
                }
                EventKind::KernelRun { .. } => kernel_runs += 1,
                EventKind::JobStarted { .. } => jobs += 1,
                _ => {}
            }
        }
        assert_eq!(traced_sizes.len(), out.local_skylines.len());
        for (k, v) in &out.local_skylines {
            assert_eq!(traced_sizes.get(k).copied(), Some(v.len() as u64), "{k}");
        }
        // at least one local kernel per partition plus the final merge
        assert!(kernel_runs > out.local_skylines.len());
        assert_eq!(jobs, 2, "partition + merge jobs");
        // the partition-profile span bookends survive validation implicitly,
        // but assert presence so a dropped span is a loud failure
        assert!(events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::SpanBegin { name } if name == "pipeline.partition_profile")));
    }

    #[test]
    fn traced_pruned_partitions_are_reported() {
        let data = generate_qws(&QwsConfig::new(800, 2));
        // Filtering off so pruned cells still receive rows (and hence a
        // reduce call that emits the pruned-partition event).
        let cfg = AlgoConfig {
            filter_k: Some(0),
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrGrid, &cfg, &data, 8).expect("fit");
        let mut opts = options("MR-Grid-traced", 8);
        opts.config = cfg;
        opts.tracer = Tracer::in_memory();
        let out = run_two_job_pipeline(part, &data, &opts);
        assert!(out.pruned_partitions > 0, "2-D grid must prune");
        let events = opts.tracer.drain();
        let pruned_events = events
            .iter()
            .filter(
                |e| matches!(&e.kind, EventKind::PartitionLocalSkyline { pruned: true, output, .. } if *output == 0),
            )
            .count();
        // only pruned partitions that received points reach a reduce call
        assert!(pruned_events > 0 && pruned_events <= out.pruned_partitions);
    }

    #[test]
    fn filtering_cuts_shuffle_and_preserves_result() {
        use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
        let data = generate_synthetic(&SyntheticConfig::new(2000, 4, Distribution::AntiCorrelated));
        let filtered = run(Algorithm::MrAngle, &data, 4);
        let cfg = AlgoConfig {
            filter_k: Some(0),
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Angle-nofilter", 4);
        opts.config = cfg;
        let plain = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&filtered.global_skyline),
            sky_ids(&plain.global_skyline),
            "filtering must not change the skyline"
        );
        assert!(filtered.rows_filtered > 0, "filter must drop something");
        assert_eq!(plain.rows_filtered, 0);
        assert!(
            filtered.metrics.reduce.records_in < plain.metrics.reduce.records_in,
            "dropped rows must not be shuffled"
        );
        assert!(filtered.metrics.shuffle_bytes < plain.metrics.shuffle_bytes);
    }

    #[test]
    fn filtering_keeps_point_weighted_accounting_honest() {
        // Map-side filtered rows are charged exactly once: as Job 1 map
        // input. They never reappear in reduce or merge record counts.
        let data = generate_qws(&QwsConfig::new(600, 3));
        let out = run(Algorithm::MrAngle, &data, 4);
        let candidates: u64 = out.local_skylines.iter().map(|(_, v)| v.len() as u64).sum();
        assert_eq!(out.metrics.map.records_in, 600 + candidates);
        assert_eq!(
            out.metrics.reduce.records_in,
            (600 - out.rows_filtered) + candidates,
            "reduce must see only unfiltered rows plus merge candidates"
        );
    }

    #[test]
    fn sector_pruning_skips_partitions_on_any_scheme() {
        use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
        // Correlated data: one good point dominates almost everything, so
        // most grid cells' corners fall to a filter-point witness even with
        // MR-Grid's own dominated-cell pruning switched off.
        let data = generate_synthetic(&SyntheticConfig::new(2000, 2, Distribution::Correlated));
        let cfg = AlgoConfig {
            grid_pruning: false,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrGrid, &cfg, &data, 8).expect("fit");
        let mut opts = options("MR-Grid-witness", 8);
        opts.config = cfg.clone();
        let pruned = run_two_job_pipeline(Arc::clone(&part), &data, &opts);
        assert!(
            pruned.sector_pruned_partitions > 0,
            "witness pruning must fire on correlated data"
        );
        assert_eq!(pruned.pruned_partitions, pruned.sector_pruned_partitions);
        let off = AlgoConfig {
            sector_prune: false,
            ..cfg
        };
        let part2 = build_partitioner(Algorithm::MrGrid, &off, &data, 8).expect("fit");
        let mut opts2 = options("MR-Grid-nowitness", 8);
        opts2.config = off;
        let plain = run_two_job_pipeline(part2, &data, &opts2);
        assert_eq!(plain.sector_pruned_partitions, 0);
        assert_eq!(
            sky_ids(&pruned.global_skyline),
            sky_ids(&plain.global_skyline),
            "witness pruning must not change the skyline"
        );
    }

    #[test]
    fn streaming_merge_removes_the_reduce_barrier() {
        let data = generate_qws(&QwsConfig::new(2000, 4));
        let plain = run(Algorithm::MrAngle, &data, 4);
        let cfg = AlgoConfig {
            streaming_merge: true,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Angle-stream", 4);
        opts.config = cfg;
        opts.tracer = Tracer::in_memory();
        let streamed = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(
            sky_ids(&plain.global_skyline),
            sky_ids(&streamed.global_skyline),
            "streaming merge must be bit-identical"
        );
        assert!(
            streamed.merge_overlap_seconds > 0.0,
            "multi-partition reduce wave must leave a window to overlap"
        );
        assert!(
            streamed.metrics.sim_total < plain.metrics.sim_total,
            "overlap credit plus the smaller merge input must shorten the timeline: {} vs {}",
            streamed.metrics.sim_total,
            plain.metrics.sim_total
        );
        let events = opts.tracer.drain();
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");
        let overlap = events.iter().find_map(|e| match &e.kind {
            EventKind::MergeOverlap {
                seconds,
                candidates,
            } => Some((*seconds, *candidates)),
            _ => None,
        });
        let (seconds, candidates) = overlap.expect("MergeOverlap event present");
        assert!((seconds - streamed.merge_overlap_seconds).abs() < 1e-12);
        // every unfiltered local-skyline row went through the incremental merge
        let shipped: u64 = streamed
            .local_skylines
            .iter()
            .map(|(_, v)| v.len() as u64)
            .sum();
        assert!(candidates >= shipped);
    }

    #[test]
    fn owned_shuffle_matches_seed_row_shuffle_bit_for_bit() {
        let data = generate_qws(&QwsConfig::new(1500, 4));
        let owned = run(Algorithm::MrAngle, &data, 4);
        let cfg = AlgoConfig {
            owned_shuffle: false,
            static_executor: true,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Angle-seed", 4);
        opts.config = cfg;
        let seed = run_two_job_pipeline(part, &data, &opts);
        // not just the same set — the same points in the same order
        assert_eq!(owned.global_skyline, seed.global_skyline);
        assert_eq!(owned.local_skylines, seed.local_skylines);
        // the wire is the same size either way: concatenation transfers
        // bytes, it does not invent or drop them
        assert_eq!(owned.metrics.shuffle_bytes, seed.metrics.shuffle_bytes);
    }

    #[test]
    fn executor_modes_agree_on_the_pipeline() {
        let data = generate_qws(&QwsConfig::new(900, 3));
        let stealing = run(Algorithm::MrGrid, &data, 4);
        let cfg = AlgoConfig {
            static_executor: true,
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrGrid, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Grid-static", 4);
        opts.config = cfg;
        opts.map_work_per_point = map_work_per_point(Algorithm::MrGrid, data.dim());
        let fixed = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(stealing.global_skyline, fixed.global_skyline);
        assert_eq!(stealing.metrics.sim_total, fixed.metrics.sim_total);
    }

    #[test]
    fn spilled_pipeline_is_exact_and_lowers_reduce_peak() {
        let data = generate_qws(&QwsConfig::new(1200, 4));
        let plain = run(Algorithm::MrAngle, &data, 4);
        let dir = std::env::temp_dir().join(format!("mrsky-pipe-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = AlgoConfig {
            spill_budget_bytes: Some(0), // spill every reduce input
            spill_dir: Some(dir.clone()),
            ..AlgoConfig::default()
        };
        let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
        let mut opts = options("MR-Angle-spill", 4);
        opts.config = cfg;
        let spilled = run_two_job_pipeline(part, &data, &opts);
        assert_eq!(plain.global_skyline, spilled.global_skyline);
        assert_eq!(plain.local_skylines, spilled.local_skylines);
        // every reduce input went through the disk round-trip
        let spilled_inputs: u64 = spilled
            .metrics
            .reduce
            .counters
            .get("spilled_inputs")
            .copied()
            .unwrap_or(0);
        assert!(spilled_inputs > 0, "budget 0 must spill something");
        assert_eq!(
            spilled
                .metrics
                .reduce
                .counters
                .get("spill_write_errors")
                .copied()
                .unwrap_or(0),
            0
        );
        // consumed spill files are deleted
        if dir.exists() {
            let leftovers: Vec<_> = walk_files(&dir);
            assert!(
                leftovers.is_empty(),
                "spill files must be cleaned up: {leftovers:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn walk_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let mut out = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            if let Ok(entries) = std::fs::read_dir(&d) {
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        stack.push(p);
                    } else {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn spill_frame_codec_round_trips() {
        let data = generate_qws(&QwsConfig::new(97, 5));
        let mut b = PointBlock::with_capacity(5, data.len());
        for p in data.points() {
            b.push_point(p);
        }
        let decoded = decode_block(&encode_block(&b));
        assert_eq!(decoded.to_points(), b.to_points());
        // empty block round-trips too
        let empty = PointBlock::new(3);
        assert_eq!(decode_block(&encode_block(&empty)).len(), 0);
    }

    #[test]
    fn pipeline_reports_peak_memory_gauges() {
        let data = generate_qws(&QwsConfig::new(800, 3));
        let out = run(Algorithm::MrAngle, &data, 4);
        assert!(out.metrics.peak_mem.map_out > 0);
        assert!(out.metrics.peak_mem.reduce_in > 0);
        // chained metrics keep the element-wise max across both jobs, so
        // the plateau is at least Job 2's single-reducer input
        assert!(out.metrics.peak_mem.map_out <= out.metrics.shuffle_bytes);
    }

    #[test]
    fn chaos_with_scale_knobs_stays_exact() {
        let data = generate_qws(&QwsConfig::new(700, 4));
        let clean = run(Algorithm::MrAngle, &data, 4);
        let dir =
            std::env::temp_dir().join(format!("mrsky-pipe-chaos-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for seed in [5u64, 9] {
            let cfg = AlgoConfig {
                spill_budget_bytes: Some(0),
                spill_dir: Some(dir.clone()),
                ..AlgoConfig::default()
            };
            let part = build_partitioner(Algorithm::MrAngle, &cfg, &data, 4).expect("fit");
            let mut opts = options("MR-Angle-chaos-scale", 4);
            opts.config = cfg;
            opts.chaos = FaultPlan::heavy(seed);
            let chaotic = run_two_job_pipeline(part, &data, &opts);
            assert_eq!(
                clean.global_skyline, chaotic.global_skyline,
                "seed {seed}: chaos + owned shuffle + spill changed the skyline"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_merge_emits_rows_filtered_event() {
        let data = generate_qws(&QwsConfig::new(800, 3));
        let part =
            build_partitioner(Algorithm::MrAngle, &AlgoConfig::default(), &data, 4).expect("fit");
        let mut opts = options("MR-Angle-filtertrace", 4);
        opts.tracer = Tracer::in_memory();
        let out = run_two_job_pipeline(part, &data, &opts);
        let events = opts.tracer.drain();
        let filtered = events.iter().find_map(|e| match &e.kind {
            EventKind::RowsFiltered { input, filtered } => Some((*input, *filtered)),
            _ => None,
        });
        if out.rows_filtered > 0 {
            let (input, filtered) = filtered.expect("RowsFiltered event present");
            assert_eq!(input, 800);
            assert_eq!(filtered, out.rows_filtered);
        } else {
            assert!(filtered.is_none());
        }
    }
}
