//! The [`SkylineJob`] façade: algorithm + cluster + knobs → one call.

use crate::algorithms::{build_partitioner, map_work_per_point, run_two_job_pipeline, PipelineOptions};
use crate::config::{AlgoConfig, Algorithm};
use crate::report::SkylineRunReport;
use mini_mapreduce::cost::CostModel;
use mini_mapreduce::runtime::{ClusterConfig, LocalityConfig};
use mini_mapreduce::scheduler::SpeculationConfig;
use mini_mapreduce::task::FailureConfig;
use qws_data::Dataset;
use skyline_algos::metrics::{load_balance, local_skyline_optimality};

/// A configured skyline-selection job, reusable across datasets.
#[derive(Clone)]
pub struct SkylineJob {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Algorithm knobs.
    pub config: AlgoConfig,
    /// Cost model (leave default for paper-comparable timings).
    pub cost: CostModel,
    /// Failure injection.
    pub failure: FailureConfig,
    /// Speculative execution.
    pub speculation: SpeculationConfig,
    /// Data-locality model (HDFS block placement) for map scheduling.
    pub locality: LocalityConfig,
    /// Host threads for real execution (`0` = all cores).
    pub threads: usize,
}

impl SkylineJob {
    /// A job for `algorithm` on a cluster of `servers` with default knobs.
    /// `Sequential` forces a single server regardless of the argument.
    pub fn new(algorithm: Algorithm, servers: usize) -> Self {
        let servers = if algorithm == Algorithm::Sequential {
            1
        } else {
            servers
        };
        Self {
            algorithm,
            cluster: ClusterConfig::new(servers),
            config: AlgoConfig::default(),
            cost: CostModel::default(),
            failure: FailureConfig::none(),
            speculation: SpeculationConfig::default(),
            locality: LocalityConfig::default(),
            threads: 0,
        }
    }

    /// Builder: overrides the algorithm knobs.
    pub fn with_config(mut self, config: AlgoConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: injects task failures.
    pub fn with_failures(mut self, failure: FailureConfig) -> Self {
        self.failure = failure;
        self
    }

    /// Runs the job over `dataset`, producing a full report.
    pub fn run(&self, dataset: &Dataset) -> SkylineRunReport {
        let partitioner =
            build_partitioner(self.algorithm, &self.config, dataset, self.cluster.servers);
        let opts = PipelineOptions {
            name: self.algorithm.name().to_string(),
            cluster: self.cluster.clone(),
            cost: self.cost.clone(),
            failure: self.failure.clone(),
            speculation: self.speculation.clone(),
            threads: self.threads,
            config: self.config.clone(),
            locality: self.locality.clone(),
            map_work_per_point: map_work_per_point(self.algorithm, dataset.dim()),
        };
        let out = run_two_job_pipeline(partitioner.clone(), dataset, &opts);

        let locals: Vec<Vec<skyline_algos::point::Point>> =
            out.local_skylines.iter().map(|(_, v)| v.clone()).collect();
        let optimality = local_skyline_optimality(&locals, &out.global_skyline);

        SkylineRunReport {
            algorithm: self.algorithm,
            dataset: dataset.name.clone(),
            cardinality: dataset.len(),
            dimensions: dataset.dim(),
            servers: self.cluster.servers,
            partitions: partitioner.num_partitions(),
            global_skyline: out.global_skyline,
            local_skylines: out.local_skylines,
            load_balance: load_balance(&out.partition_counts),
            partition_counts: out.partition_counts,
            pruned_partitions: out.pruned_partitions,
            optimality,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qws_data::{generate_qws, QwsConfig};
    use skyline_algos::seq::naive_skyline_ids;

    #[test]
    fn quickstart_shape() {
        let data = generate_qws(&QwsConfig::new(400, 3));
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        assert_eq!(report.cardinality, 400);
        assert_eq!(report.dimensions, 3);
        assert_eq!(report.servers, 4);
        assert!(report.partitions >= 8);
        assert!((0.0..=1.0).contains(&report.optimality));
        assert!(report.processing_time() > 0.0);
        let ids: Vec<u64> = report.global_skyline.iter().map(|p| p.id()).collect();
        assert_eq!(ids, naive_skyline_ids(data.points()));
    }

    #[test]
    fn sequential_forces_one_server() {
        let j = SkylineJob::new(Algorithm::Sequential, 16);
        assert_eq!(j.cluster.servers, 1);
    }

    #[test]
    fn reports_are_deterministic() {
        let data = generate_qws(&QwsConfig::new(300, 4));
        let a = SkylineJob::new(Algorithm::MrGrid, 4).run(&data);
        let b = SkylineJob::new(Algorithm::MrGrid, 4).run(&data);
        assert_eq!(a.global_skyline.len(), b.global_skyline.len());
        assert_eq!(a.metrics.sim_total, b.metrics.sim_total);
        assert_eq!(a.optimality, b.optimality);
    }

    #[test]
    fn angle_beats_dim_on_merge_candidates() {
        // The paper's central mechanism: angular partitions ship fewer,
        // better local-skyline candidates into the merge job.
        let data = generate_qws(&QwsConfig::new(4000, 4));
        let angle = SkylineJob::new(Algorithm::MrAngle, 8).run(&data);
        let dim = SkylineJob::new(Algorithm::MrDim, 8).run(&data);
        assert!(
            angle.merge_candidates() < dim.merge_candidates(),
            "angle {} vs dim {}",
            angle.merge_candidates(),
            dim.merge_candidates()
        );
        assert!(
            angle.optimality > dim.optimality,
            "angle LSO {} vs dim LSO {}",
            angle.optimality,
            dim.optimality
        );
    }

    #[test]
    fn all_reports_share_global_skyline() {
        let data = generate_qws(&QwsConfig::new(500, 5));
        let oracle = naive_skyline_ids(data.points());
        for alg in Algorithm::paper_trio() {
            let r = SkylineJob::new(alg, 4).run(&data);
            let ids: Vec<u64> = r.global_skyline.iter().map(|p| p.id()).collect();
            assert_eq!(ids, oracle, "{alg}");
        }
    }
}
