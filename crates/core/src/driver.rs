//! The [`SkylineJob`] façade: algorithm + cluster + knobs → one call.

use crate::algorithms::{
    build_partitioner, map_work_per_point, run_two_job_pipeline, PipelineOptions,
};
use crate::checkpoint::{dataset_fingerprint, CheckpointStore, Manifest};
use crate::config::{AlgoConfig, Algorithm};
use crate::report::SkylineRunReport;
use mini_mapreduce::cost::CostModel;
use mini_mapreduce::runtime::{ClusterConfig, LocalityConfig};
use mini_mapreduce::scheduler::SpeculationConfig;
use mini_mapreduce::task::FailureConfig;
use mrsky_audit::plan::{audit_plan, PlanSpec};
use mrsky_audit::AuditReport;
use mrsky_chaos::{FaultPlan, KillSwitch};
use mrsky_trace::Tracer;
use qws_data::Dataset;
use skyline_algos::metrics::{load_balance, local_skyline_optimality};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// A configured skyline-selection job, reusable across datasets.
#[derive(Clone)]
pub struct SkylineJob {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// Algorithm knobs.
    pub config: AlgoConfig,
    /// Cost model (leave default for paper-comparable timings).
    pub cost: CostModel,
    /// Failure injection.
    pub failure: FailureConfig,
    /// Speculative execution.
    pub speculation: SpeculationConfig,
    /// Data-locality model (HDFS block placement) for map scheduling.
    pub locality: LocalityConfig,
    /// Host threads for real execution (`0` = all cores).
    pub threads: usize,
    /// Run even when the plan audit reports error-level diagnostics.
    pub force: bool,
    /// Structured-event tracer threaded through the whole pipeline
    /// (simulator lifecycle, kernels, partition skylines). Disabled by
    /// default; see [`SkylineJob::with_tracer`].
    pub tracer: Tracer,
    /// Seeded fault-injection plan ([`FaultPlan::off`] by default). Faults
    /// genuinely re-execute work; `kill_after_checkpoints` simulates a
    /// driver crash that [`SkylineJob::run_resilient`] recovers from.
    pub chaos: FaultPlan,
    /// Directory for per-partition local-skyline checkpoints. `None`
    /// (default) disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from `checkpoint_dir`: restore finished partitions instead
    /// of recomputing them. Requires a matching manifest (same algorithm,
    /// dataset, and partition count) — anything else is refused loudly.
    pub resume: bool,
}

impl SkylineJob {
    /// A job for `algorithm` on a cluster of `servers` with default knobs.
    /// `Sequential` forces a single server regardless of the argument.
    pub fn new(algorithm: Algorithm, servers: usize) -> Self {
        let servers = if algorithm == Algorithm::Sequential {
            1
        } else {
            servers
        };
        Self {
            algorithm,
            cluster: ClusterConfig::new(servers),
            config: AlgoConfig::default(),
            cost: CostModel::default(),
            failure: FailureConfig::none(),
            speculation: SpeculationConfig::default(),
            locality: LocalityConfig::default(),
            threads: 0,
            force: false,
            tracer: Tracer::disabled(),
            chaos: FaultPlan::off(),
            checkpoint_dir: None,
            resume: false,
        }
    }

    /// Builder: overrides the algorithm knobs.
    pub fn with_config(mut self, config: AlgoConfig) -> Self {
        self.config = config;
        self
    }

    /// Builder: injects task failures.
    pub fn with_failures(mut self, failure: FailureConfig) -> Self {
        self.failure = failure;
        self
    }

    /// Builder: runs even when the plan audit reports errors.
    pub fn with_force(mut self, force: bool) -> Self {
        self.force = force;
        self
    }

    /// Builder: attaches a structured-event tracer. Every simulated job,
    /// kernel invocation, and partition skyline of subsequent runs emits
    /// into it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Builder: arms a seeded fault-injection plan. Unlike
    /// [`SkylineJob::with_failures`] (which *prices* simulated failures),
    /// chaos faults make real code paths panic, error, and re-execute.
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Builder: enables per-partition local-skyline checkpoints in `dir`.
    pub fn with_checkpoints(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Builder: resume the next run from the checkpoint directory.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Audits the plan this job would execute over `dataset` — the fitted
    /// partitioner's totality/disjointness, pruning soundness, and the
    /// cluster/scheduler/cost configuration — without running anything.
    pub fn audit(&self, dataset: &Dataset) -> AuditReport {
        let partitioner =
            match build_partitioner(self.algorithm, &self.config, dataset, self.cluster.servers) {
                Ok(p) => p,
                Err(e) => return self.fit_failure_report(&e),
            };
        self.audit_with(&partitioner, dataset)
    }

    /// A fit failure means there is no partition function at all — report it
    /// as the (vacuous) totality violation so callers see one shape.
    fn fit_failure_report(&self, e: &skyline_algos::SkylineError) -> AuditReport {
        AuditReport {
            scheme: self.algorithm.name().to_string(),
            probes: 0,
            diagnostics: vec![mrsky_audit::Diagnostic::new(
                mrsky_audit::Code::PartitionNotTotal,
                mrsky_audit::Severity::Error,
                "partitioner fit",
                format!("partitioner could not be fitted: {e}"),
            )],
        }
    }

    fn audit_with(
        &self,
        partitioner: &std::sync::Arc<dyn skyline_algos::SpacePartitioner>,
        dataset: &Dataset,
    ) -> AuditReport {
        let bounds = dataset.bounds();
        let spec = PlanSpec {
            partitioner: partitioner.as_ref(),
            bounds,
            cluster: &self.cluster,
            speculation: &self.speculation,
            cost: &self.cost,
            // Job 1 configures one reduce task per partition (see
            // `run_two_job_pipeline`).
            reducers_job1: partitioner.num_partitions(),
            grid_pruning: self.config.grid_pruning && self.algorithm == Algorithm::MrGrid,
            filter_k: self.config.filter_points_for(dataset.dim()),
            sector_prune: self.config.sector_prune,
            threads: self.threads.max(1),
        };
        audit_plan(&spec)
    }

    /// Audits the plan first and only runs it when no error-level
    /// diagnostics were found (or [`SkylineJob::force`] is set). The failed
    /// audit comes back in `Err` for inspection/rendering.
    pub fn run_checked(&self, dataset: &Dataset) -> Result<SkylineRunReport, Box<AuditReport>> {
        let kill = self
            .chaos
            .kill_after_checkpoints
            .map(|n| Arc::new(KillSwitch::new(n)));
        self.run_checked_with(dataset, kill)
    }

    fn run_checked_with(
        &self,
        dataset: &Dataset,
        kill: Option<Arc<KillSwitch>>,
    ) -> Result<SkylineRunReport, Box<AuditReport>> {
        let partitioner =
            match build_partitioner(self.algorithm, &self.config, dataset, self.cluster.servers) {
                Ok(p) => p,
                // A failed fit cannot be forced past: there is nothing to run.
                Err(e) => return Err(Box::new(self.fit_failure_report(&e))),
            };
        let report = self.audit_with(&partitioner, dataset);
        if report.has_errors() && !self.force {
            return Err(Box::new(report));
        }
        Ok(self.run_with(partitioner, dataset, kill))
    }

    /// Runs the job surviving the chaos plan's simulated driver crash:
    /// when `chaos.kill_after_checkpoints` fires mid-run, the unwind is
    /// caught here and the job re-runs with `--resume` semantics, restoring
    /// every checkpointed partition instead of recomputing it. Panics that
    /// are *not* the simulated crash propagate unchanged — a real bug still
    /// crashes loudly.
    pub fn run_resilient(&self, dataset: &Dataset) -> Result<SkylineRunReport, Box<AuditReport>> {
        let kill = self
            .chaos
            .kill_after_checkpoints
            .map(|n| Arc::new(KillSwitch::new(n)));
        let mut job = self.clone();
        let mut run = 1u64;
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                job.run_checked_with(dataset, kill.clone())
            }));
            match outcome {
                Ok(result) => return result,
                // The kill switch fires at most once per arm, so the resumed
                // iteration always completes (or fails for a real reason).
                Err(payload) => match &kill {
                    Some(k) if k.should_abort() => {
                        k.disarm();
                        job.resume = true;
                        run += 1;
                        // the marker tells trace consumers the torn stream
                        // before it was a simulated crash, not a schema bug
                        self.tracer
                            .emit(|| mrsky_trace::EventKind::RunResumed { run });
                    }
                    _ => resume_unwind(payload),
                },
            }
        }
    }

    /// Runs the job over `dataset`, producing a full report.
    ///
    /// # Panics
    ///
    /// Panics when the plan audit finds error-level diagnostics and
    /// [`SkylineJob::force`] is not set; use [`SkylineJob::run_checked`] to
    /// handle that case without unwinding.
    pub fn run(&self, dataset: &Dataset) -> SkylineRunReport {
        match self.run_checked(dataset) {
            Ok(report) => report,
            Err(audit) => panic!(
                "refusing to run an unsound plan (set force to override):\n{}",
                audit.render_text()
            ),
        }
    }

    /// Opens, validates, and (for fresh runs) resets the checkpoint store.
    /// Checkpoints from a different algorithm/dataset/partitioning are
    /// refused on resume — restoring them would corrupt the result.
    fn open_checkpoints(
        &self,
        partitioner: &std::sync::Arc<dyn skyline_algos::SpacePartitioner>,
        dataset: &Dataset,
    ) -> Option<Arc<CheckpointStore>> {
        let dir = self.checkpoint_dir.as_ref()?;
        let store = CheckpointStore::open(dir)
            .unwrap_or_else(|e| panic!("cannot open checkpoint dir {}: {e}", dir.display()));
        let manifest = Manifest {
            algorithm: self.algorithm.name().to_string(),
            fingerprint: dataset_fingerprint(dataset),
            partitions: partitioner.num_partitions() as u64,
        };
        if self.resume {
            store.validate(&manifest).unwrap_or_else(|e| panic!("{e}"));
        } else {
            store
                .clear()
                .unwrap_or_else(|e| panic!("cannot clear checkpoint dir: {e}"));
        }
        store
            .write_manifest(&manifest)
            .unwrap_or_else(|e| panic!("cannot write checkpoint manifest: {e}"));
        Some(Arc::new(store))
    }

    fn run_with(
        &self,
        partitioner: std::sync::Arc<dyn skyline_algos::SpacePartitioner>,
        dataset: &Dataset,
        kill: Option<Arc<KillSwitch>>,
    ) -> SkylineRunReport {
        let opts = PipelineOptions {
            name: self.algorithm.name().to_string(),
            cluster: self.cluster.clone(),
            cost: self.cost.clone(),
            failure: self.failure.clone(),
            speculation: self.speculation.clone(),
            threads: self.threads,
            config: self.config.clone(),
            locality: self.locality.clone(),
            map_work_per_point: map_work_per_point(self.algorithm, dataset.dim()),
            tracer: self.tracer.clone(),
            chaos: self.chaos.clone(),
            checkpoints: self.open_checkpoints(&partitioner, dataset),
            resume: self.resume,
            kill,
        };
        let out = self.tracer.span("driver.run", || {
            run_two_job_pipeline(partitioner.clone(), dataset, &opts)
        });

        let locals: Vec<Vec<skyline_algos::point::Point>> =
            out.local_skylines.iter().map(|(_, v)| v.clone()).collect();
        let optimality = local_skyline_optimality(&locals, &out.global_skyline);

        SkylineRunReport {
            algorithm: self.algorithm,
            dataset: dataset.name.clone(),
            cardinality: dataset.len(),
            dimensions: dataset.dim(),
            servers: self.cluster.servers,
            partitions: partitioner.num_partitions(),
            global_skyline: out.global_skyline,
            local_skylines: out.local_skylines,
            load_balance: load_balance(&out.partition_counts),
            partition_counts: out.partition_counts,
            pruned_partitions: out.pruned_partitions,
            rows_filtered: out.rows_filtered,
            sector_pruned_partitions: out.sector_pruned_partitions,
            merge_overlap_seconds: out.merge_overlap_seconds,
            optimality,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qws_data::{generate_qws, QwsConfig};
    use skyline_algos::seq::naive_skyline_ids;

    #[test]
    fn quickstart_shape() {
        let data = generate_qws(&QwsConfig::new(400, 3));
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        assert_eq!(report.cardinality, 400);
        assert_eq!(report.dimensions, 3);
        assert_eq!(report.servers, 4);
        assert!(report.partitions >= 8);
        assert!((0.0..=1.0).contains(&report.optimality));
        assert!(report.processing_time() > 0.0);
        let ids: Vec<u64> = report
            .global_skyline
            .iter()
            .map(skyline_algos::Point::id)
            .collect();
        assert_eq!(ids, naive_skyline_ids(data.points()));
    }

    #[test]
    fn audit_is_clean_for_every_algorithm() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        for alg in [
            Algorithm::MrAngle,
            Algorithm::MrDim,
            Algorithm::MrGrid,
            Algorithm::MrRandom,
            Algorithm::Sequential,
        ] {
            let report = SkylineJob::new(alg, 4).audit(&data);
            assert!(
                !report.has_errors(),
                "{alg} plan should audit clean:\n{}",
                report.render_text()
            );
        }
    }

    #[test]
    fn run_checked_refuses_zero_slot_cluster() {
        let data = generate_qws(&QwsConfig::new(100, 3));
        let mut job = SkylineJob::new(Algorithm::MrDim, 2);
        job.cluster.reduce_slots_per_server = 0;
        let err = job
            .run_checked(&data)
            .expect_err("zero reduce slots must be refused");
        assert!(err.has_errors());
        assert!(!err
            .with_code(mrsky_audit::Code::ZeroCapacityCluster)
            .is_empty());
    }

    #[test]
    fn force_bypasses_the_audit_gate() {
        let data = generate_qws(&QwsConfig::new(100, 3));
        // threshold < 1.0 is an error-level MRA008 (every task would be
        // called a straggler) but the simulator still completes, so it
        // exercises the force path end to end.
        let mut job = SkylineJob::new(Algorithm::MrDim, 2);
        job.speculation.enabled = true;
        job.speculation.threshold = 0.5;
        let err = job
            .run_checked(&data)
            .expect_err("bad threshold must be refused");
        assert!(!err
            .with_code(mrsky_audit::Code::ZeroCapacityCluster)
            .is_empty());
        let report = job
            .with_force(true)
            .run_checked(&data)
            .expect("forced run proceeds");
        assert_eq!(report.cardinality, 100);
    }

    #[test]
    fn with_tracer_records_the_full_run() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        let tracer = Tracer::in_memory();
        let report = SkylineJob::new(Algorithm::MrAngle, 4)
            .with_tracer(tracer.clone())
            .run(&data);
        let events = tracer.drain();
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");
        // the driver.run span wraps everything after the audit
        assert!(matches!(
            events.first().map(|e| &e.kind),
            Some(mrsky_trace::EventKind::SpanBegin { name }) if name == "driver.run"
        ));
        assert!(matches!(
            events.last().map(|e| &e.kind),
            Some(mrsky_trace::EventKind::SpanEnd { name }) if name == "driver.run"
        ));
        // traced partition skylines agree with the report
        let traced: usize = events
            .iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    mrsky_trace::EventKind::PartitionLocalSkyline { pruned: false, .. }
                )
            })
            .count();
        assert_eq!(traced, report.local_skylines.len());
    }

    #[test]
    fn sequential_forces_one_server() {
        let j = SkylineJob::new(Algorithm::Sequential, 16);
        assert_eq!(j.cluster.servers, 1);
    }

    #[test]
    fn reports_are_deterministic() {
        let data = generate_qws(&QwsConfig::new(300, 4));
        let a = SkylineJob::new(Algorithm::MrGrid, 4).run(&data);
        let b = SkylineJob::new(Algorithm::MrGrid, 4).run(&data);
        assert_eq!(a.global_skyline.len(), b.global_skyline.len());
        assert_eq!(a.metrics.sim_total, b.metrics.sim_total);
        assert_eq!(a.optimality, b.optimality);
    }

    #[test]
    fn angle_beats_dim_on_merge_candidates() {
        // The paper's central mechanism: angular partitions ship fewer,
        // better local-skyline candidates into the merge job. The broadcast
        // filter and witness pruning are switched off on both sides — they
        // compress candidates orthogonally to the partitioning scheme under
        // comparison.
        let data = generate_qws(&QwsConfig::new(4000, 4));
        let cfg = AlgoConfig {
            filter_k: Some(0),
            sector_prune: false,
            ..AlgoConfig::default()
        };
        let angle = SkylineJob::new(Algorithm::MrAngle, 8)
            .with_config(cfg.clone())
            .run(&data);
        let dim = SkylineJob::new(Algorithm::MrDim, 8)
            .with_config(cfg)
            .run(&data);
        assert!(
            angle.merge_candidates() < dim.merge_candidates(),
            "angle {} vs dim {}",
            angle.merge_candidates(),
            dim.merge_candidates()
        );
        assert!(
            angle.optimality > dim.optimality,
            "angle LSO {} vs dim LSO {}",
            angle.optimality,
            dim.optimality
        );
    }

    #[test]
    fn checkpointed_run_round_trips_and_resume_skips_everything() {
        let data = generate_qws(&QwsConfig::new(500, 3));
        let dir = std::env::temp_dir().join(format!("mrsky-drv-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = SkylineJob::new(Algorithm::MrAngle, 4).with_checkpoints(&dir);
        let first = base.run(&data);
        // Every partition that received points is checkpointed.
        let store = crate::checkpoint::CheckpointStore::open(&dir).unwrap();
        let completed = store.completed().unwrap();
        assert_eq!(completed.len(), first.local_skylines.len());
        // A resume of the *finished* run restores everything and recomputes
        // nothing — the trace proves it.
        let tracer = Tracer::in_memory();
        let resumed = base
            .clone()
            .with_resume(true)
            .with_tracer(tracer.clone())
            .run(&data);
        assert_eq!(
            first.global_skyline, resumed.global_skyline,
            "restored skyline must be bit-for-bit identical"
        );
        let events = tracer.drain();
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");
        let restored = events
            .iter()
            .filter(|e| matches!(e.kind, mrsky_trace::EventKind::CheckpointRestored { .. }))
            .count();
        let recomputed = events
            .iter()
            .filter(|e| matches!(e.kind, mrsky_trace::EventKind::PartitionLocalSkyline { .. }))
            .count();
        assert_eq!(restored, completed.len());
        assert_eq!(recomputed, 0, "a full resume recomputes nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_run_resumes_from_checkpoints_without_recompute() {
        let data = generate_qws(&QwsConfig::new(600, 3));
        let oracle = naive_skyline_ids(data.points());
        let dir = std::env::temp_dir().join(format!("mrsky-drv-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::in_memory();
        let mut plan = mrsky_chaos::FaultPlan::off();
        plan.kill_after_checkpoints = Some(4);
        let report = SkylineJob::new(Algorithm::MrAngle, 4)
            .with_chaos(plan)
            .with_checkpoints(&dir)
            .with_tracer(tracer.clone())
            .run_resilient(&data)
            .expect("audit clean");
        let ids: Vec<u64> = report
            .global_skyline
            .iter()
            .map(skyline_algos::Point::id)
            .collect();
        assert_eq!(ids, oracle, "crash + resume must not change the skyline");

        let events = tracer.drain();
        let problems = mrsky_trace::validate_events(&events);
        assert!(problems.is_empty(), "{problems:?}");
        // The crash actually happened and was recovered from.
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, mrsky_trace::EventKind::RunResumed { .. })));
        // The resumed run restored at least the kill budget's worth of
        // checkpoints and recomputed none of them (validated above, but
        // assert the restore volume explicitly).
        let resume_at = events
            .iter()
            .position(|e| matches!(e.kind, mrsky_trace::EventKind::RunResumed { .. }))
            .unwrap();
        let restored: std::collections::BTreeSet<u64> = events[resume_at..]
            .iter()
            .filter_map(|e| match e.kind {
                mrsky_trace::EventKind::CheckpointRestored { partition, .. } => Some(partition),
                _ => None,
            })
            .collect();
        let recomputed: std::collections::BTreeSet<u64> = events[resume_at..]
            .iter()
            .filter_map(|e| match e.kind {
                mrsky_trace::EventKind::PartitionLocalSkyline { partition, .. } => Some(partition),
                _ => None,
            })
            .collect();
        assert!(restored.len() >= 4, "kill budget was 4 writes");
        assert!(
            restored.is_disjoint(&recomputed),
            "restored partitions must not be recomputed: {restored:?} vs {recomputed:?}"
        );
        assert!(
            !recomputed.is_empty(),
            "the kill must leave unfinished partitions for the resume to compute"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_resilient_without_chaos_is_plain_run() {
        let data = generate_qws(&QwsConfig::new(200, 3));
        let plain = SkylineJob::new(Algorithm::MrDim, 2).run(&data);
        let resilient = SkylineJob::new(Algorithm::MrDim, 2)
            .run_resilient(&data)
            .expect("clean");
        assert_eq!(plain.global_skyline, resilient.global_skyline);
    }

    #[test]
    fn resume_refuses_a_mismatched_checkpoint_directory() {
        let data = generate_qws(&QwsConfig::new(200, 3));
        let other = generate_qws(&QwsConfig::new(200, 3).with_seed(7));
        let dir = std::env::temp_dir().join(format!("mrsky-drv-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SkylineJob::new(Algorithm::MrAngle, 4)
            .with_checkpoints(&dir)
            .run(&data);
        let resume_other = std::panic::catch_unwind(|| {
            SkylineJob::new(Algorithm::MrAngle, 4)
                .with_checkpoints(&dir)
                .with_resume(true)
                .run(&other)
        });
        assert!(
            resume_other.is_err(),
            "resuming against a different dataset must be refused"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_run_matches_clean_run_exactly() {
        let data = generate_qws(&QwsConfig::new(500, 4));
        let clean = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        for seed in [1u64, 2, 3] {
            let chaotic = SkylineJob::new(Algorithm::MrAngle, 4)
                .with_chaos(mrsky_chaos::FaultPlan::heavy(seed))
                .run(&data);
            assert_eq!(
                clean.global_skyline, chaotic.global_skyline,
                "seed {seed}: chaos changed the skyline"
            );
        }
    }

    #[test]
    fn all_reports_share_global_skyline() {
        let data = generate_qws(&QwsConfig::new(500, 5));
        let oracle = naive_skyline_ids(data.points());
        for alg in Algorithm::paper_trio() {
            let r = SkylineJob::new(alg, 4).run(&data);
            let ids: Vec<u64> = r
                .global_skyline
                .iter()
                .map(skyline_algos::Point::id)
                .collect();
            assert_eq!(ids, oracle, "{alg}");
        }
    }
}
