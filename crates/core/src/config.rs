//! Algorithm selection and tuning knobs.

use serde::{Deserialize, Serialize};

/// Which MapReduce skyline algorithm to run (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// One-dimensional range partitioning (Section III-A).
    MrDim,
    /// Multi-dimensional grid partitioning with dominated-cell pruning
    /// (Section III-B).
    MrGrid,
    /// The paper's angular partitioning (Section III-C, Algorithm 1).
    MrAngle,
    /// Hash partitioning — ablation baseline, not in the paper.
    MrRandom,
    /// Single-partition, single-server run through the same pipeline — the
    /// "conventional computer" baseline of the introduction.
    Sequential,
}

impl Algorithm {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::MrDim => "MR-Dim",
            Algorithm::MrGrid => "MR-Grid",
            Algorithm::MrAngle => "MR-Angle",
            Algorithm::MrRandom => "MR-Random",
            Algorithm::Sequential => "Sequential",
        }
    }

    /// The three algorithms the paper evaluates, in its plotting order.
    pub fn paper_trio() -> [Algorithm; 3] {
        [Algorithm::MrDim, Algorithm::MrGrid, Algorithm::MrAngle]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which kernel computes local (and global) skylines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalKernel {
    /// Block-Nested-Loops — the paper's choice ("for its simplicity").
    Bnl,
    /// Sort-Filter-Skyline (entropy-score presort, single pass).
    Sfs,
    /// SaLSa (min-coordinate presort with an early-stop watermark).
    Salsa,
    /// Divide-and-Conquer — ablation alternative.
    Dnc,
    /// Pick the cheapest kernel per partition at runtime from its
    /// cardinality, dimensionality, and a sampled correlation estimate
    /// (see `skyline_algos::select::KernelChoice`).
    Auto,
}

impl LocalKernel {
    /// Stable lowercase name, matching the CLI `--kernel` values and the
    /// kernel labels on trace events.
    pub fn name(self) -> &'static str {
        match self {
            LocalKernel::Bnl => "bnl",
            LocalKernel::Sfs => "sfs",
            LocalKernel::Salsa => "salsa",
            LocalKernel::Dnc => "dnc",
            LocalKernel::Auto => "auto",
        }
    }

    /// Parses a CLI `--kernel` value.
    pub fn parse(s: &str) -> Option<LocalKernel> {
        match s {
            "bnl" => Some(LocalKernel::Bnl),
            "sfs" => Some(LocalKernel::Sfs),
            "salsa" => Some(LocalKernel::Salsa),
            "dnc" => Some(LocalKernel::Dnc),
            "auto" => Some(LocalKernel::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for LocalKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs shared by all algorithms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoConfig {
    /// Partition-count policy: `partitions = partitions_per_node × servers`
    /// (the paper: "the number of partitions is set as (2 × number of
    /// nodes)"). Overridden by `partitions_override`.
    pub partitions_per_node: usize,
    /// Explicit partition count, if set.
    pub partitions_override: Option<usize>,
    /// BNL window bound; `None` = unbounded (fits the 1 GB-heap model for
    /// the paper's dataset sizes).
    pub bnl_window: Option<usize>,
    /// Local/global skyline kernel.
    pub kernel: LocalKernel,
    /// Enable MR-Grid's dominated-cell pruning (on by default; the ablation
    /// bench switches it off to measure its contribution).
    pub grid_pruning: bool,
    /// How many leading dimensions MR-Grid's lattice cuts; `0` means all.
    /// Default `2`, the paper's described "simplest case" grid (response
    /// time × cost). Cell pruning is only sound when all dimensions are cut,
    /// so values `< d` disable it implicitly.
    pub grid_dims: usize,
    /// Place MR-Angle's sector boundaries at empirical angle quantiles
    /// (load-balanced, the Vlachou et al. practice) instead of equal widths
    /// (the paper's Figure 3(c) drawing). Default `true`; the ablation bench
    /// measures the difference.
    pub angle_quantile: bool,
    /// Give MR-Dim and MR-Grid quantile-balanced splits (like MR-Angle's
    /// default) instead of the paper's equal-width ranges. Off by default —
    /// the paper's baselines are equal-width — and exercised by the fairness
    /// ablation: balanced baselines fix stragglers but still ship globally
    /// dominated candidates.
    pub baseline_quantile: bool,
    /// Hierarchical merge: when set, local-skyline candidates are first
    /// pre-merged by `fan_in`-way partial-merge jobs (parallel reducers)
    /// until at most `fan_in × threshold` candidates remain, and only then
    /// by the single-reducer merge of Algorithm 1. Attacks the serial-merge
    /// bottleneck the Figure-6 analysis exposes; not in the paper.
    pub merge_fan_in: Option<usize>,
    /// Run a map-side combiner in the merging job (each merge-map task
    /// pre-merges its slice of candidates before the single reducer). Not in
    /// the paper's Algorithm 1 — default `false` — but a strict improvement
    /// that parallelises the serial merge bottleneck; the ablation bench
    /// quantifies it.
    pub merge_combiner: bool,
    /// Filter-point broadcast: select this many strong candidates (the
    /// per-dimension minima plus smallest-L1 fillers) before the partitioning
    /// job, broadcast them to every map task, and drop any row one of them
    /// dominates before it is shuffled (the Ciaccia & Martinenghi
    /// "representative filter points" optimisation). `None` picks
    /// `max(2 × d, 8)` automatically; `Some(0)` disables filtering.
    pub filter_k: Option<usize>,
    /// Witness-based partition pruning for *all* geometric schemes: a
    /// partition whose best reachable corner (sector lower bounds tightened
    /// by observed per-partition minima) is strictly dominated by a filter
    /// point living elsewhere skips its local-skyline task entirely.
    /// Generalises MR-Grid's dominated-cell pruning to angular sectors.
    pub sector_prune: bool,
    /// Streaming, barrier-free global merge: local skylines feed an
    /// incremental merge as reduce tasks complete instead of waiting for the
    /// reduce barrier, and the simulated timeline credits the overlap. The
    /// final result is bit-identical either way; off by default to preserve
    /// the paper's two-phase cost model.
    pub streaming_merge: bool,
    /// Zero-copy block shuffle: same-key value blocks are concatenated by
    /// ownership transfer *during* the shuffle (no clone, no second concat
    /// in the reducer). Bit-identical output; on by default. The seed
    /// semantics — one value per routed block — are restored by switching
    /// this off.
    #[serde(default)]
    pub owned_shuffle: bool,
    /// Force the static chunked executor for real map/reduce execution
    /// instead of the work-stealing default. Off by default; the seed
    /// behaviour for skew comparisons and ablation benches.
    #[serde(default)]
    pub static_executor: bool,
    /// Reduce-input spill budget in (wire-accounted) bytes: any reduce
    /// input larger than this is spilled to disk right after the shuffle
    /// and reloaded just-in-time by its reduce task. `None` (default)
    /// keeps everything in memory.
    #[serde(default)]
    pub spill_budget_bytes: Option<u64>,
    /// Directory for spill files. `None` (default) uses a per-process
    /// directory under the system temp dir; set it explicitly when several
    /// jobs with identical names spill concurrently in one process.
    #[serde(default)]
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        Self {
            partitions_per_node: 2,
            partitions_override: None,
            bnl_window: None,
            kernel: LocalKernel::Bnl,
            grid_pruning: true,
            grid_dims: 2,
            angle_quantile: true,
            baseline_quantile: false,
            merge_fan_in: None,
            merge_combiner: false,
            filter_k: None,
            sector_prune: true,
            streaming_merge: false,
            owned_shuffle: true,
            static_executor: false,
            spill_budget_bytes: None,
            spill_dir: None,
        }
    }
}

impl AlgoConfig {
    /// Partition count for a cluster of `servers`.
    pub fn partitions_for(&self, servers: usize) -> usize {
        self.partitions_override
            .unwrap_or(self.partitions_per_node * servers)
            .max(1)
    }

    /// Resolved filter-point count for a `d`-dimensional dataset: the
    /// explicit `filter_k` if set, otherwise `max(8 × d, 16)`. `0` means
    /// filtering is off.
    pub fn filter_points_for(&self, dims: usize) -> usize {
        self.filter_k.unwrap_or_else(|| auto_filter_points(dims))
    }
}

/// Automatic filter-point count for a `dims`-dimensional dataset:
/// `max(8 × d, 16)` — every per-dimension minimum plus enough low-L1
/// fillers that the sweep halves an anti-correlated shuffle, while still
/// a trivially small broadcast (the sweep costs `k` vectorized dominance
/// tests per input row; going much past this saturates: the extra fillers
/// are dominated regions the first few already cover).
pub fn auto_filter_points(dims: usize) -> usize {
    (8 * dims).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Algorithm::MrDim.to_string(), "MR-Dim");
        assert_eq!(Algorithm::MrGrid.to_string(), "MR-Grid");
        assert_eq!(Algorithm::MrAngle.to_string(), "MR-Angle");
        assert_eq!(
            Algorithm::paper_trio().map(super::Algorithm::name),
            ["MR-Dim", "MR-Grid", "MR-Angle"]
        );
    }

    #[test]
    fn partition_policy_is_twice_nodes() {
        let cfg = AlgoConfig::default();
        assert_eq!(cfg.partitions_for(8), 16);
        assert_eq!(cfg.partitions_for(1), 2);
    }

    #[test]
    fn filter_k_defaults_scale_with_dimension() {
        let cfg = AlgoConfig::default();
        assert_eq!(cfg.filter_points_for(2), 16, "floor of 16");
        assert_eq!(cfg.filter_points_for(6), 48, "8 × d above the floor");
        let off = AlgoConfig {
            filter_k: Some(0),
            ..AlgoConfig::default()
        };
        assert_eq!(off.filter_points_for(6), 0, "explicit 0 disables");
        let fixed = AlgoConfig {
            filter_k: Some(3),
            ..AlgoConfig::default()
        };
        assert_eq!(fixed.filter_points_for(6), 3);
    }

    #[test]
    fn scale_knob_defaults() {
        let cfg = AlgoConfig::default();
        assert!(cfg.owned_shuffle, "owned shuffle defaults on");
        assert!(!cfg.static_executor, "work stealing is the default");
        assert_eq!(cfg.spill_budget_bytes, None, "spilling defaults off");
        assert_eq!(cfg.spill_dir, None);
    }

    #[test]
    fn partition_override_wins() {
        let cfg = AlgoConfig {
            partitions_override: Some(5),
            ..AlgoConfig::default()
        };
        assert_eq!(cfg.partitions_for(8), 5);
        let zero = AlgoConfig {
            partitions_override: Some(0),
            ..AlgoConfig::default()
        };
        assert_eq!(zero.partitions_for(8), 1, "clamped to at least 1");
    }
}
