//! Per-partition local-skyline checkpoints: crash a run, resume it, and
//! skip every partition whose local skyline already reached disk.
//!
//! Job 1 of the pipeline (partition → local skyline) is the expensive
//! phase, and its outputs are independent per partition — the natural
//! checkpoint grain. After each partition's reducer finishes, the pipeline
//! writes that partition's local skyline to a [`CheckpointStore`]; a
//! resumed run restores the finished partitions, filters their points out
//! of Job 1's input, and recomputes only what never completed. Restored
//! partitions are traced as `CheckpointRestored` (never as a recomputed
//! `PartitionLocalSkyline` — the trace validator rejects a stream showing
//! both for one partition).
//!
//! # Durability and exactness
//!
//! Writes are atomic at the file level (temp file + rename in the same
//! directory), so a crash mid-write leaves either the complete previous
//! state or a stray `.tmp` the store ignores. Coordinates are stored as
//! hex-encoded IEEE-754 bit patterns, so a restored skyline is *bit-for-bit*
//! the computed one — the crate's exactness-under-failure guarantee could
//! not survive a round-trip through decimal formatting.
//!
//! # Staleness protection
//!
//! A checkpoint directory is only valid for the exact run shape that wrote
//! it. The [`Manifest`] records a dataset fingerprint (FNV-1a over every
//! coordinate bit pattern), the algorithm, and the partition count;
//! [`CheckpointStore::validate`] refuses to resume against anything else.

use crate::json::JsonObject;
use qws_data::Dataset;
use skyline_algos::point::Point;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Identity of the run a checkpoint directory belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Algorithm name (e.g. `"MR-Angle"`).
    pub algorithm: String,
    /// [`dataset_fingerprint`] of the input.
    pub fingerprint: u64,
    /// Partition count of the fitted partitioner.
    pub partitions: u64,
}

/// FNV-1a over the dataset's name, shape, and every coordinate's bit
/// pattern — any change to the input invalidates old checkpoints.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in dataset.name.bytes() {
        fold(b);
    }
    for b in (dataset.len() as u64).to_le_bytes() {
        fold(b);
    }
    for b in (dataset.dim() as u64).to_le_bytes() {
        fold(b);
    }
    for p in dataset.points() {
        for b in p.id().to_le_bytes() {
            fold(b);
        }
        for c in p.coords() {
            for b in c.to_bits().to_le_bytes() {
                fold(b);
            }
        }
    }
    h
}

/// A directory of per-partition checkpoint files plus a manifest.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

const MANIFEST: &str = "manifest.json";

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn partition_path(&self, partition: u64) -> PathBuf {
        self.dir.join(format!("part-{partition:05}.ckpt"))
    }

    /// Writes `content` to `name` atomically: temp file in the same
    /// directory, flush, rename.
    fn write_atomic(&self, name: &str, content: &str) -> io::Result<()> {
        let target = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(content.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &target)
    }

    /// Records the identity of the run writing into this directory.
    pub fn write_manifest(&self, m: &Manifest) -> io::Result<()> {
        // The fingerprint spans the full u64 range; JSON numbers are f64,
        // so it goes through a hex string to survive the round-trip.
        let json = JsonObject::new()
            .string("algorithm", &m.algorithm)
            .string("fingerprint", &format!("{:016x}", m.fingerprint))
            .int("partitions", m.partitions)
            .finish();
        self.write_atomic(MANIFEST, &json)
    }

    /// Loads the manifest, `None` when the directory has none (fresh dir).
    pub fn manifest(&self) -> io::Result<Option<Manifest>> {
        let path = self.dir.join(MANIFEST);
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint manifest {}: {what}", path.display()),
            )
        };
        let value = mrsky_trace::json::parse(&text).map_err(|e| bad(&e.to_string()))?;
        let field = |key: &str| value.get(key).ok_or_else(|| bad(&format!("missing {key}")));
        Ok(Some(Manifest {
            algorithm: field("algorithm")?
                .as_str()
                .ok_or_else(|| bad("algorithm not a string"))?
                .to_string(),
            fingerprint: field("fingerprint")?
                .as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad("fingerprint not a hex string"))?,
            partitions: field("partitions")?
                .as_u64()
                .ok_or_else(|| bad("partitions not an integer"))?,
        }))
    }

    /// Refuses to resume from a directory written by a different run shape.
    /// A fresh (manifest-less) directory validates trivially.
    pub fn validate(&self, expected: &Manifest) -> io::Result<()> {
        match self.manifest()? {
            None => Ok(()),
            Some(found) if found == *expected => Ok(()),
            Some(found) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint directory {} was written by a different run: \
                     found {}/{:016x}/{} partitions, expected {}/{:016x}/{}",
                    self.dir.display(),
                    found.algorithm,
                    found.fingerprint,
                    found.partitions,
                    expected.algorithm,
                    expected.fingerprint,
                    expected.partitions,
                ),
            )),
        }
    }

    /// Durably records one partition's finished local skyline. `sky` may be
    /// empty (a pruned partition is finished work too).
    pub fn write_partition(&self, partition: u64, sky: &[Point]) -> io::Result<()> {
        let mut out = String::with_capacity(32 + sky.len() * 24);
        out.push_str(&format!("partition {partition}\n"));
        for p in sky {
            out.push_str(&format!("{:016x}", p.id()));
            for c in p.coords() {
                out.push_str(&format!(" {:016x}", c.to_bits()));
            }
            out.push('\n');
        }
        self.write_atomic(&format!("part-{partition:05}.ckpt"), &out)
    }

    /// Loads every completed partition's local skyline, keyed by partition
    /// id. Stray `.tmp` files (crash mid-write) are ignored.
    pub fn restore(&self) -> io::Result<BTreeMap<u64, Vec<Point>>> {
        let mut out = BTreeMap::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("part-") || !name.ends_with(".ckpt") {
                continue;
            }
            let path = entry.path();
            let (partition, sky) = parse_partition_file(&path, &fs::read_to_string(&path)?)?;
            out.insert(partition, sky);
        }
        Ok(out)
    }

    /// Partition ids with a completed checkpoint on disk.
    pub fn completed(&self) -> io::Result<Vec<u64>> {
        Ok(self.restore()?.into_keys().collect())
    }

    /// Deletes every checkpoint file and the manifest (start-fresh).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == MANIFEST
                || name.ends_with(".tmp")
                || (name.starts_with("part-") && name.ends_with(".ckpt"))
            {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// Convenience: does `partition` have a completed checkpoint?
    pub fn has_partition(&self, partition: u64) -> bool {
        self.partition_path(partition).exists()
    }
}

fn parse_partition_file(path: &Path, text: &str) -> io::Result<(u64, Vec<Point>)> {
    let bad = |what: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint {}: {what}", path.display()),
        )
    };
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty file".into()))?;
    let partition = header
        .strip_prefix("partition ")
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| bad(format!("bad header {header:?}")))?;
    let mut sky = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(' ');
        let id = fields
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| bad(format!("line {}: bad id", i + 2)))?;
        let mut coords = Vec::new();
        for f in fields {
            let bits = u64::from_str_radix(f, 16)
                .map_err(|_| bad(format!("line {}: bad coordinate {f:?}", i + 2)))?;
            coords.push(f64::from_bits(bits));
        }
        if coords.is_empty() {
            return Err(bad(format!("line {}: point has no coordinates", i + 2)));
        }
        sky.push(Point::new(id, coords));
    }
    Ok((partition, sky))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qws_data::{generate_qws, QwsConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mrsky-ckpt-{tag}-{}",
            std::process::id() // unique per test process; tags separate tests
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_points_bit_for_bit() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let pts = vec![
            Point::new(7, vec![0.1, 0.2, 0.30000000000000004]),
            Point::new(9, vec![1.0 / 3.0, f64::MIN_POSITIVE, 1e300]),
        ];
        store.write_partition(3, &pts).unwrap();
        store.write_partition(5, &[]).unwrap();
        let restored = store.restore().unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[&3], pts, "coordinates must round-trip exactly");
        assert!(restored[&5].is_empty(), "empty skyline is a valid state");
        assert!(store.has_partition(3));
        assert!(!store.has_partition(4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trip_and_validation() {
        let dir = temp_dir("manifest");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.manifest().unwrap().is_none());
        let m = Manifest {
            algorithm: "MR-Angle".into(),
            fingerprint: 0xdead_beef_0123_4567,
            partitions: 16,
        };
        store.write_manifest(&m).unwrap();
        assert_eq!(store.manifest().unwrap(), Some(m.clone()));
        store.validate(&m).unwrap();
        let other = Manifest {
            partitions: 8,
            ..m.clone()
        };
        let err = store.validate(&other).expect_err("shape mismatch");
        assert!(err.to_string().contains("different run"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_state() {
        let dir = temp_dir("clear");
        let store = CheckpointStore::open(&dir).unwrap();
        store
            .write_partition(1, &[Point::new(1, vec![0.5])])
            .unwrap();
        store
            .write_manifest(&Manifest {
                algorithm: "x".into(),
                fingerprint: 1,
                partitions: 1,
            })
            .unwrap();
        store.clear().unwrap();
        assert!(store.restore().unwrap().is_empty());
        assert!(store.manifest().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_sensitive_to_any_change() {
        let a = generate_qws(&QwsConfig::new(50, 3));
        let b = generate_qws(&QwsConfig::new(50, 3));
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        let c = generate_qws(&QwsConfig::new(51, 3));
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&c));
        let d = generate_qws(&QwsConfig::new(50, 3).with_seed(99));
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&d));
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let dir = temp_dir("tmpfiles");
        let store = CheckpointStore::open(&dir).unwrap();
        store
            .write_partition(0, &[Point::new(1, vec![0.5])])
            .unwrap();
        fs::write(dir.join("part-00001.ckpt.tmp"), "partition 1\ngarbage").unwrap();
        let restored = store.restore().unwrap();
        assert_eq!(restored.len(), 1, "half-written checkpoint is invisible");
        assert!(restored.contains_key(&0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_a_loud_error() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join("part-00002.ckpt"), "partition 2\nnot-hex").unwrap();
        let err = store.restore().expect_err("corrupt file must not parse");
        assert!(err.to_string().contains("bad id"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
