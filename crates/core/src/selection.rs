//! End-user QoS service selection — the paper's motivating use case.
//!
//! The introduction frames the whole system around one workflow: a request
//! hits a registry with thousands of functionally equivalent services, and
//! the platform must return the best QoS choices *in real time*. This module
//! packages that workflow: run a MapReduce skyline job to cut the registry
//! down to the non-dominated services, then rank them with the user's
//! attribute weights and optionally summarise with `k` representatives.

use crate::config::Algorithm;
use crate::driver::SkylineJob;
use crate::report::SkylineRunReport;
use qws_data::Dataset;
use skyline_algos::point::Point;
use skyline_algos::ranking::WeightedScore;
use skyline_algos::representative::{
    distance_based_representatives, max_dominance_representatives,
};

/// How to summarise a large skyline for presentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Summary {
    /// No summarisation: return the full ranked skyline.
    Full,
    /// `k` representatives by greedy dominance coverage.
    MaxDominance(usize),
    /// `k` representatives by greedy max-min diversity.
    Diverse(usize),
}

/// A selection request: how to weight the attributes and how many results
/// to return.
#[derive(Debug, Clone)]
pub struct SelectionRequest {
    /// Per-attribute weights (lower-is-better attributes, non-negative
    /// weights). Length must match the dataset dimensionality.
    pub weights: Vec<f64>,
    /// How many ranked services to return (`0` = all).
    pub top_k: usize,
    /// Optional skyline summarisation applied before ranking.
    pub summary: Summary,
}

impl SelectionRequest {
    /// Uniform weights, top-`k` results, no summarisation.
    pub fn top_k(dimensions: usize, k: usize) -> Self {
        Self {
            weights: vec![1.0; dimensions],
            top_k: k,
            summary: Summary::Full,
        }
    }
}

/// The outcome of a selection.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Ranked `(service, score)` pairs, best first.
    pub ranked: Vec<(Point, f64)>,
    /// Size of the full skyline before summarisation/truncation.
    pub skyline_size: usize,
    /// The underlying skyline run report (timings, optimality, …).
    pub report: SkylineRunReport,
}

/// A configured selector bound to an algorithm and cluster size.
#[derive(Clone)]
pub struct ServiceSelector {
    job: SkylineJob,
}

impl ServiceSelector {
    /// A selector using `algorithm` on `servers` simulated servers.
    pub fn new(algorithm: Algorithm, servers: usize) -> Self {
        Self {
            job: SkylineJob::new(algorithm, servers),
        }
    }

    /// A selector with a fully custom job.
    pub fn with_job(job: SkylineJob) -> Self {
        Self { job }
    }

    /// Runs the full pipeline: skyline → (summarise) → rank → truncate.
    ///
    /// # Panics
    ///
    /// Panics if the weight count does not match the dataset dimensionality.
    pub fn select(&self, dataset: &Dataset, request: &SelectionRequest) -> SelectionResult {
        assert_eq!(
            request.weights.len(),
            dataset.dim(),
            "one weight per attribute required"
        );
        let report = self.job.run(dataset);
        let skyline_size = report.global_skyline.len();

        let candidates: Vec<Point> = match request.summary {
            Summary::Full => report.global_skyline.clone(),
            Summary::MaxDominance(k) => {
                max_dominance_representatives(&report.global_skyline, dataset.points(), k)
            }
            Summary::Diverse(k) => distance_based_representatives(&report.global_skyline, k),
        };

        // Normalise over the whole registry so scores are comparable across
        // requests, not just within the skyline.
        let scorer = WeightedScore::fit(&request.weights, dataset.points());
        let mut ranked = scorer.rank(&candidates);
        if request.top_k > 0 {
            ranked.truncate(request.top_k);
        }
        SelectionResult {
            ranked,
            skyline_size,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qws_data::{generate_qws, QwsConfig};
    use skyline_algos::dominance::dominates;

    fn data() -> Dataset {
        generate_qws(&QwsConfig::new(500, 4))
    }

    #[test]
    fn top_k_returns_k_skyline_services() {
        let d = data();
        let selector = ServiceSelector::new(Algorithm::MrAngle, 4);
        let result = selector.select(&d, &SelectionRequest::top_k(4, 5));
        assert_eq!(result.ranked.len(), 5.min(result.skyline_size));
        // all results are non-dominated in the registry
        for (p, _) in &result.ranked {
            assert!(!d.points().iter().any(|q| dominates(q, p)));
        }
        // scores ascend
        for w in result.ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn weights_steer_the_winner() {
        let d = data();
        let selector = ServiceSelector::new(Algorithm::MrAngle, 4);
        let mut w_rt = SelectionRequest::top_k(4, 1);
        w_rt.weights = vec![10.0, 0.1, 0.1, 0.1]; // response time above all
        let mut w_price = SelectionRequest::top_k(4, 1);
        w_price.weights = vec![0.1, 10.0, 0.1, 0.1]; // price above all
        let best_rt = &selector.select(&d, &w_rt).ranked[0].0;
        let best_price = &selector.select(&d, &w_price).ranked[0].0;
        assert!(best_rt.coord(0) <= best_price.coord(0));
        assert!(best_price.coord(1) <= best_rt.coord(1));
    }

    #[test]
    fn summaries_shrink_the_candidate_set() {
        let d = data();
        let selector = ServiceSelector::new(Algorithm::MrGrid, 4);
        let full = selector.select(&d, &SelectionRequest::top_k(4, 0));
        let mut req = SelectionRequest::top_k(4, 0);
        req.summary = Summary::Diverse(3);
        let diverse = selector.select(&d, &req);
        assert_eq!(diverse.ranked.len(), 3.min(full.skyline_size));
        req.summary = Summary::MaxDominance(3);
        let covering = selector.select(&d, &req);
        assert!(covering.ranked.len() <= 3);
        assert_eq!(full.skyline_size, diverse.skyline_size);
    }

    #[test]
    fn zero_top_k_returns_everything() {
        let d = data();
        let selector = ServiceSelector::new(Algorithm::MrDim, 2);
        let result = selector.select(&d, &SelectionRequest::top_k(4, 0));
        assert_eq!(result.ranked.len(), result.skyline_size);
    }

    #[test]
    #[should_panic(expected = "one weight per attribute")]
    fn weight_mismatch_panics() {
        let d = data();
        let selector = ServiceSelector::new(Algorithm::MrAngle, 2);
        let _ = selector.select(&d, &SelectionRequest::top_k(3, 1));
    }
}
