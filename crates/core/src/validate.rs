//! Cross-checking MR results against an independent oracle.
//!
//! Used by integration tests and available to users who want belt-and-braces
//! verification of a production run: SFS shares no pipeline code with the
//! MapReduce path (different kernel, no partitioning), so agreement is
//! strong evidence the distributed result is exactly the true skyline.

use crate::report::SkylineRunReport;
use qws_data::Dataset;
use skyline_algos::dominance::dominates;
use skyline_algos::point::Point;
use skyline_algos::sfs::sfs_skyline;
use std::collections::HashSet;
use std::fmt;

/// Ways a report can fail validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The reported skyline misses a true skyline point.
    MissingPoint {
        /// Id of the missing service.
        id: u64,
    },
    /// The reported skyline contains a dominated point.
    DominatedPoint {
        /// Id of the dominated service.
        id: u64,
        /// Id of a dominating service.
        dominated_by: u64,
    },
    /// A reported skyline id does not exist in the dataset.
    UnknownPoint {
        /// The foreign id.
        id: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingPoint { id } => {
                write!(f, "true skyline point {id} missing from result")
            }
            ValidationError::DominatedPoint { id, dominated_by } => {
                write!(f, "result point {id} is dominated by {dominated_by}")
            }
            ValidationError::UnknownPoint { id } => {
                write!(f, "result point {id} does not exist in the dataset")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks `skyline` against the dataset from first principles (soundness:
/// no member dominated by any dataset point; completeness: every
/// non-member dominated by some member). O(n·|skyline|).
pub fn validate_against_oracle(
    skyline: &[Point],
    dataset: &Dataset,
) -> Result<(), ValidationError> {
    let ids: HashSet<u64> = skyline.iter().map(Point::id).collect();
    let known: HashSet<u64> = dataset.points().iter().map(Point::id).collect();
    for p in skyline {
        if !known.contains(&p.id()) {
            return Err(ValidationError::UnknownPoint { id: p.id() });
        }
    }
    // soundness
    for p in skyline {
        for q in dataset.points() {
            if dominates(q, p) {
                return Err(ValidationError::DominatedPoint {
                    id: p.id(),
                    dominated_by: q.id(),
                });
            }
        }
    }
    // completeness via the independent SFS oracle
    let oracle = sfs_skyline(dataset.points());
    for p in oracle {
        if !ids.contains(&p.id()) {
            return Err(ValidationError::MissingPoint { id: p.id() });
        }
    }
    Ok(())
}

/// Validates a full run report against its dataset.
pub fn validate_report(
    report: &SkylineRunReport,
    dataset: &Dataset,
) -> Result<(), ValidationError> {
    validate_against_oracle(&report.global_skyline, dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::driver::SkylineJob;
    use qws_data::{generate_qws, QwsConfig};

    #[test]
    fn valid_report_passes() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        assert_eq!(validate_report(&report, &data), Ok(()));
    }

    #[test]
    fn detects_missing_point() {
        let data = generate_qws(&QwsConfig::new(200, 2));
        let mut report = SkylineJob::new(Algorithm::MrDim, 2).run(&data);
        let removed = report.global_skyline.pop().expect("non-empty skyline");
        let err = validate_report(&report, &data).unwrap_err();
        assert_eq!(err, ValidationError::MissingPoint { id: removed.id() });
    }

    #[test]
    fn detects_dominated_point() {
        let data = generate_qws(&QwsConfig::new(200, 2));
        let mut report = SkylineJob::new(Algorithm::MrDim, 2).run(&data);
        // graft a clearly dominated dataset point into the result
        let sky_ids: HashSet<u64> = report.global_skyline.iter().map(Point::id).collect();
        let dominated = data
            .points()
            .iter()
            .find(|p| !sky_ids.contains(&p.id()))
            .expect("some non-skyline point exists")
            .clone();
        report.global_skyline.push(dominated);
        assert!(matches!(
            validate_report(&report, &data).unwrap_err(),
            ValidationError::DominatedPoint { .. }
        ));
    }

    #[test]
    fn detects_unknown_point() {
        let data = generate_qws(&QwsConfig::new(100, 2));
        let mut report = SkylineJob::new(Algorithm::MrDim, 2).run(&data);
        report
            .global_skyline
            .push(Point::new(9_999_999, vec![0.0, 0.0]));
        assert_eq!(
            validate_report(&report, &data).unwrap_err(),
            ValidationError::UnknownPoint { id: 9_999_999 }
        );
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(ValidationError::MissingPoint { id: 3 }
            .to_string()
            .contains("missing"));
        assert!(ValidationError::DominatedPoint {
            id: 1,
            dominated_by: 2
        }
        .to_string()
        .contains("dominated by 2"));
        assert!(ValidationError::UnknownPoint { id: 7 }
            .to_string()
            .contains("not exist"));
    }
}
