//! Minimal JSON emission for run reports.
//!
//! The figure harnesses print human-readable tables; downstream tooling
//! (plotting scripts, CI trend tracking) wants machine-readable output. The
//! workspace's dependency budget has `serde` but no serializer crate, so
//! this module hand-writes the small JSON subset the reports need: objects,
//! arrays, strings with escaping, finite numbers, booleans.

use crate::report::SkylineRunReport;
use std::fmt::Write;

/// Escapes a string for a JSON string literal (quotes, backslash, control
/// characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // shortest round-trip representation Rust offers
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for a flat-ish JSON object.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), number(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a pre-rendered JSON value (object, array…).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", escape(k));
        }
        out.push('}');
        out
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

impl SkylineRunReport {
    /// Serialises the report's summary quantities (not the full point sets)
    /// as a single JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("algorithm", self.algorithm.name())
            .string("dataset", &self.dataset)
            .int("cardinality", self.cardinality as u64)
            .int("dimensions", self.dimensions as u64)
            .int("servers", self.servers as u64)
            .int("partitions", self.partitions as u64)
            .int("skyline_size", self.global_skyline.len() as u64)
            .int("merge_candidates", self.merge_candidates() as u64)
            .int("pruned_partitions", self.pruned_partitions as u64)
            .int("rows_filtered", self.rows_filtered)
            .int(
                "sector_pruned_partitions",
                self.sector_pruned_partitions as u64,
            )
            .num("merge_overlap_seconds", self.merge_overlap_seconds)
            .num("optimality", self.optimality)
            .num("processing_time_s", self.processing_time())
            .num("map_time_s", self.map_time())
            .num("reduce_time_s", self.reduce_time())
            .num("wall_seconds", self.metrics.wall_seconds)
            .int("shuffle_bytes", self.metrics.shuffle_bytes)
            .int("map_work_units", self.metrics.map.work_units)
            .int("reduce_work_units", self.metrics.reduce.work_units)
            .raw(
                "load_balance",
                JsonObject::new()
                    .num("cv", self.load_balance.cv)
                    .int("max", self.load_balance.max as u64)
                    .int("min", self.load_balance.min as u64)
                    .int("empty", self.load_balance.empty as u64)
                    .finish(),
            )
            .raw(
                "skyline_ids",
                array(self.global_skyline.iter().map(|p| p.id().to_string())),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use crate::driver::SkylineJob;
    use qws_data::{generate_qws, QwsConfig};

    /// A tiny recursive-descent JSON syntax checker, used to validate the
    /// hand-rolled emitter without a parser dependency.
    fn check_json(s: &str) -> Result<(), String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    parse_string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at {pos}"));
                    }
                    *pos += 1;
                    parse_value(b, pos)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    parse_value(b, pos)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at {pos}")),
                    }
                }
            }
            Some(b'"') => parse_string(b, pos),
            Some(b't') => parse_lit(b, pos, "true"),
            Some(b'f') => parse_lit(b, pos, "false"),
            Some(b'n') => parse_lit(b, pos, "null"),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end".to_string()),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at {pos}"));
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => *pos += 2,
                c if c < 0x20 => return Err(format!("raw control char at {pos}")),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        if *pos == start {
            return Err(format!("expected number at {start}"));
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| ())
            .ok_or(format!("bad number at {start}"))
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_handles_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builder_emits_valid_json() {
        let json = JsonObject::new()
            .string("name", "He said \"hi\"\n")
            .num("pi", 3.25)
            .int("count", 42)
            .bool("ok", true)
            .raw("list", array(vec!["1".into(), "2".into()]))
            .finish();
        check_json(&json).unwrap();
        assert!(json.contains("\"count\":42"));
        assert!(json.contains("\"ok\":true"));
    }

    #[test]
    fn empty_object_and_array() {
        check_json(&JsonObject::new().finish()).unwrap();
        check_json(&array(Vec::<String>::new())).unwrap();
    }

    #[test]
    fn report_to_json_is_valid_and_complete() {
        let data = generate_qws(&QwsConfig::new(300, 3));
        let report = SkylineJob::new(Algorithm::MrAngle, 4).run(&data);
        let json = report.to_json();
        check_json(&json).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));
        for key in [
            "\"algorithm\":\"MR-Angle\"",
            "\"cardinality\":300",
            "\"skyline_size\":",
            "\"processing_time_s\":",
            "\"load_balance\":",
            "\"skyline_ids\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn validator_rejects_garbage() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\" 1}",
            "nope",
        ] {
            assert!(check_json(bad).is_err(), "{bad} accepted");
        }
    }
}
