//! Quarantine / dead-letter collection for corrupt input records.

/// One quarantined record with enough context to find it in the source.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QuarantinedRecord {
    /// Source name (file path, job name, …).
    pub source: String,
    /// 1-based line number within the source.
    pub line: u64,
    /// Human-readable reason the record was rejected.
    pub reason: String,
}

/// A bounded dead-letter collector: accepts quarantined records up to
/// `max_bad_records`, then reports the budget as blown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeadLetter {
    /// Maximum tolerated bad records; 0 means strict (first bad record
    /// blows the budget).
    pub max_bad_records: usize,
    records: Vec<QuarantinedRecord>,
}

impl DeadLetter {
    /// A collector tolerating up to `max_bad_records` quarantined rows.
    pub fn with_budget(max_bad_records: usize) -> Self {
        Self {
            max_bad_records,
            records: Vec::new(),
        }
    }

    /// Records one bad row. Returns `true` while the budget holds,
    /// `false` once this record exceeds it (the record is still logged
    /// so the report names the offender).
    pub fn push(&mut self, source: &str, line: u64, reason: impl Into<String>) -> bool {
        self.records.push(QuarantinedRecord {
            source: source.to_string(),
            line,
            reason: reason.into(),
        });
        self.records.len() <= self.max_bad_records
    }

    /// Number of quarantined records so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been quarantined.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the budget has been exceeded.
    pub fn over_budget(&self) -> bool {
        self.records.len() > self.max_bad_records
    }

    /// The quarantined records, in encounter order.
    pub fn records(&self) -> &[QuarantinedRecord] {
        &self.records
    }

    /// Renders a human-readable dead-letter report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "dead-letter report: {} record(s) quarantined (budget {})\n",
            self.records.len(),
            self.max_bad_records
        );
        for r in &self.records {
            let _ = writeln!(out, "  {}:{}: {}", r.source, r.line, r.reason);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_collector_is_within_budget() {
        let dl = DeadLetter::with_budget(0);
        assert!(dl.is_empty());
        assert!(!dl.over_budget());
    }

    #[test]
    fn budget_zero_rejects_first_record() {
        let mut dl = DeadLetter::with_budget(0);
        assert!(!dl.push("qws.txt", 12, "non-finite value"));
        assert!(dl.over_budget());
        assert_eq!(dl.len(), 1);
    }

    #[test]
    fn budget_holds_then_blows() {
        let mut dl = DeadLetter::with_budget(2);
        assert!(dl.push("f", 1, "a"));
        assert!(dl.push("f", 2, "b"));
        assert!(!dl.push("f", 3, "c"));
        assert!(dl.over_budget());
        assert_eq!(dl.records().len(), 3);
        assert_eq!(dl.records()[2].line, 3);
    }

    #[test]
    fn report_names_every_offender() {
        let mut dl = DeadLetter::with_budget(5);
        dl.push("qws.txt", 7, "expected 10 columns, got 3");
        dl.push("qws.txt", 9, "non-finite value in column 2");
        let report = dl.render();
        assert!(report.contains("qws.txt:7: expected 10 columns, got 3"));
        assert!(report.contains("qws.txt:9: non-finite value in column 2"));
        assert!(report.contains("2 record(s)"));
    }
}
