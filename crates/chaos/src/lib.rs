//! # mrsky-chaos — deterministic fault injection and recovery primitives
//!
//! The paper's premise is that MapReduce gives skyline queries fault
//! tolerance for free: failed tasks re-execute and the job still returns
//! the exact skyline. This crate supplies the machinery that lets the
//! rest of the workspace *prove* that, not just price it:
//!
//! - [`FaultPlan`] — a seeded, serializable plan that decides, as a pure
//!   function of `(site, scope, index, attempt)`, whether a fault fires
//!   and of which [`FaultKind`]. Same plan ⇒ same fault pattern, which is
//!   what makes chaos runs replayable (`mrsky chaos replay`) and
//!   property-testable (any plan within retry budgets must produce the
//!   bit-exact oracle skyline).
//! - [`BackoffPolicy`] / [`with_retries`] — bounded retries with
//!   deterministic exponential backoff, charged to the *simulated* clock
//!   so recovery cost shows up in run metrics without slowing tests.
//! - [`DeadLetter`] — a bounded quarantine for corrupt input records,
//!   backing `--max-bad-records` at ingest.
//! - [`KillSwitch`] — a crash simulator that kills the run after N
//!   checkpoint writes, for exercising checkpoint/resume paths.
//!
//! The convergence convention is shared with
//! `FailureConfig::max_attempts` in `mrsky-mapreduce`: the final attempt
//! of a plan's budget never faults, so any retry loop granted the plan's
//! `max_attempts` terminates successfully. Exhaustion is still reachable
//! (and traced as `TaskRetryExhausted`) when an executor runs with a
//! smaller budget than the plan assumes.

mod kill;
mod plan;
mod quarantine;
mod retry;

pub use kill::{KillSwitch, KILL_PAYLOAD};
pub use plan::{FaultKind, FaultPlan, FaultSite, SiteRule};
pub use quarantine::{DeadLetter, QuarantinedRecord};
pub use retry::{with_retries, with_retries_seeded, BackoffPolicy, RetryStats};
