//! Bounded retries with deterministic, sim-clock-aware backoff.

/// Deterministic exponential backoff: attempt `a` (0-based) waits
/// `base_seconds * factor^a` simulated seconds before retrying, spread
/// by up to `jitter` of itself when a caller supplies a seed.
///
/// Jitter is *seeded*, never sampled from ambient randomness — chaos
/// runs must be bit-reproducible, so the spread for `(seed, attempt)`
/// is a pure hash. `jitter = 0.0` (the default) reproduces the
/// historical unjittered schedule exactly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in simulated seconds.
    pub base_seconds: f64,
    /// Multiplier applied per additional failed attempt.
    pub factor: f64,
    /// Maximum fractional spread added on top of the exponential delay
    /// (0.0 = none, 0.5 = up to +50%). Applied only through
    /// [`BackoffPolicy::jittered_delay_seconds`], scaled by a unit draw
    /// that is a pure hash of `(seed, attempt)`.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_seconds: 0.05,
            factor: 2.0,
            jitter: 0.0,
        }
    }
}

impl BackoffPolicy {
    /// Simulated delay charged before retrying after failed attempt
    /// `attempt` (0-based), without jitter.
    pub fn delay_seconds(&self, attempt: u32) -> f64 {
        self.base_seconds * self.factor.powi(attempt.min(30) as i32)
    }

    /// Simulated delay for failed attempt `attempt`, spread by the
    /// seeded jitter draw: `delay * (1 + jitter * unit(seed, attempt))`
    /// with `unit` uniform in `[0, 1)`. The same `(seed, attempt)` pair
    /// always yields the same delay, so retry schedules replay exactly.
    pub fn jittered_delay_seconds(&self, attempt: u32, seed: u64) -> f64 {
        let delay = self.delay_seconds(attempt);
        if self.jitter <= 0.0 {
            return delay;
        }
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for x in [u64::from(attempt), 0x6a69_7474_6572] {
            h = (h ^ x).wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 29;
        }
        let unit = (h % (1 << 53)) as f64 / (1u64 << 53) as f64;
        delay * (1.0 + self.jitter * unit)
    }

    /// Total simulated delay charged across `failed_attempts` failures,
    /// without jitter.
    pub fn total_delay_seconds(&self, failed_attempts: u32) -> f64 {
        (0..failed_attempts).map(|a| self.delay_seconds(a)).sum()
    }
}

/// Outcome statistics for one retried operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryStats {
    /// Attempts executed, including the successful one (≥ 1 on success).
    pub attempts: u32,
    /// Total simulated backoff charged between attempts, in seconds.
    pub backoff_seconds: f64,
}

/// Runs `op` up to `max_attempts` times, charging `backoff` between
/// attempts, and returns the first success together with [`RetryStats`].
///
/// `op` receives the 0-based attempt number. On exhaustion the *last*
/// error is returned alongside the stats.
///
/// # Errors
///
/// The final attempt's error when every attempt fails.
pub fn with_retries<T, E>(
    max_attempts: u32,
    backoff: &BackoffPolicy,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> (Result<T, E>, RetryStats) {
    let budget = max_attempts.max(1);
    let mut stats = RetryStats::default();
    let mut attempt = 0;
    loop {
        stats.attempts = attempt + 1;
        match op(attempt) {
            Ok(v) => return (Ok(v), stats),
            Err(e) => {
                if attempt + 1 >= budget {
                    return (Err(e), stats);
                }
                stats.backoff_seconds += backoff.delay_seconds(attempt);
                attempt += 1;
            }
        }
    }
}

/// Like [`with_retries`], but charges the *seeded jittered* delay
/// between attempts so concurrent retry storms de-synchronize while the
/// schedule stays replayable from `(policy, seed)`.
///
/// # Errors
///
/// The final attempt's error when every attempt fails.
pub fn with_retries_seeded<T, E>(
    max_attempts: u32,
    backoff: &BackoffPolicy,
    seed: u64,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> (Result<T, E>, RetryStats) {
    let budget = max_attempts.max(1);
    let mut stats = RetryStats::default();
    let mut attempt = 0;
    loop {
        stats.attempts = attempt + 1;
        match op(attempt) {
            Ok(v) => return (Ok(v), stats),
            Err(e) => {
                if attempt + 1 >= budget {
                    return (Err(e), stats);
                }
                stats.backoff_seconds += backoff.jittered_delay_seconds(attempt, seed);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_charges_nothing() {
        let (res, stats) = with_retries(4, &BackoffPolicy::default(), |_| Ok::<_, ()>(7));
        assert_eq!(res, Ok(7));
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.backoff_seconds, 0.0);
    }

    #[test]
    fn retries_until_success_and_charges_backoff() {
        let backoff = BackoffPolicy {
            base_seconds: 1.0,
            factor: 2.0,
            jitter: 0.0,
        };
        let (res, stats) = with_retries(5, &backoff, |a| if a < 2 { Err("boom") } else { Ok(a) });
        assert_eq!(res, Ok(2));
        assert_eq!(stats.attempts, 3);
        // failed attempts 0 and 1: 1.0 + 2.0
        assert_eq!(stats.backoff_seconds, 3.0);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let (res, stats) = with_retries(3, &BackoffPolicy::default(), |a| {
            Err::<(), _>(format!("e{a}"))
        });
        assert_eq!(res, Err("e2".to_string()));
        assert_eq!(stats.attempts, 3);
    }

    #[test]
    fn zero_budget_still_runs_once() {
        let mut calls = 0;
        let (res, stats) = with_retries(0, &BackoffPolicy::default(), |_| {
            calls += 1;
            Ok::<_, ()>(())
        });
        assert_eq!(res, Ok(()));
        assert_eq!(calls, 1);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let b = BackoffPolicy {
            base_seconds: 0.5,
            factor: 2.0,
            jitter: 0.0,
        };
        assert_eq!(b.delay_seconds(0), 0.5);
        assert_eq!(b.delay_seconds(1), 1.0);
        assert_eq!(b.delay_seconds(3), 4.0);
        assert_eq!(b.total_delay_seconds(3), 3.5);
        // exponent is clamped so huge attempt counts don't overflow to inf
        assert!(b.delay_seconds(200).is_finite());
    }

    #[test]
    fn jitter_is_seeded_deterministic_and_bounded() {
        let b = BackoffPolicy {
            base_seconds: 1.0,
            factor: 2.0,
            jitter: 0.5,
        };
        for attempt in 0..8 {
            for seed in [0u64, 1, 42, u64::MAX] {
                let d = b.jittered_delay_seconds(attempt, seed);
                assert_eq!(d, b.jittered_delay_seconds(attempt, seed), "replayable");
                let plain = b.delay_seconds(attempt);
                assert!(d >= plain && d < plain * 1.5, "seed {seed}: {d} vs {plain}");
            }
        }
        // different seeds spread differently somewhere in the schedule
        let spread: Vec<f64> = (0..16).map(|s| b.jittered_delay_seconds(0, s)).collect();
        assert!(spread.windows(2).any(|w| w[0] != w[1]), "{spread:?}");
    }

    #[test]
    fn zero_jitter_matches_unjittered_schedule() {
        let b = BackoffPolicy::default();
        for attempt in 0..6 {
            assert_eq!(
                b.jittered_delay_seconds(attempt, 99),
                b.delay_seconds(attempt)
            );
        }
    }

    #[test]
    fn seeded_retries_charge_jittered_backoff() {
        let b = BackoffPolicy {
            base_seconds: 1.0,
            factor: 2.0,
            jitter: 0.25,
        };
        let (res, stats) = with_retries_seeded(5, &b, 7, |a| if a < 2 { Err(()) } else { Ok(a) });
        assert_eq!(res, Ok(2));
        let expect = b.jittered_delay_seconds(0, 7) + b.jittered_delay_seconds(1, 7);
        assert_eq!(stats.backoff_seconds, expect);
        // and the whole thing replays bit-identically
        let (_, again) = with_retries_seeded(5, &b, 7, |a| if a < 2 { Err(()) } else { Ok(a) });
        assert_eq!(again, stats);
    }
}
