//! Bounded retries with deterministic, sim-clock-aware backoff.

/// Deterministic exponential backoff: attempt `a` (0-based) waits
/// `base_seconds * factor^a` simulated seconds before retrying.
///
/// There is no jitter on purpose — chaos runs must be bit-reproducible,
/// and the sim clock makes thundering herds a non-issue.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in simulated seconds.
    pub base_seconds: f64,
    /// Multiplier applied per additional failed attempt.
    pub factor: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_seconds: 0.05,
            factor: 2.0,
        }
    }
}

impl BackoffPolicy {
    /// Simulated delay charged before retrying after failed attempt
    /// `attempt` (0-based).
    pub fn delay_seconds(&self, attempt: u32) -> f64 {
        self.base_seconds * self.factor.powi(attempt.min(30) as i32)
    }

    /// Total simulated delay charged across `failed_attempts` failures.
    pub fn total_delay_seconds(&self, failed_attempts: u32) -> f64 {
        (0..failed_attempts).map(|a| self.delay_seconds(a)).sum()
    }
}

/// Outcome statistics for one retried operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryStats {
    /// Attempts executed, including the successful one (≥ 1 on success).
    pub attempts: u32,
    /// Total simulated backoff charged between attempts, in seconds.
    pub backoff_seconds: f64,
}

/// Runs `op` up to `max_attempts` times, charging `backoff` between
/// attempts, and returns the first success together with [`RetryStats`].
///
/// `op` receives the 0-based attempt number. On exhaustion the *last*
/// error is returned alongside the stats.
///
/// # Errors
///
/// The final attempt's error when every attempt fails.
pub fn with_retries<T, E>(
    max_attempts: u32,
    backoff: &BackoffPolicy,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> (Result<T, E>, RetryStats) {
    let budget = max_attempts.max(1);
    let mut stats = RetryStats::default();
    let mut attempt = 0;
    loop {
        stats.attempts = attempt + 1;
        match op(attempt) {
            Ok(v) => return (Ok(v), stats),
            Err(e) => {
                if attempt + 1 >= budget {
                    return (Err(e), stats);
                }
                stats.backoff_seconds += backoff.delay_seconds(attempt);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_charges_nothing() {
        let (res, stats) = with_retries(4, &BackoffPolicy::default(), |_| Ok::<_, ()>(7));
        assert_eq!(res, Ok(7));
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.backoff_seconds, 0.0);
    }

    #[test]
    fn retries_until_success_and_charges_backoff() {
        let backoff = BackoffPolicy {
            base_seconds: 1.0,
            factor: 2.0,
        };
        let (res, stats) = with_retries(5, &backoff, |a| if a < 2 { Err("boom") } else { Ok(a) });
        assert_eq!(res, Ok(2));
        assert_eq!(stats.attempts, 3);
        // failed attempts 0 and 1: 1.0 + 2.0
        assert_eq!(stats.backoff_seconds, 3.0);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let (res, stats) = with_retries(3, &BackoffPolicy::default(), |a| {
            Err::<(), _>(format!("e{a}"))
        });
        assert_eq!(res, Err("e2".to_string()));
        assert_eq!(stats.attempts, 3);
    }

    #[test]
    fn zero_budget_still_runs_once() {
        let mut calls = 0;
        let (res, stats) = with_retries(0, &BackoffPolicy::default(), |_| {
            calls += 1;
            Ok::<_, ()>(())
        });
        assert_eq!(res, Ok(()));
        assert_eq!(calls, 1);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let b = BackoffPolicy {
            base_seconds: 0.5,
            factor: 2.0,
        };
        assert_eq!(b.delay_seconds(0), 0.5);
        assert_eq!(b.delay_seconds(1), 1.0);
        assert_eq!(b.delay_seconds(3), 4.0);
        assert_eq!(b.total_delay_seconds(3), 3.5);
        // exponent is clamped so huge attempt counts don't overflow to inf
        assert!(b.delay_seconds(200).is_finite());
    }
}
