//! A crash simulator: kill the run after N checkpoint writes.
//!
//! [`FaultPlan::kill_after_checkpoints`](crate::FaultPlan) asks for the
//! driver to "die" partway through a run, after some amount of durable
//! progress has been made. The [`KillSwitch`] is the mechanism: the
//! checkpoint writer calls [`KillSwitch::record_write`] after every durable
//! write, and once the budget is crossed the switch *fires* — the writing
//! task panics with [`KILL_PAYLOAD`], and every task that starts afterwards
//! aborts immediately (see [`KillSwitch::should_abort`]), so work past the
//! kill point is genuinely lost exactly as it would be in a real crash.
//!
//! A resilient driver catches the unwind, checks [`KillSwitch::has_fired`]
//! to distinguish the simulated crash from a real bug, calls
//! [`KillSwitch::disarm`], and re-runs with resume enabled. The switch
//! fires at most once per arm, so the retry always completes.

use mrsky_model::sync::{AtomicBool, AtomicU64, Ordering};

/// Panic payload used for the simulated crash; resilient drivers match on
/// [`KillSwitch::has_fired`] rather than this text (thread pools may mangle
/// payloads in flight), but the message makes crash logs self-explanatory.
pub const KILL_PAYLOAD: &str = "mrsky-chaos: kill switch tripped (simulated crash)";

/// Fires once after a configured number of durable writes, then aborts all
/// subsequent work until disarmed. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct KillSwitch {
    after: u64,
    written: AtomicU64,
    fired: AtomicBool,
    disarmed: AtomicBool,
}

impl KillSwitch {
    /// A switch that fires when the `after`-th write is recorded.
    /// `after = 0` fires on the first write.
    pub fn new(after: u64) -> Self {
        Self {
            after,
            written: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            disarmed: AtomicBool::new(false),
        }
    }

    /// Records one durable write. Returns `true` exactly once — on the call
    /// that crosses the budget while the switch is still armed — and the
    /// caller must then simulate the crash (panic with [`KILL_PAYLOAD`]).
    pub fn record_write(&self) -> bool {
        let count = self.written.fetch_add(1, Ordering::SeqCst) + 1;
        if count > self.after && !self.disarmed.load(Ordering::SeqCst) {
            return !self.fired.swap(true, Ordering::SeqCst);
        }
        false
    }

    /// True while the simulated crash is in progress: tasks observing this
    /// must abort without doing (or persisting) any work.
    pub fn should_abort(&self) -> bool {
        self.fired.load(Ordering::SeqCst) && !self.disarmed.load(Ordering::SeqCst)
    }

    /// True once the switch has ever fired, even after [`disarm`].
    ///
    /// [`disarm`]: KillSwitch::disarm
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Durable writes recorded so far.
    pub fn writes(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// Disarms the switch: it will never fire (or abort work) again. Called
    /// by the resilient driver before the resume run.
    pub fn disarm(&self) {
        self.disarmed.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_budget() {
        let k = KillSwitch::new(2);
        assert!(!k.record_write(), "write 1 of 2");
        assert!(!k.should_abort());
        assert!(!k.record_write(), "write 2 of 2");
        assert!(k.record_write(), "write 3 crosses the budget");
        assert!(k.should_abort());
        assert!(k.has_fired());
        assert!(!k.record_write(), "only the crossing call fires");
        assert_eq!(k.writes(), 4);
    }

    #[test]
    fn zero_budget_fires_on_first_write() {
        let k = KillSwitch::new(0);
        assert!(k.record_write());
    }

    #[test]
    fn disarm_silences_abort_but_remembers_firing() {
        let k = KillSwitch::new(0);
        assert!(k.record_write());
        k.disarm();
        assert!(!k.should_abort(), "disarmed switch lets work proceed");
        assert!(k.has_fired(), "history survives disarming");
        assert!(!k.record_write(), "disarmed switch never fires again");
    }

    #[test]
    fn disarmed_before_budget_never_fires() {
        let k = KillSwitch::new(1);
        k.disarm();
        assert!(!k.record_write());
        assert!(!k.record_write());
        assert!(!k.has_fired());
    }
}
