//! The seeded fault plan: *which* fault fires *where* is a pure function.
//!
//! A [`FaultPlan`] names injection sites across the execution stack
//! ([`FaultSite`]) and, per site, the kind of fault to inject
//! ([`FaultKind`]) at a given permille rate. Whether attempt `a` of
//! operation `index` at site `s` in scope `scope` faults is a pure hash of
//! `(seed, s, scope, index, a)` — the same plan always produces the same
//! fault pattern, which is what makes the chaos property suite and the
//! checked-in regression corpus possible.
//!
//! Convergence convention (shared with
//! `FailureConfig::max_attempts` in the runtime): **the final attempt of
//! any budget never faults**, so a bounded retry loop always terminates
//! with a success as long as the caller grants the plan's `max_attempts`.
//! Plans constructed with a larger `max_attempts` than the executing
//! retry budget *can* exhaust it — that is the
//! `TaskRetryExhausted` path, and it is reachable on purpose.

use crate::retry::BackoffPolicy;
use mrsky_trace::json::{self, JsonValue};

/// A named fault-injection site in the execution stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultSite {
    /// A chunk task inside `skyline::parallel` (worker thread kernel run).
    ParallelChunk,
    /// A simulated-DFS block read feeding a map task.
    DfsRead,
    /// A map task attempt (fails mid-map, discarding partial output).
    MapTask,
    /// A reduce-side shuffle fetch of one map-output segment.
    ShuffleFetch,
    /// One row of dataset ingest (poisoned to a non-finite value).
    IngestRow,
    /// One skyline-service mutation (insert/delete) on the request path.
    ServeMutation,
    /// One skyline-service snapshot query on the request path.
    ServeQuery,
}

impl FaultSite {
    /// All sites, for profile construction and property generators.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::ParallelChunk,
        FaultSite::DfsRead,
        FaultSite::MapTask,
        FaultSite::ShuffleFetch,
        FaultSite::IngestRow,
        FaultSite::ServeMutation,
        FaultSite::ServeQuery,
    ];

    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::ParallelChunk => "parallel-chunk",
            FaultSite::DfsRead => "dfs-read",
            FaultSite::MapTask => "map-task",
            FaultSite::ShuffleFetch => "shuffle-fetch",
            FaultSite::IngestRow => "ingest-row",
            FaultSite::ServeMutation => "serve-mutation",
            FaultSite::ServeQuery => "serve-query",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.as_str() == s)
    }

    fn tag(self) -> u64 {
        match self {
            FaultSite::ParallelChunk => 0x6368_756e,
            FaultSite::DfsRead => 0x6466_7372,
            FaultSite::MapTask => 0x6d61_7074,
            FaultSite::ShuffleFetch => 0x7368_6666,
            FaultSite::IngestRow => 0x696e_6772,
            FaultSite::ServeMutation => 0x7376_6d75,
            FaultSite::ServeQuery => 0x7376_7175,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// The operation panics (worker thread unwind).
    Panic,
    /// The operation returns a transient error.
    TransientError,
    /// A record/segment is silently dropped and must be re-fetched.
    DropRecord,
    /// A record/segment arrives corrupted and must be re-fetched.
    CorruptRecord,
    /// An input row is poisoned (non-finite value) and must be quarantined.
    PoisonRow,
}

impl FaultKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::TransientError => "transient-error",
            FaultKind::DropRecord => "drop-record",
            FaultKind::CorruptRecord => "corrupt-record",
            FaultKind::PoisonRow => "poison-row",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        [
            FaultKind::Panic,
            FaultKind::TransientError,
            FaultKind::DropRecord,
            FaultKind::CorruptRecord,
            FaultKind::PoisonRow,
        ]
        .into_iter()
        .find(|k| k.as_str() == s)
    }

    fn tag(self) -> u64 {
        match self {
            FaultKind::Panic => 0x70,
            FaultKind::TransientError => 0x74,
            FaultKind::DropRecord => 0x64,
            FaultKind::CorruptRecord => 0x63,
            FaultKind::PoisonRow => 0x72,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One injection rule: at `site`, inject `kind` on roughly
/// `permille`/1000 of attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SiteRule {
    /// Where to inject.
    pub site: FaultSite,
    /// What to inject.
    pub kind: FaultKind,
    /// Injection rate in permille (0–999).
    pub permille: u32,
}

/// A deterministic, seeded, serializable fault plan.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed folded into every injection decision.
    pub seed: u64,
    /// Retry budget the plan converges within: the decision function never
    /// injects when `attempt + 1 >= max_attempts`.
    pub max_attempts: u32,
    /// Deterministic backoff between attempts (charged to the sim clock).
    pub backoff: BackoffPolicy,
    /// Active injection rules; the first matching rule that draws a fault
    /// wins.
    pub rules: Vec<SiteRule>,
    /// If set, the driver kills the run after this many partition
    /// checkpoints have been written (the `--resume` scenario).
    pub kill_after_checkpoints: Option<u64>,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn off() -> Self {
        Self {
            seed: 0,
            max_attempts: 4,
            backoff: BackoffPolicy::default(),
            rules: Vec::new(),
            kill_after_checkpoints: None,
        }
    }

    /// A light chaos profile: ~10% of attempts fault at every site, mixed
    /// kinds, well within the default 4-attempt budget.
    pub fn light(seed: u64) -> Self {
        Self {
            seed,
            rules: vec![
                SiteRule {
                    site: FaultSite::ParallelChunk,
                    kind: FaultKind::TransientError,
                    permille: 80,
                },
                SiteRule {
                    site: FaultSite::ParallelChunk,
                    kind: FaultKind::Panic,
                    permille: 40,
                },
                SiteRule {
                    site: FaultSite::DfsRead,
                    kind: FaultKind::TransientError,
                    permille: 100,
                },
                SiteRule {
                    site: FaultSite::MapTask,
                    kind: FaultKind::Panic,
                    permille: 60,
                },
                SiteRule {
                    site: FaultSite::ShuffleFetch,
                    kind: FaultKind::DropRecord,
                    permille: 60,
                },
                SiteRule {
                    site: FaultSite::ShuffleFetch,
                    kind: FaultKind::CorruptRecord,
                    permille: 60,
                },
            ],
            ..Self::off()
        }
    }

    /// A heavy chaos profile: roughly a third of attempts fault, every
    /// site active including row poisoning at ingest.
    pub fn heavy(seed: u64) -> Self {
        let mut rules = Vec::new();
        for site in FaultSite::ALL {
            let kinds: &[FaultKind] = match site {
                FaultSite::ParallelChunk => &[FaultKind::Panic, FaultKind::TransientError],
                FaultSite::DfsRead => &[FaultKind::TransientError],
                FaultSite::MapTask => &[FaultKind::Panic, FaultKind::TransientError],
                FaultSite::ShuffleFetch => &[FaultKind::DropRecord, FaultKind::CorruptRecord],
                FaultSite::IngestRow => &[FaultKind::PoisonRow],
                FaultSite::ServeMutation => &[FaultKind::TransientError, FaultKind::PoisonRow],
                FaultSite::ServeQuery => &[FaultKind::TransientError],
            };
            for &kind in kinds {
                rules.push(SiteRule {
                    site,
                    kind,
                    permille: 350 / kinds.len() as u32,
                });
            }
        }
        Self {
            seed,
            max_attempts: 6,
            rules,
            ..Self::off()
        }
    }

    /// Looks up a named profile (`off`, `light`, `heavy`).
    pub fn profile(name: &str, seed: u64) -> Option<Self> {
        match name {
            "off" => Some(Self::off()),
            "light" => Some(Self::light(seed)),
            "heavy" => Some(Self::heavy(seed)),
            _ => None,
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.rules.iter().any(|r| r.permille > 0) || self.kill_after_checkpoints.is_some()
    }

    /// Deterministically decides whether attempt `attempt` of operation
    /// `index` at `site` (within `scope`, e.g. a job or file name) faults,
    /// and with which kind.
    ///
    /// The final attempt of the plan's budget never faults, so retry loops
    /// granted `max_attempts` tries always converge.
    pub fn decide(
        &self,
        site: FaultSite,
        scope: &str,
        index: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        for rule in &self.rules {
            if rule.site != site || rule.permille == 0 {
                continue;
            }
            let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15 ^ site.tag();
            for b in scope.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            for x in [rule.kind.tag(), index, u64::from(attempt)] {
                h = (h ^ x).wrapping_mul(0x1000_0000_01b3);
                h ^= h >> 29;
            }
            if (h % 1000) < u64::from(rule.permille) {
                return Some(rule.kind);
            }
        }
        None
    }

    /// Serializes the plan as a single JSON object (reproducible chaos
    /// runs: `mrsky chaos plan` writes this, `mrsky chaos replay` reads
    /// it).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"seed\":{},\"max_attempts\":{},\"backoff_base\":{},\"backoff_factor\":{},\
             \"backoff_jitter\":{},",
            self.seed,
            self.max_attempts,
            json::number(self.backoff.base_seconds),
            json::number(self.backoff.factor),
            json::number(self.backoff.jitter),
        );
        match self.kill_after_checkpoints {
            Some(n) => {
                let _ = write!(out, "\"kill_after_checkpoints\":{n},");
            }
            None => out.push_str("\"kill_after_checkpoints\":null,"),
        }
        out.push_str("\"rules\":[");
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"site\":\"{}\",\"kind\":\"{}\",\"permille\":{}}}",
                rule.site, rule.kind, rule.permille
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses a plan produced by [`FaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first schema violation found.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let req_u64 = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        };
        let req_f64 = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
        };
        let seed = req_u64("seed")?;
        let max_attempts = u32::try_from(req_u64("max_attempts")?)
            .map_err(|_| "max_attempts out of range".to_string())?;
        // `backoff_jitter` is optional so plans written before the field
        // existed still parse (they ran unjittered, which 0.0 preserves).
        let jitter = match value.get("backoff_jitter") {
            None | Some(JsonValue::Null) => 0.0,
            Some(v) => v.as_f64().ok_or("backoff_jitter must be a number")?,
        };
        if !(0.0..1.0).contains(&jitter) {
            return Err(format!("backoff_jitter {jitter} outside [0, 1)"));
        }
        let backoff = BackoffPolicy {
            base_seconds: req_f64("backoff_base")?,
            factor: req_f64("backoff_factor")?,
            jitter,
        };
        let kill_after_checkpoints = match value.get("kill_after_checkpoints") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("kill_after_checkpoints must be an integer or null")?,
            ),
        };
        let rules_value = value.get("rules").ok_or("missing field `rules`")?;
        let JsonValue::Arr(items) = rules_value else {
            return Err("`rules` must be an array".into());
        };
        let mut rules = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let site_name = item
                .get("site")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("rule {i}: missing `site`"))?;
            let site = FaultSite::parse(site_name)
                .ok_or_else(|| format!("rule {i}: unknown site `{site_name}`"))?;
            let kind_name = item
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("rule {i}: missing `kind`"))?;
            let kind = FaultKind::parse(kind_name)
                .ok_or_else(|| format!("rule {i}: unknown kind `{kind_name}`"))?;
            let permille = item
                .get("permille")
                .and_then(JsonValue::as_u64)
                .and_then(|p| u32::try_from(p).ok())
                .ok_or_else(|| format!("rule {i}: missing or bad `permille`"))?;
            if permille >= 1000 {
                return Err(format!("rule {i}: permille {permille} can never converge"));
            }
            rules.push(SiteRule {
                site,
                kind,
                permille,
            });
        }
        Ok(FaultPlan {
            seed,
            max_attempts,
            backoff,
            rules,
            kill_after_checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_never_injects() {
        let plan = FaultPlan::off();
        for site in FaultSite::ALL {
            for i in 0..200 {
                assert_eq!(plan.decide(site, "scope", i, 0), None);
            }
        }
        assert!(!plan.is_active());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::heavy(42);
        for site in FaultSite::ALL {
            for i in 0..50 {
                for a in 0..plan.max_attempts {
                    assert_eq!(
                        plan.decide(site, "job-x", i, a),
                        plan.decide(site, "job-x", i, a)
                    );
                }
            }
        }
    }

    #[test]
    fn final_attempt_never_faults() {
        let plan = FaultPlan {
            rules: vec![SiteRule {
                site: FaultSite::ParallelChunk,
                kind: FaultKind::Panic,
                permille: 999,
            }],
            max_attempts: 3,
            ..FaultPlan::off()
        };
        for i in 0..500 {
            assert_eq!(plan.decide(FaultSite::ParallelChunk, "s", i, 2), None);
        }
        // earlier attempts do fault at this rate
        assert!((0..500).any(|i| plan.decide(FaultSite::ParallelChunk, "s", i, 0).is_some()));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            rules: vec![SiteRule {
                site: FaultSite::ShuffleFetch,
                kind: FaultKind::DropRecord,
                permille: 300,
            }],
            max_attempts: 4,
            ..FaultPlan::off()
        };
        let hits = (0..10_000)
            .filter(|&i| plan.decide(FaultSite::ShuffleFetch, "j", i, 0).is_some())
            .count();
        assert!((2400..3600).contains(&hits), "got {hits}");
    }

    #[test]
    fn sites_and_scopes_draw_independently() {
        let plan = FaultPlan::heavy(7);
        let a: Vec<bool> = (0..200)
            .map(|i| plan.decide(FaultSite::MapTask, "j1", i, 0).is_some())
            .collect();
        let b: Vec<bool> = (0..200)
            .map(|i| plan.decide(FaultSite::MapTask, "j2", i, 0).is_some())
            .collect();
        let c: Vec<bool> = (0..200)
            .map(|i| plan.decide(FaultSite::DfsRead, "j1", i, 0).is_some())
            .collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seeds_change_the_pattern() {
        let p1 = FaultPlan::light(1);
        let p2 = FaultPlan::light(2);
        let pat = |p: &FaultPlan| {
            (0..300)
                .map(|i| p.decide(FaultSite::ParallelChunk, "s", i, 0).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(pat(&p1), pat(&p2));
    }

    #[test]
    fn json_round_trips() {
        for plan in [
            FaultPlan::off(),
            FaultPlan::light(99),
            FaultPlan::heavy(123),
            FaultPlan {
                kill_after_checkpoints: Some(3),
                ..FaultPlan::light(5)
            },
        ] {
            let text = plan.to_json();
            let back = FaultPlan::from_json(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, plan, "{text}");
        }
    }

    #[test]
    fn jitter_round_trips_and_legacy_plans_parse() {
        let mut plan = FaultPlan::light(3);
        plan.backoff.jitter = 0.25;
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        // plans serialized before `backoff_jitter` existed default to 0.0
        let legacy = FaultPlan::from_json(
            r#"{"seed":1,"max_attempts":4,"backoff_base":0.1,"backoff_factor":2.0,"rules":[]}"#,
        )
        .unwrap();
        assert_eq!(legacy.backoff.jitter, 0.0);
        assert!(FaultPlan::from_json(
            r#"{"seed":1,"max_attempts":4,"backoff_base":0.1,"backoff_factor":2.0,"backoff_jitter":1.5,"rules":[]}"#,
        )
        .is_err());
    }

    #[test]
    fn serve_sites_draw_independently_of_batch_sites() {
        let plan = FaultPlan::heavy(11);
        let m: Vec<_> = (0..200)
            .map(|i| plan.decide(FaultSite::ServeMutation, "tenant-a", i, 0))
            .collect();
        let q: Vec<_> = (0..200)
            .map(|i| plan.decide(FaultSite::ServeQuery, "tenant-a", i, 0))
            .collect();
        assert!(m.iter().any(Option::is_some));
        assert!(q.iter().any(Option::is_some));
        assert_ne!(m, q);
        // growing ALL must not perturb decisions at the original sites
        let chunk: Vec<_> = (0..200)
            .map(|i| plan.decide(FaultSite::ParallelChunk, "s", i, 0).is_some())
            .collect();
        assert!(chunk.iter().any(|&b| b));
    }

    #[test]
    fn json_rejects_bad_documents() {
        assert!(FaultPlan::from_json("not json").is_err());
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json(
            r#"{"seed":1,"max_attempts":4,"backoff_base":0.1,"backoff_factor":2.0,"rules":[{"site":"nope","kind":"panic","permille":10}]}"#
        )
        .is_err());
        assert!(FaultPlan::from_json(
            r#"{"seed":1,"max_attempts":4,"backoff_base":0.1,"backoff_factor":2.0,"rules":[{"site":"map-task","kind":"panic","permille":1000}]}"#
        )
        .is_err());
    }

    #[test]
    fn wire_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.as_str()), Some(site));
        }
        for kind in [
            FaultKind::Panic,
            FaultKind::TransientError,
            FaultKind::DropRecord,
            FaultKind::CorruptRecord,
            FaultKind::PoisonRow,
        ] {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultSite::parse("bogus"), None);
        assert_eq!(FaultKind::parse("bogus"), None);
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(FaultPlan::profile("off", 1), Some(FaultPlan::off()));
        assert_eq!(FaultPlan::profile("light", 9), Some(FaultPlan::light(9)));
        assert_eq!(FaultPlan::profile("heavy", 9), Some(FaultPlan::heavy(9)));
        assert_eq!(FaultPlan::profile("nope", 9), None);
    }
}
