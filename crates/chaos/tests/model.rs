//! Model checks of the real `KillSwitch`. Compiled only with
//! `RUSTFLAGS="--cfg mrsky_model"` (the CI `model-check` job), where
//! the sync facade is instrumented.
#![cfg(mrsky_model)]

use mrsky_chaos::KillSwitch;
use mrsky_model::sync::{scope, AtomicUsize, Ordering};
use mrsky_model::{check_opts, CheckOptions};

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 3,
        random_walks: 16,
        max_iterations: 10_000,
        ..CheckOptions::default()
    }
}

/// Racing checkpoint writers crossing the budget together: exactly one
/// caller sees `record_write() == true`, on every explored schedule.
#[test]
fn model_kill_switch_fires_exactly_once() {
    let report = check_opts(&opts(), || {
        let k = KillSwitch::new(1);
        let fires = AtomicUsize::new(0);
        scope(|s| {
            let h = s.spawn(|| {
                if k.record_write() {
                    fires.fetch_add(1, Ordering::Relaxed);
                }
                if k.record_write() {
                    fires.fetch_add(1, Ordering::Relaxed);
                }
            });
            if k.record_write() {
                fires.fetch_add(1, Ordering::Relaxed);
            }
            let _ = h.join();
        });
        assert_eq!(k.writes(), 3);
        assert!(k.has_fired());
        assert_eq!(
            fires.load(Ordering::Relaxed),
            1,
            "kill must fire exactly once"
        );
    });
    assert!(report.executions > 1);
}

/// A disarm racing the budget crossing never lets the switch fire
/// twice, and a fired-then-disarmed switch stops aborting.
#[test]
fn model_kill_switch_disarm_race_is_safe() {
    check_opts(&opts(), || {
        let k = KillSwitch::new(0);
        let fires = AtomicUsize::new(0);
        scope(|s| {
            let h = s.spawn(|| {
                if k.record_write() {
                    fires.fetch_add(1, Ordering::Relaxed);
                }
            });
            k.disarm();
            let _ = h.join();
        });
        assert!(fires.load(Ordering::Relaxed) <= 1);
        assert!(!k.should_abort(), "disarmed switch must not abort work");
    });
}
