//! # mr-skyline-bench
//!
//! Figure/table regeneration harnesses and shared experiment plumbing for
//! the IPDPSW'12 reproduction. One binary per figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig4_dominance` | Fig. 4 + Theorems 1–2 (dominance ability) |
//! | `fig5_processing_time` | Fig. 5(a)/(b) (processing time vs. dimension) |
//! | `fig6_scalability` | Fig. 6 (Map/Reduce breakdown vs. servers) |
//! | `fig7_optimality` | Fig. 7(a)/(b) (local skyline optimality) |
//! | `ablations` | design-choice ablations beyond the paper |
//! | `cardinality_scaling` | the abstract's cardinality-scaling claim |
//! | `fig1_fig3_illustrations` | ASCII renderings of the illustrative figures |
//! | `probe` | internal cost-model calibration probe (raw counters for one cell) |
//!
//! Criterion micro/meso benches live under `benches/`.

use mr_skyline::prelude::*;
use qws_data::{generate_qws, QwsConfig};

/// The dimension sweep of Figures 5 and 7.
pub const PAPER_DIMENSIONS: [usize; 5] = [2, 4, 6, 8, 10];

/// The server sweep of Figure 6.
pub const PAPER_SERVERS: [usize; 8] = [4, 8, 12, 16, 20, 24, 28, 32];

/// Cluster size used for the Figure 5/7 dimension sweeps (the paper does
/// not state it; 8 servers sits inside its Figure 6 range and reproduces
/// the reported ratios).
pub const SWEEP_SERVERS: usize = 8;

/// Seed shared by all figure harnesses.
pub const SEED: u64 = 42;

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Algorithm that produced it.
    pub algorithm: Algorithm,
    /// Dataset cardinality.
    pub cardinality: usize,
    /// Dimensionality.
    pub dimensions: usize,
    /// Simulated servers.
    pub servers: usize,
    /// Simulated total processing time (s).
    pub processing_time: f64,
    /// Simulated map time (s).
    pub map_time: f64,
    /// Simulated reduce time (s).
    pub reduce_time: f64,
    /// Local skyline optimality (Eq. 5).
    pub optimality: f64,
    /// Global skyline size.
    pub skyline_size: usize,
    /// Candidates shipped into the merge job.
    pub merge_candidates: usize,
}

impl From<&SkylineRunReport> for SweepPoint {
    fn from(r: &SkylineRunReport) -> Self {
        SweepPoint {
            algorithm: r.algorithm,
            cardinality: r.cardinality,
            dimensions: r.dimensions,
            servers: r.servers,
            processing_time: r.processing_time(),
            map_time: r.map_time(),
            reduce_time: r.reduce_time(),
            optimality: r.optimality,
            skyline_size: r.global_skyline.len(),
            merge_candidates: r.merge_candidates(),
        }
    }
}

/// Generates the master QWS-like dataset once at full width (10 attributes)
/// and projects it down per sweep point, exactly as the paper evaluates the
/// same services at d ∈ {2,…,10}.
///
/// Cardinalities beyond the 10,000-service QWS base are reached by scaling
/// the marginal model directly rather than by the paper's jittered
/// resampling ([`qws_data::generator::extend_qws`]): multiplicative jitter
/// on a 10-D point is almost never dominated by its template (each copy
/// must lose on all ten dimensions at once), so resampling *inflates*
/// high-dimensional skylines instead of preserving the distribution —
/// see EXPERIMENTS.md for the measurement.
pub fn master_dataset(cardinality: usize) -> qws_data::Dataset {
    generate_qws(&QwsConfig::new(cardinality, 10).with_seed(SEED))
}

/// Runs `algorithm` over `dataset` on `servers` simulated servers with
/// default knobs and returns the sweep point.
pub fn run_one(algorithm: Algorithm, dataset: &qws_data::Dataset, servers: usize) -> SweepPoint {
    let report = SkylineJob::new(algorithm, servers).run(dataset);
    SweepPoint::from(&report)
}

/// Runs the Figure 5/7 sweep: the paper trio × [`PAPER_DIMENSIONS`] at a
/// fixed cardinality on [`SWEEP_SERVERS`] servers.
pub fn dimension_sweep(cardinality: usize) -> Vec<SweepPoint> {
    let master = master_dataset(cardinality);
    let mut out = Vec::new();
    for &d in &PAPER_DIMENSIONS {
        let data = master.project(d);
        for alg in Algorithm::paper_trio() {
            out.push(run_one(alg, &data, SWEEP_SERVERS));
        }
    }
    out
}

/// Runs the Figure 6 sweep: MR-Angle at `cardinality`×`dims` across
/// [`PAPER_SERVERS`].
///
/// Follows the paper's `2 × nodes` partition policy at every cluster size:
/// small clusters process few, large partitions (expensive local skylines),
/// large clusters process many small ones, while the single-reducer merge
/// grows slowly with the sector count — producing the sub-linear,
/// saturating speedup the paper reports beyond ~24 servers.
pub fn server_sweep(cardinality: usize, dims: usize) -> Vec<SweepPoint> {
    let master = master_dataset(cardinality);
    let data = master.project(dims);
    PAPER_SERVERS
        .iter()
        .map(|&s| run_one(Algorithm::MrAngle, &data, s))
        .collect()
}

/// Renders a fixed-width table of sweep points grouped the way the paper
/// plots them: one row per dimension, one column per algorithm.
pub fn format_by_dimension(
    points: &[SweepPoint],
    value: impl Fn(&SweepPoint) -> f64,
    header: &str,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<6} {:>12} {:>12} {:>12}\n",
        header, "MR-Dim", "MR-Grid", "MR-Angle"
    ));
    for &d in &PAPER_DIMENSIONS {
        let get = |alg: Algorithm| {
            points
                .iter()
                .find(|p| p.dimensions == d && p.algorithm == alg)
                .map(&value)
        };
        if let (Some(dim), Some(grid), Some(angle)) = (
            get(Algorithm::MrDim),
            get(Algorithm::MrGrid),
            get(Algorithm::MrAngle),
        ) {
            s.push_str(&format!("{d:<6} {dim:>12.3} {grid:>12.3} {angle:>12.3}\n"));
        }
    }
    s
}

/// Renders a sweep point as a JSON object (for `--json` harness output).
pub fn sweep_point_json(p: &SweepPoint) -> String {
    mr_skyline::json::JsonObject::new()
        .string("algorithm", p.algorithm.name())
        .int("cardinality", p.cardinality as u64)
        .int("dimensions", p.dimensions as u64)
        .int("servers", p.servers as u64)
        .num("processing_time_s", p.processing_time)
        .num("map_time_s", p.map_time)
        .num("reduce_time_s", p.reduce_time)
        .num("optimality", p.optimality)
        .int("skyline_size", p.skyline_size as u64)
        .int("merge_candidates", p.merge_candidates as u64)
        .finish()
}

/// Emits every sweep point as one JSON object per line when `--json` is in
/// `args`.
pub fn maybe_emit_json(args: &[String], points: &[SweepPoint]) {
    if args.iter().any(|a| a == "--json") {
        println!();
        for p in points {
            println!("{}", sweep_point_json(p));
        }
    }
}

/// Parses a `--flag value` style argument list (tiny, dependency-free).
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--flag <usize>` with a default.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_value(args, flag)
        .map(|v| {
            v.replace('_', "")
                .parse()
                .unwrap_or_else(|_| panic!("{flag} expects an integer, got {v}"))
        })
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--cardinality", "100_000", "--dims", "10"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(arg_usize(&args, "--cardinality", 1), 100_000);
        assert_eq!(arg_usize(&args, "--dims", 1), 10);
        assert_eq!(arg_usize(&args, "--servers", 8), 8);
        assert_eq!(arg_value(&args, "--missing"), None);
    }

    #[test]
    fn run_one_produces_consistent_point() {
        let data = master_dataset(300).project(3);
        let p = run_one(Algorithm::MrAngle, &data, 4);
        assert_eq!(p.cardinality, 300);
        assert_eq!(p.dimensions, 3);
        assert_eq!(p.servers, 4);
        assert!(p.processing_time > 0.0);
        assert!(p.map_time + p.reduce_time <= p.processing_time);
        assert!(p.merge_candidates >= p.skyline_size);
    }

    #[test]
    fn format_table_has_all_rows() {
        let master = master_dataset(200);
        let mut points = Vec::new();
        for &d in &PAPER_DIMENSIONS {
            let data = master.project(d);
            for alg in Algorithm::paper_trio() {
                points.push(run_one(alg, &data, 2));
            }
        }
        let table = format_by_dimension(&points, |p| p.processing_time, "dim");
        assert_eq!(table.lines().count(), 6);
        assert!(table.contains("MR-Angle"));
    }
}
