//! Regenerates **Figure 5** — processing time of the three MapReduce skyline
//! methods vs. attribute dimensionality.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin fig5_processing_time -- --cardinality 1000
//! cargo run --release -p mr-skyline-bench --bin fig5_processing_time -- --cardinality 100000
//! ```
//!
//! Paper reference (QWS-extended dataset, Hadoop 0.20.2):
//! * Fig. 5(a), N = 1,000 — MR-Grid 6–16 % and MR-Dim 18–45 % slower than
//!   MR-Angle; flat-ish growth with dimension.
//! * Fig. 5(b), N = 100,000 — gaps widen with dimension; at d = 10 the paper
//!   reports MR-Angle 1.7× faster than MR-Grid and 2.3× faster than MR-Dim.

use mr_skyline_bench::{
    arg_usize, dimension_sweep, format_by_dimension, maybe_emit_json, PAPER_DIMENSIONS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cardinality = arg_usize(&args, "--cardinality", 1000);
    let label = if cardinality <= 10_000 {
        "5(a)"
    } else {
        "5(b)"
    };

    println!("=== Figure {label}: processing time vs dimension, N = {cardinality} ===\n");
    let points = dimension_sweep(cardinality);

    println!(
        "{}",
        format_by_dimension(&points, |p| p.processing_time, "d")
    );

    println!("Speedup of MR-Angle (paper at d=10, N=100k: 2.3x over Dim, 1.7x over Grid):");
    println!("{:<6} {:>14} {:>14}", "d", "Dim/Angle", "Grid/Angle");
    for &d in &PAPER_DIMENSIONS {
        let t = |alg| {
            points
                .iter()
                .find(|p| p.dimensions == d && p.algorithm == alg)
                .map(|p| p.processing_time)
                .expect("sweep covers all cells")
        };
        use mr_skyline::Algorithm::*;
        println!(
            "{:<6} {:>14.2} {:>14.2}",
            d,
            t(MrDim) / t(MrAngle),
            t(MrGrid) / t(MrAngle)
        );
    }

    println!("\nMerge candidates shipped to the Reduce-side merge (the mechanism):");
    println!(
        "{}",
        format_by_dimension(&points, |p| p.merge_candidates as f64, "d")
    );
    println!("Global skyline sizes:");
    println!(
        "{}",
        format_by_dimension(&points, |p| p.skyline_size as f64, "d")
    );
    maybe_emit_json(&args, &points);
}
