//! Cardinality scaling — the abstract's claim that the method *"scales well
//! with the increase of both attribute dimensionality and data-space
//! cardinality"*. Figure 5 fixes two cardinalities; this harness sweeps the
//! axis the paper only samples: N ∈ {1k, 5k, 10k, 50k, 100k} at fixed d.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin cardinality_scaling -- --dims 8
//! ```

use mr_skyline::prelude::*;
use mr_skyline_bench::{arg_usize, master_dataset, maybe_emit_json, run_one, SWEEP_SERVERS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dims = arg_usize(&args, "--dims", 8);
    let servers = arg_usize(&args, "--servers", SWEEP_SERVERS);
    println!("=== Cardinality scaling at d = {dims}, {servers} servers ===\n");
    println!(
        "{:<9} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "N", "MR-Dim", "MR-Grid", "MR-Angle", "sky", "Dim/Angle"
    );

    let mut points = Vec::new();
    for n in [1_000usize, 5_000, 10_000, 50_000, 100_000] {
        let data = master_dataset(n).project(dims);
        let cells: Vec<_> = Algorithm::paper_trio()
            .iter()
            .map(|&alg| run_one(alg, &data, servers))
            .collect();
        println!(
            "{:<9} {:>11.1}s {:>11.1}s {:>11.1}s {:>10} {:>8.2}x",
            n,
            cells[0].processing_time,
            cells[1].processing_time,
            cells[2].processing_time,
            cells[2].skyline_size,
            cells[0].processing_time / cells[2].processing_time,
        );
        points.extend(cells);
    }
    maybe_emit_json(&args, &points);
    println!("\nthe MR-Angle advantage grows with cardinality (and with dimension —");
    println!("see fig5_processing_time), which is the abstract's scaling claim.");
}
