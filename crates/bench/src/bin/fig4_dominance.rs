//! Regenerates **Figure 4 / Theorems 1–2** — the dominance-ability analysis
//! of Section IV.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin fig4_dominance
//! ```
//!
//! Setting: a square data space of side `2L`, four partitions, a skyline
//! service `s = (x, y)` in the partition adjacent to the x-axis (`y ≤ x/2`).
//! The paper proves
//!
//! * Theorem 1: `D_angle(s) = (L² − x²/4 − (2L−x)·y) / L²`
//! * Theorem 2: `ΔD = D_angle − D_grid ≥ x/(2L²)·(L − x/2) ≥ 0`
//!
//! This harness prints the closed forms over a grid of `(x, y)` and verifies
//! them against Monte-Carlo estimates on the actual partitioner
//! implementations (uniform points, 4 angular sectors / 2×2 grid cells).

use mr_skyline_bench::arg_usize;
use rand::{rngs::StdRng, SeedableRng};
use skyline_algos::metrics::{
    dominance_ability_angle, dominance_ability_grid, dominance_gap_lower_bound,
    empirical_dominance_ability,
};
use skyline_algos::partition::{AnglePartitioner, Bounds, GridPartitioner};
use skyline_algos::point::Point;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let samples = arg_usize(&args, "--samples", 200_000);
    let l = 1.0;
    let side = 2.0 * l;
    let bounds = Bounds::zero_to(side, 2);
    let angle = AnglePartitioner::fit(&bounds, 4).expect("valid partitioner");
    let grid = GridPartitioner::fit(&bounds, 4).expect("valid partitioner");
    let mut rng = StdRng::seed_from_u64(4);

    println!("=== Figure 4 / Theorems 1-2: dominance ability, 2L={side}, 4 partitions ===\n");
    println!(
        "{:>5} {:>5} | {:>9} {:>9} {:>8} {:>8} | {:>9} {:>9} | {:>6}",
        "x", "y", "D_angle", "D_grid", "gap", "bound", "MC_angle", "MC_grid", "thm2"
    );

    let mut worst_angle_err = 0.0f64;
    let mut worst_grid_err = 0.0f64;
    // Validity region of the closed forms: s must lie in the axis-adjacent
    // partition of BOTH partitioners, i.e. x strictly below L (bottom-left
    // grid cell) and y below the first equal-angle sector boundary
    // tan(pi/8)*x.
    let sector_slope = (std::f64::consts::FRAC_PI_8).tan();
    for xi in 1..=4 {
        let x = 0.2 * f64::from(xi); // x in (0, L)
        for yi in 0..=2 {
            let y = sector_slope * x * 0.9 * f64::from(yi) / 2.0; // y inside sector 0
            let da = dominance_ability_angle(x, y, l);
            let dg = dominance_ability_grid(x, y, l);
            let gap = da - dg;
            let bound = dominance_gap_lower_bound(x, l);
            let s = Point::new(u64::MAX, vec![x, y]);
            let mca = empirical_dominance_ability(&s, &angle, side, samples, &mut rng);
            let mcg = empirical_dominance_ability(&s, &grid, side, samples, &mut rng);
            worst_angle_err = worst_angle_err.max((mca - da).abs());
            worst_grid_err = worst_grid_err.max((mcg - dg).abs());
            let thm2_ok = gap + 1e-9 >= bound && bound >= -1e-12;
            println!(
                "{:>5.2} {:>5.2} | {:>9.4} {:>9.4} {:>8.4} {:>8.4} | {:>9.4} {:>9.4} | {:>6}",
                x,
                y,
                da,
                dg,
                gap,
                bound,
                mca,
                mcg,
                if thm2_ok { "OK" } else { "FAIL" }
            );
        }
    }
    println!(
        "\nMax |Monte-Carlo − closed form|: angle {worst_angle_err:.4}, grid {worst_grid_err:.4}"
    );
    println!("(Theorem 1 draws the sector boundary at the line y = x/2; the implemented");
    println!(" equal-angle sector boundary is y = tan(pi/8)x ~= 0.414x, so the angle column");
    println!(" carries a small systematic modelling gap. The grid column must match tightly.)");
    assert!(
        worst_grid_err < 0.02,
        "grid Monte-Carlo diverged from the closed form"
    );
    assert!(
        worst_angle_err < 0.08,
        "angle Monte-Carlo diverged beyond the modelling gap"
    );
    println!("PASS: closed forms verified within tolerance on the implemented partitioners.");
}
