//! Regenerates **Figure 6** — Map/Reduce breakdown of the MR-Angle
//! processing time against the number of servers.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin fig6_scalability
//! ```
//!
//! Paper reference: N = 100,000 services, d = 10 attributes, servers from 4
//! to 32; total time falls from ≈230 s to ≈130 s (≈70 % claimed improvement,
//! sub-linear), the speedup saturates beyond ~24 servers, Map time is nearly
//! flat, and the Reduce-time drop drives most of the scalability.

use mr_skyline_bench::{arg_usize, maybe_emit_json, server_sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cardinality = arg_usize(&args, "--cardinality", 100_000);
    let dims = arg_usize(&args, "--dims", 10);

    println!("=== Figure 6: MR-Angle Map/Reduce time vs servers (N={cardinality}, d={dims}) ===\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10}",
        "servers", "map (s)", "reduce (s)", "total (s)", "speedup"
    );
    let points = server_sweep(cardinality, dims);
    let base = points.first().map(|p| p.processing_time).unwrap_or(0.0);
    for p in &points {
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>9.2}x",
            p.servers,
            p.map_time,
            p.reduce_time,
            p.processing_time,
            base / p.processing_time
        );
    }
    maybe_emit_json(&args, &points);
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        let drop = 100.0 * (first.processing_time - last.processing_time) / first.processing_time;
        println!(
            "\n{} -> {} servers: {:.1}s -> {:.1}s ({:.0}% reduction; paper: 230s -> 130s)",
            first.servers, last.servers, first.processing_time, last.processing_time, drop
        );
    }
}
