//! Design-choice ablations beyond the paper, over the DESIGN.md list:
//!
//! 1. partition-count policy (`k × nodes` for k ∈ {1, 2, 4, 8});
//! 2. local-skyline kernel (BNL vs SFS vs D&C);
//! 3. MR-Grid dominated-cell pruning on/off (at d = 2, where it is sound);
//! 4. MR-Angle split strategy (quantile vs equal-width);
//! 5. random-partitioning baseline vs the geometric schemes;
//! 6. BNL window size;
//! 7. shuffle volume by partitioning scheme;
//! 8. map-side combiner in the merging job (not in the paper's Algorithm 1);
//! 9. HDFS-style data-locality scheduling of map tasks.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin ablations -- --cardinality 20000 --dims 6
//! ```

use mr_skyline::prelude::*;
use mr_skyline_bench::{arg_usize, master_dataset, SWEEP_SERVERS};

fn line(tag: &str, r: &SkylineRunReport) {
    println!(
        "{:<34} sim {:>7.1}s (map {:>6.1} red {:>6.1}) cand {:>6} LSO {:>5.3} shufMB {:>6.2}",
        tag,
        r.processing_time(),
        r.map_time(),
        r.reduce_time(),
        r.merge_candidates(),
        r.optimality,
        r.metrics.shuffle_bytes as f64 / 1e6,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--cardinality", 20_000);
    let d = arg_usize(&args, "--dims", 6);
    let servers = arg_usize(&args, "--servers", SWEEP_SERVERS);
    let data = master_dataset(n).project(d);
    println!("=== Ablations on qws(n={n}, d={d}), {servers} servers ===\n");

    println!("--- 1. partition-count policy (MR-Angle, partitions = k x nodes) ---");
    for k in [1usize, 2, 4, 8] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, servers);
        job.config.partitions_per_node = k;
        line(&format!("partitions_per_node={k}"), &job.run(&data));
    }

    println!("\n--- 2. local kernel (MR-Angle) ---");
    for (name, kernel) in [
        ("BNL (paper)", LocalKernel::Bnl),
        ("SFS", LocalKernel::Sfs),
        ("Divide&Conquer", LocalKernel::Dnc),
    ] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, servers);
        job.config.kernel = kernel;
        line(name, &job.run(&data));
    }

    println!("\n--- 3. MR-Grid dominated-cell pruning (at d=2, all dims split) ---");
    let data2 = master_dataset(n).project(2);
    for (name, pruning) in [("pruning ON (paper)", true), ("pruning OFF", false)] {
        let mut job = SkylineJob::new(Algorithm::MrGrid, servers);
        job.config.grid_pruning = pruning;
        let r = job.run(&data2);
        println!(
            "{:<34} sim {:>7.1}s reduce_work {:>10} pruned {:>2}/{:<3}",
            name,
            r.processing_time(),
            r.metrics.reduce.work_units,
            r.pruned_partitions,
            r.partitions
        );
    }

    println!("\n--- 4. MR-Angle split strategy ---");
    for (name, quantile) in [
        ("quantile (default)", true),
        ("equal-width (Fig. 3c)", false),
    ] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, servers);
        job.config.angle_quantile = quantile;
        let r = job.run(&data);
        println!(
            "{:<34} sim {:>7.1}s load CV {:>5.2} max {:>6} LSO {:>5.3}",
            name,
            r.processing_time(),
            r.load_balance.cv,
            r.load_balance.max,
            r.optimality
        );
    }

    println!("\n--- 5. geometric vs random partitioning ---");
    for alg in [
        Algorithm::MrDim,
        Algorithm::MrGrid,
        Algorithm::MrAngle,
        Algorithm::MrRandom,
        Algorithm::Sequential,
    ] {
        line(alg.name(), &SkylineJob::new(alg, servers).run(&data));
    }

    println!("\n--- 6. BNL window size (MR-Angle) ---");
    for window in [None, Some(4096), Some(512), Some(64)] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, servers);
        job.config.bnl_window = window;
        let tag = match window {
            None => "window = unbounded".to_string(),
            Some(w) => format!("window = {w}"),
        };
        line(&tag, &job.run(&data));
    }

    println!("\n--- 7. shuffle volume by scheme (see shufMB column of section 5) ---");

    println!("\n--- 8. merging-job combiner (parallelising the serial merge) ---");
    for (name, combine) in [
        ("Algorithm 1 (no combiner)", false),
        ("with merge combiner", true),
    ] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, servers);
        job.config.merge_combiner = combine;
        let r = job.run(&data);
        println!(
            "{:<34} sim {:>7.1}s reduce {:>6.1}s final-reducer input {:>7}",
            name,
            r.processing_time(),
            r.reduce_time(),
            r.metrics.reduce.records_in
        );
    }

    println!("\n--- 9. data-locality scheduling (3x replication, 0.5s remote penalty) ---");
    for (name, enabled) in [("locality-blind", false), ("locality-aware", true)] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, servers);
        job.locality = if enabled {
            mini_mapreduce::runtime::LocalityConfig::enabled()
        } else {
            mini_mapreduce::runtime::LocalityConfig::default()
        };
        let r = job.run(&data);
        println!(
            "{:<34} sim {:>7.1}s map {:>6.1}s local tasks {:>3}/{:<3}",
            name,
            r.processing_time(),
            r.map_time(),
            r.metrics.map.data_local_tasks,
            r.metrics.map.tasks
        );
    }

    println!("\n--- 10. fairness: quantile-balanced baselines ---");
    for (name, alg, quantile) in [
        ("MR-Dim equal-width (paper)", Algorithm::MrDim, false),
        ("MR-Dim quantile slabs", Algorithm::MrDim, true),
        ("MR-Grid equal-width (paper)", Algorithm::MrGrid, false),
        ("MR-Grid quantile cells", Algorithm::MrGrid, true),
        ("MR-Angle quantile (reference)", Algorithm::MrAngle, false),
    ] {
        let mut job = SkylineJob::new(alg, servers);
        job.config.baseline_quantile = quantile;
        let r = job.run(&data);
        println!(
            "{:<34} sim {:>7.1}s load CV {:>5.2} cand {:>6} LSO {:>5.3}",
            name,
            r.processing_time(),
            r.load_balance.cv,
            r.merge_candidates(),
            r.optimality
        );
    }

    println!("\n--- 11. hierarchical (tree) merge vs Algorithm 1's single reducer ---");
    println!("(the serial merge is the Fig. 6 saturation floor; a tree merge parallelises");
    println!(" it -- but each extra MapReduce round pays full job+task overheads, and");
    println!(" hash-spread shares of a skyline-dense candidate set barely prune, so at");
    println!(" Hadoop-era overheads the paper's single reducer wins. Honest negative.)");
    let big = master_dataset(arg_usize(&args, "--big", 100_000)).project(10);
    for (name, fan_in) in [
        ("single-reducer merge (paper)", None),
        ("tree merge, fan-in 4", Some(4)),
    ] {
        let mut job = SkylineJob::new(Algorithm::MrAngle, 32);
        job.config.merge_fan_in = fan_in;
        let r = job.run(&big);
        println!(
            "{:<34} 32 servers: sim {:>7.1}s reduce {:>6.1}s",
            name,
            r.processing_time(),
            r.reduce_time()
        );
    }
    println!("\ndone.");
}
