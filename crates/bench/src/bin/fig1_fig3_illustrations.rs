//! ASCII regenerations of the paper's illustrative figures:
//!
//! * **Figure 1** — a 2-D QoS space (response time × cost) with the skyline
//!   contour marked;
//! * **Figure 3(a)/(b)/(c)** — how the dimensional, grid, and angular
//!   partitionings carve the same space (each point shown as its partition
//!   id).
//!
//! These figures carry no measurements; the binary exists so that *every*
//! figure in the paper has a regenerator, and doubles as a visual sanity
//! check of the three partitioners.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin fig1_fig3_illustrations
//! ```

use mr_skyline_bench::arg_usize;
use qws_data::{generate_qws, QwsConfig};
use skyline_algos::bnl::{bnl_skyline, BnlConfig};
use skyline_algos::partition::{
    AnglePartitioner, DimPartitioner, GridPartitioner, SpacePartitioner,
};
use skyline_algos::point::Point;
use std::collections::HashSet;

const WIDTH: usize = 68;
const HEIGHT: usize = 24;

struct Canvas {
    cells: Vec<Vec<char>>,
    min: [f64; 2],
    max: [f64; 2],
}

impl Canvas {
    fn new(points: &[Point]) -> Self {
        let mut min = [f64::INFINITY; 2];
        let mut max = [f64::NEG_INFINITY; 2];
        for p in points {
            for i in 0..2 {
                min[i] = min[i].min(p.coord(i));
                max[i] = max[i].max(p.coord(i));
            }
        }
        Self {
            cells: vec![vec![' '; WIDTH]; HEIGHT],
            min,
            max,
        }
    }

    fn plot(&mut self, p: &Point, ch: char) {
        let x = ((p.coord(0) - self.min[0]) / (self.max[0] - self.min[0]).max(1e-12)
            * (WIDTH - 1) as f64) as usize;
        // y axis points up: row 0 is the top
        let y = ((p.coord(1) - self.min[1]) / (self.max[1] - self.min[1]).max(1e-12)
            * (HEIGHT - 1) as f64) as usize;
        let row = HEIGHT - 1 - y.min(HEIGHT - 1);
        self.cells[row][x.min(WIDTH - 1)] = ch;
    }

    fn print(&self, title: &str) {
        println!("{title}");
        println!("cost");
        for row in &self.cells {
            println!("| {}", row.iter().collect::<String>());
        }
        println!("+{}> response time\n", "-".repeat(WIDTH));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--points", 300);
    let data = generate_qws(&QwsConfig::new(n, 2));
    let points = data.points();

    // Figure 1: dots + skyline contour
    let skyline: HashSet<u64> = bnl_skyline(points, &BnlConfig::default())
        .iter()
        .map(Point::id)
        .collect();
    let mut canvas = Canvas::new(points);
    for p in points {
        canvas.plot(p, '.');
    }
    for p in points {
        if skyline.contains(&p.id()) {
            canvas.plot(p, '#');
        }
    }
    canvas.print(&format!(
        "=== Figure 1: 2-D QoS space, {} services, skyline (#) of {} points ===",
        n,
        skyline.len()
    ));

    // Figure 3: the three partitionings, 4 partitions each
    let bounds = data.bounds();
    let partitioners: Vec<(&str, Box<dyn SpacePartitioner>)> = vec![
        (
            "=== Figure 3(a): dimensional partitioning (MR-Dim), 4 slabs ===",
            Box::new(DimPartitioner::fit(bounds, 4).expect("valid")),
        ),
        (
            "=== Figure 3(b): grid partitioning (MR-Grid), 2x2 cells ===",
            Box::new(GridPartitioner::fit(bounds, 4).expect("valid")),
        ),
        (
            "=== Figure 3(c): angular partitioning (MR-Angle), 4 sectors ===",
            Box::new(AnglePartitioner::fit(bounds, 4).expect("valid")),
        ),
    ];
    for (title, part) in partitioners {
        let mut canvas = Canvas::new(points);
        for p in points {
            let id = part.partition_of(p);
            let ch = char::from_digit(id as u32 % 10, 10).unwrap_or('?');
            canvas.plot(p, ch);
        }
        canvas.print(title);
    }
    println!("note how every angular sector (3c) reaches the origin corner, so each");
    println!("holds a stretch of the skyline contour — the paper's core observation.");
}
