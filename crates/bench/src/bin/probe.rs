//! Internal calibration probe: prints raw work counters for one sweep cell.
//! Not part of the figure suite; used to sanity-check the cost model.

use mr_skyline::prelude::*;
use mr_skyline_bench::{arg_usize, master_dataset};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "--cardinality", 100_000);
    let d = arg_usize(&args, "--dims", 10);
    let servers = arg_usize(&args, "--servers", 8);
    let master = master_dataset(n);
    let data = master.project(d);
    for alg in Algorithm::paper_trio() {
        let t0 = std::time::Instant::now();
        let report = SkylineJob::new(alg, servers).run(&data);
        let wall = t0.elapsed().as_secs_f64();
        let merge_task = report
            .metrics
            .reduce
            .task_durations
            .last()
            .copied()
            .unwrap_or(0.0);
        let local_max = report
            .metrics
            .reduce
            .task_durations
            .iter()
            .take(report.metrics.reduce.task_durations.len().saturating_sub(1))
            .fold(0.0f64, |a, &b| a.max(b));
        println!(
            "{:<9} lb_cv={:>5.2} lb_max={:>6} map_work={:>12} reduce_work={:>13} cand={:>7} sky={:>6} sim={:>8.1}s (map {:>7.1} red {:>7.1} | local_max {:>6.1} merge {:>6.1}) wall={:>5.1}s",
            report.algorithm.name(),
            report.load_balance.cv,
            report.load_balance.max,
            report.metrics.map.work_units,
            report.metrics.reduce.work_units,
            report.merge_candidates(),
            report.global_skyline.len(),
            report.processing_time(),
            report.map_time(),
            report.reduce_time(),
            local_max,
            merge_task,
            wall,
        );
    }
}
