//! Regenerates **Figure 7** — local skyline optimality (paper Eq. 5) of the
//! three MapReduce skyline methods vs. attribute dimensionality.
//!
//! ```text
//! cargo run --release -p mr-skyline-bench --bin fig7_optimality -- --cardinality 1000
//! cargo run --release -p mr-skyline-bench --bin fig7_optimality -- --cardinality 100000
//! ```
//!
//! Paper reference: optimality rises with dimension for every method
//! (comparability between service pairs drops as d grows); MR-Angle is
//! highest at every dimension (max ≈0.61 at N=1,000), MR-Dim lowest, and the
//! gaps widen at N=100,000.

use mr_skyline::Algorithm;
use mr_skyline_bench::{
    arg_usize, dimension_sweep, format_by_dimension, maybe_emit_json, PAPER_DIMENSIONS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cardinality = arg_usize(&args, "--cardinality", 1000);
    let label = if cardinality <= 10_000 {
        "7(a)"
    } else {
        "7(b)"
    };

    println!("=== Figure {label}: local skyline optimality vs dimension, N = {cardinality} ===\n");
    let points = dimension_sweep(cardinality);
    println!("{}", format_by_dimension(&points, |p| p.optimality, "d"));

    // Ranking check per dimension (the paper's qualitative claim).
    for &d in &PAPER_DIMENSIONS {
        let get = |alg| {
            points
                .iter()
                .find(|p| p.dimensions == d && p.algorithm == alg)
                .map(|p| p.optimality)
                .expect("sweep covers all cells")
        };
        let (dim, grid, angle) = (
            get(Algorithm::MrDim),
            get(Algorithm::MrGrid),
            get(Algorithm::MrAngle),
        );
        let ok = angle >= grid && angle >= dim;
        println!(
            "d={d}: MR-Angle {} both baselines (angle {angle:.3}, grid {grid:.3}, dim {dim:.3})",
            if ok { "beats" } else { "DOES NOT beat" }
        );
    }
    maybe_emit_json(&args, &points);
}
