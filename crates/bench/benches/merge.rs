//! Merge-stage shoot-out: the L1-presorting single-pass merge kernel vs a
//! plain BNL pass over the same candidate block.
//!
//! The candidate set mimics what the pipeline's merge reducer actually
//! receives: the concatenation of per-chunk local skylines. On such input a
//! BNL window churns (every candidate is locally optimal, so few die
//! early), while the presorted kernel never evicts an accepted row — if `p`
//! dominates `q` then `l1(p) < l1(q)`, so sorting by L1 norm makes one
//! filtering pass sufficient.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
use skyline_algos::block::PointBlock;
use skyline_algos::bnl::BnlConfig;
use skyline_algos::kernel::{block_bnl, presort_merge};

/// Concatenated per-chunk local skylines of an anti-correlated dataset —
/// the pipeline merge reducer's input shape.
fn merge_candidates(n: usize, d: usize, chunks: usize) -> PointBlock {
    let pts = generate_synthetic(&SyntheticConfig::new(n, d, Distribution::AntiCorrelated))
        .points()
        .to_vec();
    let block = PointBlock::from_points(&pts).expect("uniform dims");
    let mut out = PointBlock::new(d);
    for chunk in block.chunks(n.div_ceil(chunks)) {
        out.extend_from_block(&block_bnl(&chunk, &BnlConfig::default()));
    }
    out
}

fn bench_merge_kernels(c: &mut Criterion) {
    for (n, d) in [(20_000usize, 4usize), (10_000, 6)] {
        let cands = merge_candidates(n, d, 16);
        let mut group = c.benchmark_group(format!("merge/anti_n{n}_d{d}"));
        group.sample_size(10);
        group.bench_with_input(
            BenchmarkId::new("bnl_merge", cands.len()),
            &cands,
            |b, cands| {
                b.iter(|| block_bnl(cands, &BnlConfig::default()).len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("presort_merge", cands.len()),
            &cands,
            |b, cands| {
                b.iter(|| presort_merge(cands).len());
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_merge_kernels);
criterion_main!(benches);
