//! Micro-benchmarks of the dominance primitive — the inner loop every
//! skyline kernel and the cluster cost model are built on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use skyline_algos::dominance::{compare, dominates, DomCounter};
use skyline_algos::point::Point;

fn random_points(n: usize, d: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Point::new(
                i as u64,
                (0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>(),
            )
        })
        .collect()
}

fn bench_dominates(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominates");
    for d in [2usize, 6, 10] {
        let pts = random_points(1024, d, 1);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut wins = 0u32;
                for pair in pts.chunks_exact(2) {
                    if dominates(black_box(&pair[0]), black_box(&pair[1])) {
                        wins += 1;
                    }
                }
                wins
            });
        });
    }
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare_classify");
    for d in [2usize, 10] {
        let pts = random_points(1024, d, 2);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for pair in pts.chunks_exact(2) {
                    acc = acc.wrapping_add(compare(black_box(&pair[0]), &pair[1]) as u32);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_counter_overhead(c: &mut Criterion) {
    let pts = random_points(1024, 6, 3);
    c.bench_function("dom_counter_overhead", |b| {
        b.iter(|| {
            let mut counter = DomCounter::new();
            for pair in pts.chunks_exact(2) {
                let _ = counter.dominates(black_box(&pair[0]), &pair[1]);
            }
            counter.comparisons()
        });
    });
}

criterion_group!(
    benches,
    bench_dominates,
    bench_compare,
    bench_counter_overhead
);
criterion_main!(benches);
