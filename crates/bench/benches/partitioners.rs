//! Partition-assignment throughput for the four space partitioners — the
//! per-record Map-stage cost of each algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qws_data::{generate_qws, QwsConfig};
use skyline_algos::partition::{
    AnglePartitioner, DimPartitioner, GridPartitioner, RandomPartitioner, SpacePartitioner,
};
use skyline_algos::point::Point;

fn bench_partition_of(c: &mut Criterion) {
    for d in [2usize, 10] {
        let data = generate_qws(&QwsConfig::new(4096, d));
        let pts: Vec<Point> = data.points().to_vec();
        let bounds = data.bounds();
        let partitioners: Vec<(&str, Box<dyn SpacePartitioner>)> = vec![
            ("dim", Box::new(DimPartitioner::fit(bounds, 16).unwrap())),
            (
                "grid2",
                Box::new(GridPartitioner::fit_on_dims(bounds, 16, 2.min(d)).unwrap()),
            ),
            (
                "angle_equal",
                Box::new(AnglePartitioner::fit(bounds, 16).unwrap()),
            ),
            (
                "angle_quantile",
                Box::new(AnglePartitioner::fit_quantile(data.points(), 16).unwrap()),
            ),
            ("random", Box::new(RandomPartitioner::new(d, 16).unwrap())),
        ];
        let mut group = c.benchmark_group(format!("partition_of/d{d}"));
        for (name, part) in &partitioners {
            group.bench_with_input(BenchmarkId::from_parameter(name), part, |b, part| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for p in &pts {
                        acc = acc.wrapping_add(part.partition_of(black_box(p)));
                    }
                    acc
                });
            });
        }
        group.finish();
    }
}

fn bench_quantile_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("angle_quantile_fit");
    group.sample_size(10);
    for n in [1000usize, 10_000] {
        let data = generate_qws(&QwsConfig::new(n, 10));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                AnglePartitioner::fit_quantile(data.points(), 16)
                    .unwrap()
                    .num_partitions()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition_of, bench_quantile_fit);
criterion_main!(benches);
