//! Throughput of the hyperspherical transform (paper Eq. 1) — the extra
//! Map-stage cost MR-Angle pays per point, and the justification for the
//! `map_work_per_point` charge in the cost model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use skyline_algos::hypersphere::{to_hyperspherical, to_hyperspherical_into};
use skyline_algos::point::Point;

fn points(n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            Point::new(
                i as u64,
                (0..d)
                    .map(|_| rng.gen_range(0.0..100.0))
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperspherical");
    for d in [2usize, 6, 10] {
        let pts = points(4096, d);
        group.bench_with_input(BenchmarkId::new("alloc", d), &pts, |b, pts| {
            b.iter(|| {
                let mut acc = 0.0;
                for p in pts {
                    acc += to_hyperspherical(black_box(p)).r;
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("into", d), &pts, |b, pts| {
            let mut buf = vec![0.0; d - 1];
            b.iter(|| {
                let mut acc = 0.0;
                for p in pts {
                    acc += to_hyperspherical_into(black_box(p), &mut buf);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
