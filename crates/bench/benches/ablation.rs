//! Criterion ablations for the design choices DESIGN.md calls out:
//! partition policy, local kernel, grid pruning, angle split strategy, and
//! the incremental-vs-batch maintenance trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_skyline::prelude::*;
use mr_skyline_bench::master_dataset;
use qws_data::dataset::update_stream;

const BENCH_N: usize = 6000;

fn bench_partition_policy(c: &mut Criterion) {
    let data = master_dataset(BENCH_N).project(6);
    let mut group = c.benchmark_group("ablation_partitions_per_node");
    group.sample_size(10);
    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &data, |b, data| {
            let mut job = SkylineJob::new(Algorithm::MrAngle, 8);
            job.config.partitions_per_node = k;
            b.iter(|| job.run(data).metrics.sim_total);
        });
    }
    group.finish();
}

fn bench_local_kernel(c: &mut Criterion) {
    let data = master_dataset(BENCH_N).project(6);
    let mut group = c.benchmark_group("ablation_local_kernel");
    group.sample_size(10);
    for (name, kernel) in [
        ("bnl", LocalKernel::Bnl),
        ("sfs", LocalKernel::Sfs),
        ("dnc", LocalKernel::Dnc),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            let mut job = SkylineJob::new(Algorithm::MrAngle, 8);
            job.config.kernel = kernel;
            b.iter(|| job.run(data).global_skyline.len());
        });
    }
    group.finish();
}

fn bench_grid_pruning(c: &mut Criterion) {
    let data = master_dataset(BENCH_N).project(2); // pruning sound at d=2
    let mut group = c.benchmark_group("ablation_grid_pruning");
    group.sample_size(10);
    for (name, pruning) in [("on", true), ("off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            let mut job = SkylineJob::new(Algorithm::MrGrid, 8);
            job.config.grid_pruning = pruning;
            b.iter(|| job.run(data).metrics.reduce.work_units);
        });
    }
    group.finish();
}

fn bench_angle_split(c: &mut Criterion) {
    let data = master_dataset(BENCH_N).project(6);
    let mut group = c.benchmark_group("ablation_angle_split");
    group.sample_size(10);
    for (name, quantile) in [("quantile", true), ("equal_width", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            let mut job = SkylineJob::new(Algorithm::MrAngle, 8);
            job.config.angle_quantile = quantile;
            b.iter(|| job.run(data).load_balance.cv);
        });
    }
    group.finish();
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    let data = master_dataset(2000).project(4);
    let updates = update_stream(&data, 100, 0.7, 0.05, 3);
    let mut group = c.benchmark_group("ablation_churn");
    group.sample_size(10);
    group.bench_function("incremental_stream", |b| {
        b.iter(|| {
            let mut reg = MaintainedRegistry::bootstrap(Algorithm::MrAngle, 8, &data)
                .expect("partitioner fit");
            for u in &updates {
                reg.apply(u);
            }
            reg.skyline().len()
        });
    });
    group.bench_function("batch_recompute_each_event", |b| {
        use skyline_algos::bnl::{bnl_skyline, BnlConfig};
        b.iter(|| {
            // replay the stream, recomputing the skyline from scratch after
            // every event — the "traditional approach" of the paper's Sec. II
            let mut live = data.points().to_vec();
            let mut total = 0usize;
            for u in &updates {
                match u {
                    qws_data::dataset::Update::Add(p) => live.push(p.clone()),
                    qws_data::dataset::Update::Remove(id) => {
                        if let Some(pos) = live.iter().position(|p| p.id() == *id) {
                            live.swap_remove(pos);
                        }
                    }
                }
                total += bnl_skyline(&live, &BnlConfig::default()).len();
            }
            total
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_policy,
    bench_local_kernel,
    bench_grid_pruning,
    bench_angle_split,
    bench_incremental_vs_batch
);
criterion_main!(benches);
