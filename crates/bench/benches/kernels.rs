//! Skyline kernel shoot-out: BNL (the paper's choice) vs SFS vs
//! divide-and-conquer, across the three classic data distributions.
//!
//! This is the evidence behind DESIGN.md's "local kernel" ablation: on
//! correlated (QWS-like) data the kernels are close; on anti-correlated data
//! BNL's quadratic window behaviour shows, which is why bounding the window
//! matters for the memory model even though the paper picked BNL "for its
//! simplicity".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
use skyline_algos::block::PointBlock;
use skyline_algos::bnl::{bnl_skyline, BnlConfig};
use skyline_algos::dnc::dnc_skyline;
use skyline_algos::dominance::dominates;
use skyline_algos::kernel::{block_bnl_stats, block_sfs_stats, dominated_count};
use skyline_algos::parallel::{parallel_skyline, parallel_skyline_partitioned};
use skyline_algos::partition::AnglePartitioner;
use skyline_algos::point::Point;
use skyline_algos::salsa::block_salsa_stats;
use skyline_algos::select::{correlation_estimate, KernelChoice};
use skyline_algos::sfs::sfs_skyline;
use std::fmt::Write as _;
use std::time::Instant;

fn dataset(dist: Distribution, n: usize, d: usize) -> Vec<Point> {
    generate_synthetic(&SyntheticConfig::new(n, d, dist))
        .points()
        .to_vec()
}

fn bench_kernels(c: &mut Criterion) {
    let n = 4000;
    let d = 4;
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        let pts = dataset(dist, n, d);
        let mut group = c.benchmark_group(format!("kernel/{}", dist.name()));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("bnl", n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::default()).len());
        });
        group.bench_with_input(BenchmarkId::new("bnl_w256", n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::with_window(256)).len());
        });
        group.bench_with_input(BenchmarkId::new("sfs", n), &pts, |b, pts| {
            b.iter(|| sfs_skyline(pts).len());
        });
        group.bench_with_input(BenchmarkId::new("dnc", n), &pts, |b, pts| {
            b.iter(|| dnc_skyline(pts).len());
        });
        group.finish();
    }
}

fn bench_bnl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnl_scaling_qws");
    group.sample_size(10);
    for n in [1000usize, 4000, 16000] {
        let pts = qws_data::generate_qws(&qws_data::QwsConfig::new(n, 6))
            .points()
            .to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::default()).len());
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let pts = qws_data::generate_qws(&qws_data::QwsConfig::new(30_000, 6))
        .points()
        .to_vec();
    let mut group = c.benchmark_group("parallel_skyline");
    group.sample_size(10);
    group.bench_function("single_thread", |b| {
        b.iter(|| bnl_skyline(&pts, &BnlConfig::default()).len());
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("block_chunks", threads),
            &threads,
            |b, &t| b.iter(|| parallel_skyline(&pts, t).expect("parallel skyline").len()),
        );
    }
    let part = AnglePartitioner::fit_quantile(&pts, 16).unwrap();
    group.bench_function("angular_chunks_8t", |b| {
        b.iter(|| {
            parallel_skyline_partitioned(&pts, &part, 8)
                .expect("partitioned skyline")
                .0
                .len()
        });
    });
    group.finish();
}

// ---- columnar vs AoS dominance sweep (the PointBlock tentpole) ----
//
// One dominance sweep — count how many of `n` candidates a fixed window
// dominates — at d=6 over 100k anti-correlated services. The AoS baseline
// chases one heap pointer per point; the block kernel streams one flat
// buffer. Median wall times land in `BENCH_kernels.json` at the workspace
// root (skipped in `--test` smoke runs so the committed baseline survives).

const SWEEP_N: usize = 100_000;
const SWEEP_D: usize = 6;
const SWEEP_WINDOW: usize = 512;

fn aos_sweep(window: &[Point], candidates: &[Point]) -> usize {
    candidates
        .iter()
        .filter(|c| window.iter().any(|w| dominates(w, c)))
        .count()
}

fn median_wall_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    black_box(f()); // warm-up
    let mut v: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn bench_block_vs_aos(c: &mut Criterion) {
    let pts = dataset(Distribution::AntiCorrelated, SWEEP_N, SWEEP_D);
    let window: Vec<Point> = pts.iter().take(SWEEP_WINDOW).cloned().collect();
    let block = PointBlock::from_points(&pts).expect("uniform dims");
    let window_block = PointBlock::from_points(&window).expect("uniform dims");

    let mut group = c.benchmark_group(format!("block_vs_aos/anti_d{SWEEP_D}_n{SWEEP_N}"));
    group.sample_size(10);
    group.bench_function("aos_dominance_sweep", |b| {
        b.iter(|| aos_sweep(&window, &pts));
    });
    group.bench_function("block_dominance_sweep", |b| {
        b.iter(|| dominated_count(&block, &window_block));
    });
    group.finish();
}

// ---- kernel-selection matrix (the pluggable-kernel tentpole) ----
//
// Every local kernel — BNL, SFS, SaLSa, and the `Auto` selector — timed on
// every cell of distribution × d ∈ {2,4,6,8} × n ∈ {10k,100k,1M}. This is
// the evidence behind `KernelChoice`'s calibrated boundaries and the data
// the bench gate pins: sort-based kernels must beat BNL on large
// anti-correlated cells, and `Auto` must land within tolerance of the best
// fixed kernel on *every* cell. Results go to `BENCH_kernels.json`
// (skipped in `--test` smoke runs, which instead exercise a reduced n=10k
// matrix so the code path stays compiled and run in CI).

const MATRIX_N: [usize; 3] = [10_000, 100_000, 1_000_000];
const MATRIX_D: [usize; 4] = [2, 4, 6, 8];
const MATRIX_DISTS: [Distribution; 3] = [
    Distribution::Correlated,
    Distribution::Independent,
    Distribution::AntiCorrelated,
];

/// BNL's effective cost is ~`n × |skyline|` dominance tests; past this
/// budget (~60 s on the reference host) the cell records BNL as skipped —
/// loudly, in the JSON and on stdout — instead of stalling the run.
const BNL_COMPARISON_BUDGET: u128 = 40_000_000_000;

/// `Auto` must stay within 5% of the best fixed kernel per cell, with a
/// 25 ms absolute floor: crossover cells (anti d=4, small correlated
/// blocks) have sub-25 ms margins that flip run to run, and no selector —
/// or repeated measurement of the *same* kernel — resolves below that.
const AUTO_TOLERANCE_PCT: f64 = 5.0;
const AUTO_TOLERANCE_FLOOR_MS: f64 = 25.0;

/// First timed run under this many ms → the cell is cheap enough to repeat;
/// above it a single sample stands (those cells run seconds-to-minutes and
/// their margins are far above run-to-run noise).
const ADAPTIVE_CUTOFF_MS: f64 = 5_000.0;

/// Times `f` once; cheap runs get three more samples (the first acting as
/// warmup) and report their median, expensive runs keep the single sample.
/// This is what keeps the 1 M-row crossover cells honest: their BNL-vs-SFS
/// margins are ~5–20%, inside single-shot cold-cache variance.
fn adaptive_wall_ms(mut f: impl FnMut() -> usize) -> f64 {
    let t = Instant::now();
    black_box(f());
    let first = t.elapsed().as_secs_f64() * 1e3;
    if first >= ADAPTIVE_CUTOFF_MS {
        return first;
    }
    wall_ms(3, false, f)
}

fn timed(quick: bool, f: impl FnMut() -> usize) -> f64 {
    if quick {
        wall_ms(1, false, f)
    } else {
        adaptive_wall_ms(f)
    }
}

fn wall_ms(samples: usize, warmup: bool, mut f: impl FnMut() -> usize) -> f64 {
    if warmup {
        black_box(f());
    }
    let mut v: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

struct MatrixCell {
    key: String,
    dist: &'static str,
    n: usize,
    d: usize,
    rho: f64,
    skyline: usize,
    bnl_ms: Option<f64>,
    sfs_ms: f64,
    salsa_ms: f64,
    auto_ms: f64,
    auto_kernel: &'static str,
}

impl MatrixCell {
    fn best(&self) -> (&'static str, f64) {
        let mut best = ("sfs", self.sfs_ms);
        if self.salsa_ms < best.1 {
            best = ("salsa", self.salsa_ms);
        }
        if let Some(b) = self.bnl_ms {
            if b < best.1 {
                best = ("bnl", b);
            }
        }
        best
    }

    fn auto_within_tolerance(&self) -> bool {
        let (_, best) = self.best();
        self.auto_ms <= best * (1.0 + AUTO_TOLERANCE_PCT / 100.0) + AUTO_TOLERANCE_FLOOR_MS
    }
}

fn measure_cell(dist: Distribution, n: usize, d: usize, quick: bool) -> MatrixCell {
    let pts = dataset(dist, n, d);
    let block = PointBlock::from_points(&pts).expect("uniform dims");
    let cfg = BnlConfig::default();
    let rho = correlation_estimate(&block);
    let skyline = block_sfs_stats(&block).0.len();
    let sfs_ms = timed(quick, || block_sfs_stats(&block).0.len());
    let salsa_ms = timed(quick, || block_salsa_stats(&block).0.len());
    let bnl_ms = if (n as u128) * (skyline as u128) < BNL_COMPARISON_BUDGET {
        Some(timed(quick, || block_bnl_stats(&block, &cfg).0.len()))
    } else {
        None
    };
    let auto_kernel = KernelChoice::default().select_for_block(&block);
    let auto_ms = timed(quick, || {
        let choice = KernelChoice::default().select_for_block(&block);
        choice.run(&block, &cfg).0.len()
    });
    MatrixCell {
        key: format!("{}_d{d}_n{n}", dist.name()),
        dist: dist.name(),
        n,
        d,
        rho,
        skyline,
        bnl_ms,
        sfs_ms,
        salsa_ms,
        auto_ms,
        auto_kernel: auto_kernel.name(),
    }
}

fn bench_kernel_matrix(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        // CI smoke: run the full kernel set once on the cheapest row of the
        // matrix so every dispatch path executes, but write nothing.
        for dist in MATRIX_DISTS {
            for d in MATRIX_D {
                let cell = measure_cell(dist, 10_000, d, true);
                println!(
                    "matrix smoke {}: auto={} within_tolerance={}",
                    cell.key,
                    cell.auto_kernel,
                    cell.auto_within_tolerance()
                );
            }
        }
        return;
    }

    // The pinned block-vs-AoS sweep (PR 2's tentpole) stays in the same
    // artifact, same shape, so its baseline entry keeps resolving.
    let pts = dataset(Distribution::AntiCorrelated, SWEEP_N, SWEEP_D);
    let window: Vec<Point> = pts.iter().take(SWEEP_WINDOW).cloned().collect();
    let block = PointBlock::from_points(&pts).expect("uniform dims");
    let window_block = PointBlock::from_points(&window).expect("uniform dims");
    let aos_ns = median_wall_ns(5, || aos_sweep(&window, &pts));
    let block_ns = median_wall_ns(5, || dominated_count(&block, &window_block));
    drop((pts, window, block, window_block));

    let mut cells = Vec::new();
    for dist in MATRIX_DISTS {
        for n in MATRIX_N {
            for d in MATRIX_D {
                let cell = measure_cell(dist, n, d, false);
                println!(
                    "matrix {}: sky={} bnl={} sfs={:.1}ms salsa={:.1}ms auto={:.1}ms ({})",
                    cell.key,
                    cell.skyline,
                    cell.bnl_ms
                        .map_or("skipped".to_string(), |b| format!("{b:.1}ms")),
                    cell.sfs_ms,
                    cell.salsa_ms,
                    cell.auto_ms,
                    cell.auto_kernel,
                );
                cells.push(cell);
            }
        }
    }

    let mut matrix = String::new();
    let mut skipped = Vec::new();
    let mut max_penalty_pct = 0.0f64;
    let mut all_within = true;
    for (i, cell) in cells.iter().enumerate() {
        let (best_kernel, best_ms) = cell.best();
        if cell.bnl_ms.is_none() {
            skipped.push(format!("\"{}\"", cell.key));
        }
        let penalty_pct = ((cell.auto_ms - best_ms) / best_ms * 100.0).max(0.0);
        max_penalty_pct = max_penalty_pct.max(penalty_pct);
        all_within &= cell.auto_within_tolerance();
        let bnl = cell
            .bnl_ms
            .map_or("null".to_string(), |b| format!("{b:.2}"));
        let bnl_over_best = cell
            .bnl_ms
            .map_or("null".to_string(), |b| format!("{:.2}", b / best_ms));
        let _ = write!(
            matrix,
            "{}    \"{}\": {{\"distribution\": \"{}\", \"n\": {}, \"d\": {}, \"rho\": {:.2}, \"skyline\": {}, \"bnl_ms\": {}, \"sfs_ms\": {:.2}, \"salsa_ms\": {:.2}, \"auto_ms\": {:.2}, \"auto_kernel\": \"{}\", \"best_kernel\": \"{}\", \"bnl_over_best\": {}, \"auto_penalty_pct\": {:.2}}}",
            if i == 0 { "" } else { ",\n" },
            cell.key,
            cell.dist,
            cell.n,
            cell.d,
            cell.rho,
            cell.skyline,
            bnl,
            cell.sfs_ms,
            cell.salsa_ms,
            cell.auto_ms,
            cell.auto_kernel,
            best_kernel,
            bnl_over_best,
            penalty_pct,
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = format!(
        "{{\n  \"bench\": \"kernels/block_vs_aos\",\n  \"distribution\": \"anti-correlated\",\n  \"n\": {SWEEP_N},\n  \"d\": {SWEEP_D},\n  \"window\": {SWEEP_WINDOW},\n  \"aos_sweep_ns\": {aos_ns:.0},\n  \"block_sweep_ns\": {block_ns:.0},\n  \"speedup\": {:.2},\n  \"matrix_bench\": \"kernels/selection_matrix\",\n  \"auto_tolerance\": {{\"pct\": {AUTO_TOLERANCE_PCT}, \"floor_ms\": {AUTO_TOLERANCE_FLOOR_MS}}},\n  \"bnl_comparison_budget\": {BNL_COMPARISON_BUDGET},\n  \"bnl_skipped_cells\": [{}],\n  \"max_auto_penalty_pct\": {max_penalty_pct:.2},\n  \"auto_all_within_tolerance\": {all_within},\n  \"matrix\": {{\n{matrix}\n  }}\n}}\n",
        aos_ns / block_ns,
        skipped.join(", "),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!(
            "wrote {path} (block speedup {:.2}x, max auto penalty {max_penalty_pct:.2}%, auto within tolerance: {all_within})",
            aos_ns / block_ns
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if !skipped.is_empty() {
        println!(
            "note: BNL skipped on {} cells past the {BNL_COMPARISON_BUDGET}-comparison budget: {}",
            skipped.len(),
            skipped.join(", ")
        );
    }
}

criterion_group!(
    benches,
    bench_block_vs_aos,
    bench_kernel_matrix,
    bench_kernels,
    bench_bnl_scaling,
    bench_parallel
);
criterion_main!(benches);
