//! Skyline kernel shoot-out: BNL (the paper's choice) vs SFS vs
//! divide-and-conquer, across the three classic data distributions.
//!
//! This is the evidence behind DESIGN.md's "local kernel" ablation: on
//! correlated (QWS-like) data the kernels are close; on anti-correlated data
//! BNL's quadratic window behaviour shows, which is why bounding the window
//! matters for the memory model even though the paper picked BNL "for its
//! simplicity".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
use skyline_algos::bnl::{bnl_skyline, BnlConfig};
use skyline_algos::dnc::dnc_skyline;
use skyline_algos::parallel::{parallel_skyline, parallel_skyline_partitioned};
use skyline_algos::partition::AnglePartitioner;
use skyline_algos::point::Point;
use skyline_algos::sfs::sfs_skyline;

fn dataset(dist: Distribution, n: usize, d: usize) -> Vec<Point> {
    generate_synthetic(&SyntheticConfig::new(n, d, dist))
        .points()
        .to_vec()
}

fn bench_kernels(c: &mut Criterion) {
    let n = 4000;
    let d = 4;
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        let pts = dataset(dist, n, d);
        let mut group = c.benchmark_group(format!("kernel/{}", dist.name()));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("bnl", n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::default()).len());
        });
        group.bench_with_input(BenchmarkId::new("bnl_w256", n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::with_window(256)).len());
        });
        group.bench_with_input(BenchmarkId::new("sfs", n), &pts, |b, pts| {
            b.iter(|| sfs_skyline(pts).len());
        });
        group.bench_with_input(BenchmarkId::new("dnc", n), &pts, |b, pts| {
            b.iter(|| dnc_skyline(pts).len());
        });
        group.finish();
    }
}

fn bench_bnl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnl_scaling_qws");
    group.sample_size(10);
    for n in [1000usize, 4000, 16000] {
        let pts = qws_data::generate_qws(&qws_data::QwsConfig::new(n, 6))
            .points()
            .to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::default()).len());
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let pts = qws_data::generate_qws(&qws_data::QwsConfig::new(30_000, 6))
        .points()
        .to_vec();
    let mut group = c.benchmark_group("parallel_skyline");
    group.sample_size(10);
    group.bench_function("single_thread", |b| {
        b.iter(|| bnl_skyline(&pts, &BnlConfig::default()).len());
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("block_chunks", threads),
            &threads,
            |b, &t| b.iter(|| parallel_skyline(&pts, t).len()),
        );
    }
    let part = AnglePartitioner::fit_quantile(&pts, 16).unwrap();
    group.bench_function("angular_chunks_8t", |b| {
        b.iter(|| parallel_skyline_partitioned(&pts, &part, 8).0.len());
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_bnl_scaling, bench_parallel);
criterion_main!(benches);
