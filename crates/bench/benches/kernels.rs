//! Skyline kernel shoot-out: BNL (the paper's choice) vs SFS vs
//! divide-and-conquer, across the three classic data distributions.
//!
//! This is the evidence behind DESIGN.md's "local kernel" ablation: on
//! correlated (QWS-like) data the kernels are close; on anti-correlated data
//! BNL's quadratic window behaviour shows, which is why bounding the window
//! matters for the memory model even though the paper picked BNL "for its
//! simplicity".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
use skyline_algos::block::PointBlock;
use skyline_algos::bnl::{bnl_skyline, BnlConfig};
use skyline_algos::dnc::dnc_skyline;
use skyline_algos::dominance::dominates;
use skyline_algos::kernel::dominated_count;
use skyline_algos::parallel::{parallel_skyline, parallel_skyline_partitioned};
use skyline_algos::partition::AnglePartitioner;
use skyline_algos::point::Point;
use skyline_algos::sfs::sfs_skyline;
use std::time::Instant;

fn dataset(dist: Distribution, n: usize, d: usize) -> Vec<Point> {
    generate_synthetic(&SyntheticConfig::new(n, d, dist))
        .points()
        .to_vec()
}

fn bench_kernels(c: &mut Criterion) {
    let n = 4000;
    let d = 4;
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::AntiCorrelated,
    ] {
        let pts = dataset(dist, n, d);
        let mut group = c.benchmark_group(format!("kernel/{}", dist.name()));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("bnl", n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::default()).len());
        });
        group.bench_with_input(BenchmarkId::new("bnl_w256", n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::with_window(256)).len());
        });
        group.bench_with_input(BenchmarkId::new("sfs", n), &pts, |b, pts| {
            b.iter(|| sfs_skyline(pts).len());
        });
        group.bench_with_input(BenchmarkId::new("dnc", n), &pts, |b, pts| {
            b.iter(|| dnc_skyline(pts).len());
        });
        group.finish();
    }
}

fn bench_bnl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnl_scaling_qws");
    group.sample_size(10);
    for n in [1000usize, 4000, 16000] {
        let pts = qws_data::generate_qws(&qws_data::QwsConfig::new(n, 6))
            .points()
            .to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| bnl_skyline(pts, &BnlConfig::default()).len());
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let pts = qws_data::generate_qws(&qws_data::QwsConfig::new(30_000, 6))
        .points()
        .to_vec();
    let mut group = c.benchmark_group("parallel_skyline");
    group.sample_size(10);
    group.bench_function("single_thread", |b| {
        b.iter(|| bnl_skyline(&pts, &BnlConfig::default()).len());
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("block_chunks", threads),
            &threads,
            |b, &t| b.iter(|| parallel_skyline(&pts, t).expect("parallel skyline").len()),
        );
    }
    let part = AnglePartitioner::fit_quantile(&pts, 16).unwrap();
    group.bench_function("angular_chunks_8t", |b| {
        b.iter(|| {
            parallel_skyline_partitioned(&pts, &part, 8)
                .expect("partitioned skyline")
                .0
                .len()
        });
    });
    group.finish();
}

// ---- columnar vs AoS dominance sweep (the PointBlock tentpole) ----
//
// One dominance sweep — count how many of `n` candidates a fixed window
// dominates — at d=6 over 100k anti-correlated services. The AoS baseline
// chases one heap pointer per point; the block kernel streams one flat
// buffer. Median wall times land in `BENCH_kernels.json` at the workspace
// root (skipped in `--test` smoke runs so the committed baseline survives).

const SWEEP_N: usize = 100_000;
const SWEEP_D: usize = 6;
const SWEEP_WINDOW: usize = 512;

fn aos_sweep(window: &[Point], candidates: &[Point]) -> usize {
    candidates
        .iter()
        .filter(|c| window.iter().any(|w| dominates(w, c)))
        .count()
}

fn median_wall_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    black_box(f()); // warm-up
    let mut v: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn bench_block_vs_aos(c: &mut Criterion) {
    let pts = dataset(Distribution::AntiCorrelated, SWEEP_N, SWEEP_D);
    let window: Vec<Point> = pts.iter().take(SWEEP_WINDOW).cloned().collect();
    let block = PointBlock::from_points(&pts).expect("uniform dims");
    let window_block = PointBlock::from_points(&window).expect("uniform dims");

    let mut group = c.benchmark_group(format!("block_vs_aos/anti_d{SWEEP_D}_n{SWEEP_N}"));
    group.sample_size(10);
    group.bench_function("aos_dominance_sweep", |b| {
        b.iter(|| aos_sweep(&window, &pts));
    });
    group.bench_function("block_dominance_sweep", |b| {
        b.iter(|| dominated_count(&block, &window_block));
    });
    group.finish();

    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let aos_ns = median_wall_ns(5, || aos_sweep(&window, &pts));
    let block_ns = median_wall_ns(5, || dominated_count(&block, &window_block));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let json = format!(
        "{{\n  \"bench\": \"kernels/block_vs_aos\",\n  \"distribution\": \"anti-correlated\",\n  \"n\": {SWEEP_N},\n  \"d\": {SWEEP_D},\n  \"window\": {SWEEP_WINDOW},\n  \"aos_sweep_ns\": {aos_ns:.0},\n  \"block_sweep_ns\": {block_ns:.0},\n  \"speedup\": {:.2}\n}}\n",
        aos_ns / block_ns
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path} (block speedup {:.2}x)", aos_ns / block_ns),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_block_vs_aos,
    bench_kernels,
    bench_bnl_scaling,
    bench_parallel
);
criterion_main!(benches);
