//! One Criterion bench per paper figure, at reduced scale so `cargo bench`
//! terminates quickly. The full-scale numbers come from the `fig*` binaries
//! (see EXPERIMENTS.md); these benches measure the *wall-clock* cost of the
//! real execution behind each figure and guard against performance
//! regressions in the pipeline itself.
//!
//! | bench | figure |
//! |---|---|
//! | `fig4_theorems` | Fig. 4 / Theorems 1–2 |
//! | `fig5_dimension_cell/*` | Fig. 5(a)/(b) cells |
//! | `fig6_server_cell/*` | Fig. 6 cells |
//! | `fig7_optimality_cell` | Fig. 7 (optimality is computed inside the run) |

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_skyline::prelude::*;
use mr_skyline_bench::master_dataset;
use rand::{rngs::StdRng, SeedableRng};
use skyline_algos::metrics::{dominance_ability_angle, empirical_dominance_ability};
use skyline_algos::partition::{AnglePartitioner, Bounds};
use skyline_algos::point::Point;

const BENCH_N: usize = 8000;

fn bench_fig4(c: &mut Criterion) {
    let bounds = Bounds::zero_to(2.0, 2);
    let part = AnglePartitioner::fit(&bounds, 4).unwrap();
    c.bench_function("fig4_theorems", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let s = Point::new(u64::MAX, vec![0.5, 0.1]);
            let mc = empirical_dominance_ability(&s, &part, 2.0, 20_000, &mut rng);
            let exact = dominance_ability_angle(0.5, 0.1, 1.0);
            (mc - exact).abs()
        });
    });
}

fn bench_fig5(c: &mut Criterion) {
    let master = master_dataset(BENCH_N);
    let mut group = c.benchmark_group("fig5_dimension_cell");
    group.sample_size(10);
    for d in [2usize, 6, 10] {
        let data = master.project(d);
        for alg in Algorithm::paper_trio() {
            group.bench_with_input(BenchmarkId::new(alg.name(), d), &data, |b, data| {
                let job = SkylineJob::new(alg, 8);
                b.iter(|| job.run(data).global_skyline.len());
            });
        }
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let data = master_dataset(BENCH_N).project(10);
    let mut group = c.benchmark_group("fig6_server_cell");
    group.sample_size(10);
    for servers in [4usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(servers), &data, |b, data| {
            let job = SkylineJob::new(Algorithm::MrAngle, servers);
            b.iter(|| job.run(data).metrics.sim_total);
        });
    }
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let data = master_dataset(1000).project(6);
    let mut group = c.benchmark_group("fig7_optimality_cell");
    group.sample_size(10);
    for alg in Algorithm::paper_trio() {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &data, |b, data| {
            let job = SkylineJob::new(alg, 8);
            b.iter(|| job.run(data).optimality);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_fig6, bench_fig7);
criterion_main!(benches);
