//! Filter-broadcast shoot-out: what the map-side filter sweep buys on the
//! shuffle, measured on the paper's worst case — anti-correlated data,
//! where nearly every row survives its local skyline and the shuffle is
//! the bottleneck.
//!
//! Runs the full MR-Angle pipeline at n=100k for d ∈ {2, 4, 6} with the
//! broadcast filter + witness pruning on (the defaults) and off, and
//! compares end-to-end wall time, shuffled rows, and shuffle bytes.
//!
//! Outside `--test` smoke runs the guard *asserts* that filtering cuts the
//! d=4 shuffle-candidate count by at least 2× and writes the numbers to
//! `BENCH_filter.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mr_skyline::{AlgoConfig, Algorithm, SkylineJob, SkylineRunReport};
use qws_data::{generate_synthetic, Dataset, Distribution, SyntheticConfig};
use std::time::Instant;

const N: usize = 100_000;
const SERVERS: usize = 8;

/// Minimum shuffle-row reduction the filter must deliver at d=4.
const MIN_SHUFFLE_REDUCTION: f64 = 2.0;

fn dataset(d: usize) -> Dataset {
    generate_synthetic(&SyntheticConfig::new(N, d, Distribution::AntiCorrelated))
}

/// The pipeline defaults: auto-sized broadcast filter + witness pruning.
fn filtered() -> AlgoConfig {
    AlgoConfig::default()
}

/// The plain pipeline: every row is shuffled.
fn unfiltered() -> AlgoConfig {
    AlgoConfig {
        filter_k: Some(0),
        sector_prune: false,
        ..AlgoConfig::default()
    }
}

fn run(data: &Dataset, config: AlgoConfig) -> SkylineRunReport {
    SkylineJob::new(Algorithm::MrAngle, SERVERS)
        .with_config(config)
        .run(data)
}

/// Rows that actually enter the shuffle: everything the filter let through.
fn shuffled_rows(report: &SkylineRunReport) -> u64 {
    N as u64 - report.rows_filtered
}

fn median_wall_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    f(); // warm-up
    let mut v: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn bench_filter(c: &mut Criterion) {
    for d in [2usize, 4, 6] {
        let data = dataset(d);
        let mut group = c.benchmark_group(format!("filter/anti_n{N}_d{d}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("unfiltered", N), &data, |b, data| {
            b.iter(|| run(data, unfiltered()).global_skyline.len());
        });
        group.bench_with_input(BenchmarkId::new("filtered", N), &data, |b, data| {
            b.iter(|| run(data, filtered()).global_skyline.len());
        });
        group.finish();
    }

    if std::env::args().any(|a| a == "--test") {
        return;
    }

    let mut rows = String::new();
    let mut d4_reduction = 0.0f64;
    for d in [2usize, 4, 6] {
        let data = dataset(d);
        let plain = run(&data, unfiltered());
        let fast = run(&data, filtered());
        assert_eq!(
            plain.global_skyline.len(),
            fast.global_skyline.len(),
            "filtering changed the d={d} skyline"
        );
        let plain_ns = median_wall_ns(3, || run(&data, unfiltered()).global_skyline.len());
        let fast_ns = median_wall_ns(3, || run(&data, filtered()).global_skyline.len());
        let reduction = shuffled_rows(&plain) as f64 / shuffled_rows(&fast) as f64;
        if d == 4 {
            d4_reduction = reduction;
        }
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"d\": {d}, \"skyline\": {}, \"shuffled_rows_unfiltered\": {}, \
             \"shuffled_rows_filtered\": {}, \"shuffle_row_reduction\": {reduction:.2}, \
             \"shuffle_bytes_unfiltered\": {}, \"shuffle_bytes_filtered\": {}, \
             \"sector_pruned_partitions\": {}, \"wall_ns_unfiltered\": {plain_ns:.0}, \
             \"wall_ns_filtered\": {fast_ns:.0}}}",
            fast.global_skyline.len(),
            shuffled_rows(&plain),
            shuffled_rows(&fast),
            plain.metrics.shuffle_bytes,
            fast.metrics.shuffle_bytes,
            fast.sector_pruned_partitions,
        ));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_filter.json");
    let json = format!(
        "{{\n  \"bench\": \"filter/mr_angle_broadcast_filter\",\n  \"distribution\": \
         \"anti-correlated\",\n  \"n\": {N},\n  \"servers\": {SERVERS},\n  \
         \"min_shuffle_reduction_d4\": {MIN_SHUFFLE_REDUCTION},\n  \"dims\": [\n{rows}\n  ]\n}}\n"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (d=4 shuffle-row reduction {d4_reduction:.2}x)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    assert!(
        d4_reduction >= MIN_SHUFFLE_REDUCTION,
        "broadcast filter only cut the d=4 shuffle by {d4_reduction:.2}x \
         (needs {MIN_SHUFFLE_REDUCTION}x)\n{json}"
    );
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
