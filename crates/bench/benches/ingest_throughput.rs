//! Ingest throughput: what the buffer-reusing line reader and the chunked
//! streaming loader cost per row on a realistic QWS-shaped CSV.
//!
//! The seed reader allocated a fresh `String` for every line of the file;
//! this PR's `ingest_rows` pump reuses one line buffer for the whole file
//! and backs both the whole-file and the chunked loaders. The bench
//! generates a synthetic QWS catalogue CSV (9 QoS fields + a service
//! name, the WSDL column shape `load_qws_file` parses) in the temp dir
//! once, then measures:
//!
//! * `whole_file` — `load_qws_file`, one `Dataset` for the whole file;
//! * `chunked_4k` — `load_qws_file_chunked` with 4096-row chunks, the
//!   bounded-memory streaming path a 10M-row ingest rides.
//!
//! Both must agree on the row count; the chunked path holds at most one
//! chunk of rows resident.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsky_trace::Tracer;
use qws_data::ingest::IngestOptions;
use qws_data::{load_qws_file, load_qws_file_chunked};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Rows in the generated catalogue — large enough that per-line
/// allocation shows up, small enough for criterion's sample loop.
const ROWS: usize = 50_000;
const CHUNK_ROWS: usize = 4_096;

/// Writes a deterministic QWS-shaped CSV: 9 in-range QoS fields plus a
/// service name per line, with the comment/blank noise real files carry.
fn write_catalogue() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrsky-bench-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("qws_{ROWS}.csv"));
    let mut text = String::with_capacity(ROWS * 96);
    text.push_str("# synthetic QWS catalogue for the ingest bench\n");
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut unit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for row in 0..ROWS {
        if row % 1000 == 0 {
            text.push('\n'); // blank-line noise the reader must skip
        }
        // response, availability, throughput, successability, reliability,
        // compliance, best practices, latency, documentation, name
        let _ = writeln!(
            text,
            "{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},Service{row}",
            20.0 + 4000.0 * unit(),
            7.0 + 93.0 * unit(),
            0.1 + 43.0 * unit(),
            8.0 + 92.0 * unit(),
            33.0 + 56.0 * unit(),
            33.0 + 67.0 * unit(),
            5.0 + 90.0 * unit(),
            0.1 + 4989.0 * unit(),
            1.0 + 95.0 * unit(),
        );
    }
    std::fs::write(&path, text).expect("write catalogue");
    path
}

fn bench_ingest(c: &mut Criterion) {
    let path = write_catalogue();
    let tracer = Tracer::disabled();
    let opts = IngestOptions::default();

    let whole = load_qws_file(&path).expect("whole-file load").0;
    let mut chunked_rows = 0usize;
    let mut max_resident = 0usize;
    load_qws_file_chunked(&path, &tracer, &opts, CHUNK_ROWS, &mut |chunk| {
        chunked_rows += chunk.block.len();
        max_resident = max_resident.max(chunk.block.len());
    })
    .expect("chunked load");
    assert_eq!(whole.len(), ROWS, "generator row count");
    assert_eq!(chunked_rows, ROWS, "chunked loader dropped rows");
    assert!(
        max_resident <= CHUNK_ROWS,
        "a chunk exceeded its row bound: {max_resident}"
    );

    let mut group = c.benchmark_group(format!("ingest/qws_n{ROWS}"));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("whole_file", ROWS), &path, |b, path| {
        b.iter(|| load_qws_file(path).expect("load").0.len());
    });
    group.bench_with_input(BenchmarkId::new("chunked_4k", ROWS), &path, |b, path| {
        b.iter(|| {
            let mut rows = 0usize;
            load_qws_file_chunked(path, &tracer, &opts, CHUNK_ROWS, &mut |chunk| {
                rows += chunk.block.len();
            })
            .expect("load");
            rows
        });
    });
    group.finish();

    let _ = std::fs::remove_dir_all(path.parent().expect("bench dir"));
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
