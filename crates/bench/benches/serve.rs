//! Serving-layer latency: simulated request latency quantiles for the
//! `mrsky-serve` request path, fault-free and under heavy chaos.
//!
//! The service runs on a simulated microsecond clock — every attempt
//! ticks a fixed service cost and every retry charges its jittered
//! backoff — so per-request `sim_latency` is *deterministic* for a
//! given workload seed and fault plan. That makes the p50/p99 written
//! to `BENCH_serve.json` machine-independent: they measure protocol
//! cost (retries, backoff, breaker windows), not host speed, and are
//! pinned in `benches/bench-baselines.json` for the bench gate.
//!
//! The latencies are folded through the mergeable Greenwald–Khanna
//! [`QuantileSketch`] — the same sketch the trace registry ships — so
//! the bench also exercises the sketch on a real latency distribution.
//! Criterion separately times wall-clock throughput of the full
//! drive-and-verify loop (machine-dependent, not gated).

use criterion::{criterion_group, criterion_main, Criterion};
use mrsky_chaos::FaultPlan;
use mrsky_serve::{load_script, run_load, LoadgenConfig, ServeConfig, SkylineService};
use mrsky_trace::sketch::QuantileSketch;
use mrsky_trace::{EventKind, Tracer};

const OPS: u64 = 800;
const SEED: u64 = 7;

/// Drives the seeded workload against a fresh service and returns
/// (mutation sketch, query sketch, ok-mutation count) of simulated
/// request latencies in seconds, taken from the `request` trace
/// events (one per request, by construction).
fn latency_sketches(plan: FaultPlan) -> (QuantileSketch, QuantileSketch, u64) {
    let tracer = Tracer::in_memory();
    let service = SkylineService::new(ServeConfig::default(), plan, tracer);
    let ops = load_script(&LoadgenConfig {
        seed: SEED,
        operations: OPS,
        ..LoadgenConfig::default()
    });
    let report = run_load(&service, &ops);
    assert_eq!(
        report.incorrect, 0,
        "bench run served an incorrect response"
    );
    assert_eq!(report.final_mismatches, 0, "bench run failed to converge");
    let mut mutations = QuantileSketch::new(0.001);
    let mut queries = QuantileSketch::new(0.001);
    for event in service.tracer().drain() {
        if let EventKind::Request {
            op, sim_latency, ..
        } = &event.kind
        {
            if op == "query" {
                queries.observe(*sim_latency);
            } else {
                mutations.observe(*sim_latency);
            }
        }
    }
    (mutations, queries, report.mutations_ok)
}

fn quantile_ms(sketch: &QuantileSketch, q: f64) -> f64 {
    sketch.quantile(q).unwrap_or(0.0) * 1e3
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("serve/load_n{OPS}"));
    group.sample_size(10);
    group.bench_function("fault_free", |b| {
        b.iter(|| {
            let service =
                SkylineService::new(ServeConfig::default(), FaultPlan::off(), Tracer::disabled());
            let ops = load_script(&LoadgenConfig {
                seed: SEED,
                operations: OPS,
                ..LoadgenConfig::default()
            });
            run_load(&service, &ops).mutations_ok
        });
    });
    group.bench_function("heavy_chaos", |b| {
        b.iter(|| {
            let service = SkylineService::new(
                ServeConfig::default(),
                FaultPlan::heavy(SEED),
                Tracer::disabled(),
            );
            let ops = load_script(&LoadgenConfig {
                seed: SEED,
                operations: OPS,
                ..LoadgenConfig::default()
            });
            run_load(&service, &ops).mutations_ok
        });
    });
    group.finish();

    if std::env::args().any(|a| a == "--test") {
        return;
    }

    let (free_mut, free_q, free_ok) = latency_sketches(FaultPlan::off());
    let (chaos_mut, chaos_q, chaos_ok) = latency_sketches(FaultPlan::heavy(SEED));

    let json = format!(
        "{{\n  \"bench\": \"serve/load\",\n  \"seed\": {SEED},\n  \"operations\": {OPS},\n  \
         \"fault_free\": {{\n    \"mutations_ok\": {free_ok},\n    \
         \"mutation_p50_ms\": {:.4},\n    \"mutation_p99_ms\": {:.4},\n    \
         \"query_p50_ms\": {:.4},\n    \"query_p99_ms\": {:.4}\n  }},\n  \
         \"heavy_chaos\": {{\n    \"mutations_ok\": {chaos_ok},\n    \
         \"mutation_p50_ms\": {:.4},\n    \"mutation_p99_ms\": {:.4},\n    \
         \"query_p50_ms\": {:.4},\n    \"query_p99_ms\": {:.4}\n  }}\n}}\n",
        quantile_ms(&free_mut, 0.5),
        quantile_ms(&free_mut, 0.99),
        quantile_ms(&free_q, 0.5),
        quantile_ms(&free_q, 0.99),
        quantile_ms(&chaos_mut, 0.5),
        quantile_ms(&chaos_mut, 0.99),
        quantile_ms(&chaos_q, 0.5),
        quantile_ms(&chaos_q, 0.99),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
