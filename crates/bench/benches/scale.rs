//! Raw-scale shoot-out for the 10M-row machinery: the zero-copy block
//! shuffle vs the seed row-per-value shuffle, reduce-input spilling vs
//! resident reduce inputs, work stealing vs static chunking under skew,
//! and one honest end-to-end run at n=10M anti-correlated d=4.
//!
//! Outside `--test` smoke runs, the guard *asserts* the two structural
//! wins this PR claims —
//!
//! * the block shuffle moves the same bytes at least 2× faster than
//!   shipping one row per shuffled value (the per-value allocation,
//!   routing, and re-concatenation overhead this PR removes), and
//! * spilling reduce inputs to disk strictly lowers the peak resident
//!   reduce-input gauge while leaving the skyline bit-identical —
//!
//! and *records* the executor-skew and end-to-end numbers. Wall-clock
//! speedup from work stealing is only asserted on multi-core hosts: on a
//! single hardware thread both executors serialize onto one core, so the
//! bench instead proves rebalancing structurally (the straggler chunk's
//! tasks really execute on several workers). Results land in
//! `BENCH_scale.json` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mini_mapreduce::pool::run_indexed_mode;
use mini_mapreduce::shuffle::{shuffle_with, KeyRouter};
use mini_mapreduce::{ExecutorMode, OwnedMergeFn};
use mr_skyline::{AlgoConfig, Algorithm, SkylineJob, SkylineRunReport};
use qws_data::{generate_synthetic, Dataset, Distribution, SyntheticConfig};
use skyline_algos::block::PointBlock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Rows for the shuffle-phase and peak-memory comparisons.
const N_SHUFFLE: usize = 1_000_000;
/// Rows for the end-to-end completion run (the ISSUE's headline scale).
const N_END2END: usize = 10_000_000;
const D: usize = 4;
const SERVERS: usize = 8;
/// Logical partitions (shuffle keys) — the pipeline's `2 × servers`.
const PARTITIONS: usize = 16;
/// Rows per simulated map task, and rows per emitted block — the
/// runtime's `BLOCK_ROWS` granularity.
const SPLIT_ROWS: usize = 4_096;
const BLOCK_ROWS: usize = 256;

/// Minimum shuffle-phase speedup of blocks over row-per-value.
const MIN_SHUFFLE_SPEEDUP: f64 = 2.0;

fn dataset(n: usize) -> Dataset {
    generate_synthetic(&SyntheticConfig::new(n, D, Distribution::AntiCorrelated))
}

fn router() -> KeyRouter<u64> {
    Arc::new(|k: &u64, reducers: usize| (*k as usize) % reducers)
}

fn merge_fn() -> OwnedMergeFn<PointBlock> {
    Arc::new(|acc: &mut PointBlock, next: PointBlock| {
        if acc.dim() == next.dim() {
            acc.append_owned(next).expect("dims match");
            None
        } else {
            Some(next)
        }
    })
}

/// The partition a row lands in — a cheap stand-in for the real angular
/// router so the bench isolates shuffle mechanics from trigonometry.
fn partition_of(row: usize) -> u64 {
    (row % PARTITIONS) as u64
}

/// Seed semantics: every row crosses the shuffle as its own single-row
/// `PointBlock` value, and the reducer re-concatenates the shard list.
/// Returns total rows regrouped (the anti-elision checksum).
fn shuffle_rows(block: &PointBlock) -> usize {
    let map_outputs: Vec<(Vec<(u64, PointBlock)>, u64)> = (0..block.len())
        .step_by(SPLIT_ROWS)
        .map(|start| {
            let end = (start + SPLIT_ROWS).min(block.len());
            let mut pairs = Vec::with_capacity(end - start);
            let mut bytes = 0u64;
            for i in start..end {
                let mut one = PointBlock::with_capacity(D, 1);
                one.push_row_from(block, i);
                bytes += one.wire_size() as u64;
                pairs.push((partition_of(i), one));
            }
            (pairs, bytes)
        })
        .collect();
    regroup(shuffle_with(map_outputs, SERVERS, &router(), None))
}

/// This PR's semantics: rows are packed into `BLOCK_ROWS` blocks map-side
/// and concatenated by ownership transfer *during* the shuffle.
fn shuffle_blocks(block: &PointBlock) -> usize {
    let merge = merge_fn();
    let map_outputs: Vec<(Vec<(u64, PointBlock)>, u64)> = (0..block.len())
        .step_by(SPLIT_ROWS)
        .map(|start| {
            let end = (start + SPLIT_ROWS).min(block.len());
            let mut open: BTreeMap<u64, PointBlock> = BTreeMap::new();
            let mut pairs = Vec::new();
            let mut bytes = 0u64;
            for i in start..end {
                let pid = partition_of(i);
                let b = open
                    .entry(pid)
                    .or_insert_with(|| PointBlock::with_capacity(D, BLOCK_ROWS));
                b.push_row_from(block, i);
                if b.len() >= BLOCK_ROWS {
                    let full = open.remove(&pid).expect("just inserted");
                    bytes += full.wire_size() as u64;
                    pairs.push((pid, full));
                }
            }
            for (pid, b) in open {
                bytes += b.wire_size() as u64;
                pairs.push((pid, b));
            }
            (pairs, bytes)
        })
        .collect();
    regroup(shuffle_with(map_outputs, SERVERS, &router(), Some(&merge)))
}

/// The reducer-side concatenation both variants pay: fold every key group
/// into one block (a no-op move when the shuffle already merged).
fn regroup(inputs: Vec<mini_mapreduce::shuffle::ReduceInput<u64, PointBlock>>) -> usize {
    let mut total = 0usize;
    for input in inputs {
        for (_key, values) in input.groups {
            let mut acc = PointBlock::new(D);
            for v in values {
                acc.append_owned(v).expect("same dim");
            }
            total += acc.len();
        }
    }
    total
}

fn run(data: &Dataset, config: AlgoConfig) -> SkylineRunReport {
    SkylineJob::new(Algorithm::MrAngle, SERVERS)
        .with_config(config)
        .run(data)
}

fn seed_config() -> AlgoConfig {
    AlgoConfig {
        owned_shuffle: false,
        static_executor: true,
        ..AlgoConfig::default()
    }
}

fn spilled_config(dir: &std::path::Path) -> AlgoConfig {
    AlgoConfig {
        // Well under the ~900 KB each of the 16 reducer inputs carries at
        // n=1M, so every partition-job input really takes the disk path.
        spill_budget_bytes: Some(1 << 18),
        spill_dir: Some(dir.to_path_buf()),
        ..AlgoConfig::default()
    }
}

fn fingerprint(report: &SkylineRunReport) -> Vec<u64> {
    let mut ids: Vec<u64> = report
        .global_skyline
        .iter()
        .map(skyline_algos::Point::id)
        .collect();
    ids.sort_unstable();
    ids
}

fn median_wall_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    f(); // warm-up
    let mut v: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Skewed pool workload: the first contiguous chunk owns all the heavy
/// tasks. Returns (wall seconds, distinct workers that ran heavy tasks).
fn skewed_pool_run(mode: ExecutorMode) -> (f64, usize) {
    const TASKS: usize = 64;
    const THREADS: usize = 4;
    const HEAVY: usize = TASKS / THREADS; // exactly the static chunk of worker 0
    let heavy_workers: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
    let sink = AtomicU64::new(0);
    let spin = |iters: u64| {
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        sink.fetch_xor(acc, Ordering::Relaxed);
    };
    let t = Instant::now();
    run_indexed_mode(TASKS, THREADS, mode, |i| {
        if i < HEAVY {
            let me = std::thread::current().id();
            let mut seen = heavy_workers.lock().expect("poisoned");
            if !seen.contains(&me) {
                seen.push(me);
            }
            spin(3_000_000);
        } else {
            spin(10_000);
        }
    });
    let wall = t.elapsed().as_secs_f64();
    let workers = heavy_workers.lock().expect("poisoned").len();
    (wall, workers)
}

fn bench_scale(c: &mut Criterion) {
    // Criterion smoke at a size the harness can iterate comfortably.
    let small = PointBlock::from_points(dataset(100_000).points()).expect("uniform dims");
    let mut group = c.benchmark_group("scale/shuffle_n100k_d4");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("row_per_value", 100_000),
        &small,
        |b, d| {
            b.iter(|| shuffle_rows(d));
        },
    );
    group.bench_with_input(BenchmarkId::new("block_owned", 100_000), &small, |b, d| {
        b.iter(|| shuffle_blocks(d));
    });
    group.finish();

    if std::env::args().any(|a| a == "--test") {
        return;
    }

    // --- Shuffle phase: blocks + owned merge vs row-per-value, n=1M ---
    let data = dataset(N_SHUFFLE);
    let rows = PointBlock::from_points(data.points()).expect("uniform dims");
    assert_eq!(
        shuffle_rows(&rows),
        shuffle_blocks(&rows),
        "shuffle variants disagree on regrouped row count"
    );
    let row_ns = median_wall_ns(3, || shuffle_rows(&rows));
    let block_ns = median_wall_ns(3, || shuffle_blocks(&rows));
    let shuffle_speedup = row_ns / block_ns;

    // --- Peak reduce-input memory: resident vs spilled, n=1M pipeline ---
    let spill_dir = std::env::temp_dir().join(format!("mrsky-bench-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let t = Instant::now();
    let resident = run(&data, AlgoConfig::default());
    let resident_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let spilled = run(&data, spilled_config(&spill_dir));
    let spilled_s = t.elapsed().as_secs_f64();
    assert_eq!(
        fingerprint(&resident),
        fingerprint(&spilled),
        "spilling changed the n=1M skyline"
    );
    let spilled_inputs = spilled
        .metrics
        .reduce
        .counters
        .get("spilled_inputs")
        .copied()
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&spill_dir);

    // --- Executor skew: work stealing vs static chunks ---
    let (static_wall, static_workers) = skewed_pool_run(ExecutorMode::Static);
    let (steal_wall, steal_workers) = skewed_pool_run(ExecutorMode::WorkStealing);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    // --- End-to-end completion at n=10M, scaled vs seed semantics ---
    drop(rows);
    drop(data);
    let big = dataset(N_END2END);
    // One untimed warm-up, then *alternating* timed runs with a per-config
    // minimum: the first 10M-row runs pay allocator page-faulting for
    // multi-GB working sets that later runs recycle, so successive runs of
    // the *same* config drift faster by 2× — ordering the configs
    // back-to-back would attribute that drift to whichever ran first.
    let _ = run(&big, AlgoConfig::default());
    let mut scaled_s = f64::INFINITY;
    let mut seed_s = f64::INFINITY;
    let mut scaled = None;
    let mut seed = None;
    for _ in 0..3 {
        let t = Instant::now();
        scaled = Some(run(&big, AlgoConfig::default()));
        scaled_s = scaled_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        seed = Some(run(&big, seed_config()));
        seed_s = seed_s.min(t.elapsed().as_secs_f64());
    }
    let scaled = scaled.expect("three timed rounds ran");
    let seed = seed.expect("three timed rounds ran");
    assert_eq!(
        fingerprint(&scaled),
        fingerprint(&seed),
        "scaled pipeline changed the n=10M skyline"
    );

    let json = format!(
        "{{\n  \"bench\": \"scale/raw_scale_machinery\",\n  \"distribution\": \"anti-correlated\",\n  \
         \"d\": {D},\n  \"servers\": {SERVERS},\n  \"host_threads\": {host_threads},\n  \
         \"shuffle_phase\": {{\n    \"n\": {N_SHUFFLE},\n    \"wall_ns_row_per_value\": {row_ns:.0},\n    \
         \"wall_ns_block_owned\": {block_ns:.0},\n    \"block_speedup\": {shuffle_speedup:.2},\n    \
         \"min_block_speedup\": {MIN_SHUFFLE_SPEEDUP}\n  }},\n  \
         \"peak_memory\": {{\n    \"n\": {N_SHUFFLE},\n    \
         \"peak_reduce_in_resident_bytes\": {},\n    \"peak_reduce_in_spilled_bytes\": {},\n    \
         \"spilled_inputs\": {spilled_inputs},\n    \"wall_s_resident\": {resident_s:.2},\n    \
         \"wall_s_spilled\": {spilled_s:.2}\n  }},\n  \
         \"executor_skew\": {{\n    \"wall_s_static\": {static_wall:.3},\n    \
         \"wall_s_stealing\": {steal_wall:.3},\n    \"heavy_chunk_workers_static\": {static_workers},\n    \
         \"heavy_chunk_workers_stealing\": {steal_workers}\n  }},\n  \
         \"end_to_end\": {{\n    \"n\": {N_END2END},\n    \"skyline\": {},\n    \
         \"merge_candidates\": {},\n    \"shuffle_bytes\": {},\n    \
         \"peak_map_out_bytes\": {},\n    \"peak_reduce_in_bytes\": {},\n    \
         \"wall_s_scaled\": {scaled_s:.2},\n    \"wall_s_seed\": {seed_s:.2}\n  }}\n}}\n",
        resident.peak_reduce_in_bytes(),
        spilled.peak_reduce_in_bytes(),
        scaled.global_skyline.len(),
        scaled.merge_candidates(),
        scaled.metrics.shuffle_bytes,
        scaled.peak_map_out_bytes(),
        scaled.peak_reduce_in_bytes(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "wrote {path} (shuffle speedup {shuffle_speedup:.2}x, \
             reduce-in peak {} -> {} B)",
            resident.peak_reduce_in_bytes(),
            spilled.peak_reduce_in_bytes()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    assert!(
        shuffle_speedup >= MIN_SHUFFLE_SPEEDUP,
        "block shuffle only {shuffle_speedup:.2}x over row-per-value \
         (needs {MIN_SHUFFLE_SPEEDUP}x)\n{json}"
    );
    assert!(spilled_inputs > 0, "spill path never fired at n=1M\n{json}");
    assert!(
        spilled.peak_reduce_in_bytes() < resident.peak_reduce_in_bytes(),
        "spilling did not lower the peak reduce-input gauge\n{json}"
    );
    assert!(
        steal_workers >= 2,
        "work stealing left the straggler chunk on one worker\n{json}"
    );
    assert_eq!(
        static_workers, 1,
        "static chunking unexpectedly split the straggler chunk\n{json}"
    );
    // Wall-clock skew speedup is only meaningful with real parallelism.
    if host_threads >= 2 {
        assert!(
            steal_wall <= static_wall * 1.10,
            "work stealing slower than static chunks under skew on a \
             {host_threads}-thread host\n{json}"
        );
    }
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
