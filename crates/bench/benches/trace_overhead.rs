//! Observability overhead guard: instrumentation must be free when nobody
//! is watching.
//!
//! Every hot kernel in `skyline_algos` now carries `mrsky-trace` recording
//! sites (an atomic-flag check per call when the registry is disabled, a
//! sharded-mutex update when enabled). This bench measures `block_bnl` at
//! d=6 over 100k correlated (QWS-like) services — the paper's central
//! workload shape — three ways:
//!
//! * registry **disabled** (the default everyone pays),
//! * registry **enabled** (what `--metrics` costs),
//! * a disabled [`Tracer`] emit site in a tight loop (what a
//!   `tracer.emit(..)` costs when no sink is attached).
//!
//! Outside `--test` smoke runs the guard *asserts* that the enabled
//! registry stays within 5% of the disabled path on the kernel, and writes
//! the medians to `BENCH_trace.json` at the workspace root.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mrsky_trace::{EventKind, Tracer};
use qws_data::{generate_synthetic, Distribution, SyntheticConfig};
use skyline_algos::block::PointBlock;
use skyline_algos::bnl::BnlConfig;
use skyline_algos::kernel::block_bnl_stats;
use std::time::Instant;

const N: usize = 100_000;
const D: usize = 6;

/// Maximum relative cost of an enabled metrics registry on the BNL kernel.
const MAX_OVERHEAD_PCT: f64 = 5.0;

fn dataset() -> PointBlock {
    let pts = generate_synthetic(&SyntheticConfig::new(N, D, Distribution::Correlated));
    PointBlock::from_points(pts.points()).expect("uniform dims")
}

fn median_wall_ns(samples: usize, mut f: impl FnMut() -> usize) -> f64 {
    black_box(f()); // warm-up
    let mut v: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn bench_trace_overhead(c: &mut Criterion) {
    let block = dataset();
    let cfg = BnlConfig::default();
    let registry = mrsky_trace::metrics();
    registry.set_enabled(false);

    let mut group = c.benchmark_group(format!("trace_overhead/corr_d{D}_n{N}"));
    group.sample_size(10);
    group.bench_function("block_bnl_registry_disabled", |b| {
        b.iter(|| block_bnl_stats(&block, &cfg).0.len());
    });
    group.bench_function("block_bnl_registry_enabled", |b| {
        registry.set_enabled(true);
        b.iter(|| block_bnl_stats(&block, &cfg).0.len());
        registry.set_enabled(false);
    });
    let tracer = Tracer::disabled();
    group.bench_function("disabled_tracer_emit_x1k", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                tracer.emit(|| EventKind::KernelRun {
                    kernel: "bnl".to_string(),
                    input: i,
                    output: 0,
                    comparisons: 0,
                    passes: 1,
                    elapsed_us: 0,
                });
            }
            0usize
        });
    });
    group.finish();

    if std::env::args().any(|a| a == "--test") {
        return;
    }
    registry.set_enabled(false);
    let disabled_ns = median_wall_ns(7, || block_bnl_stats(&block, &cfg).0.len());
    registry.set_enabled(true);
    let enabled_ns = median_wall_ns(7, || block_bnl_stats(&block, &cfg).0.len());
    registry.set_enabled(false);
    let emit_ns = median_wall_ns(7, || {
        for i in 0..1_000_000u64 {
            // black_box defeats dead-code elimination of the disabled
            // branch, so this times the real per-site flag check
            black_box(&tracer).emit(|| EventKind::KernelRun {
                kernel: "bnl".to_string(),
                input: black_box(i),
                output: 0,
                comparisons: 0,
                passes: 1,
                elapsed_us: 0,
            });
        }
        0
    }) / 1e6;
    let overhead_pct = (enabled_ns - disabled_ns) / disabled_ns * 100.0;

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    let json = format!(
        "{{\n  \"bench\": \"trace/block_bnl_overhead\",\n  \"distribution\": \"correlated\",\n  \"n\": {N},\n  \"d\": {D},\n  \"registry_disabled_ns\": {disabled_ns:.0},\n  \"registry_enabled_ns\": {enabled_ns:.0},\n  \"enabled_overhead_pct\": {overhead_pct:.2},\n  \"disabled_tracer_emit_ns\": {emit_ns:.2},\n  \"max_overhead_pct\": {MAX_OVERHEAD_PCT}\n}}\n"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (enabled-registry overhead {overhead_pct:+.2}%)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT,
        "enabled metrics registry costs {overhead_pct:.2}% on block_bnl \
         (budget {MAX_OVERHEAD_PCT}%)\n{json}"
    );
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
