//! Model checks of the serving-layer protocols: the circuit breaker's
//! state machine and the admission gate's bounded accounting, explored
//! under the instrumented scheduler. Compiled only with
//! `RUSTFLAGS="--cfg mrsky_model"` (the CI `model-check` job).
#![cfg(mrsky_model)]

use mrsky_model::sync::{scope, AtomicUsize, Ordering};
use mrsky_model::{check_opts, CheckOptions};
use mrsky_serve::{
    Admission, AdmissionConfig, AdmissionGate, BreakerConfig, BreakerState, CircuitBreaker,
};

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 3,
        random_walks: 16,
        max_iterations: 10_000,
        ..CheckOptions::default()
    }
}

fn cfg() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 2,
        open_seconds: 1.0,
        half_open_probes: 1,
    }
}

/// Two threads reporting failures concurrently: the breaker trips to
/// open exactly once (one caller observes the closed->open transition),
/// on every explored schedule.
#[test]
fn model_breaker_trips_exactly_once_under_racing_failures() {
    let report = check_opts(&opts(), || {
        let b = CircuitBreaker::new(cfg());
        let trips = AtomicUsize::new(0);
        scope(|s| {
            let h = s.spawn(|| {
                if b.on_failure(0, false).is_some() {
                    trips.fetch_add(1, Ordering::Relaxed);
                }
                if b.on_failure(0, false).is_some() {
                    trips.fetch_add(1, Ordering::Relaxed);
                }
            });
            if b.on_failure(0, false).is_some() {
                trips.fetch_add(1, Ordering::Relaxed);
            }
            let _ = h.join();
        });
        assert_eq!(b.state(), BreakerState::Open, "3 failures >= threshold 2");
        assert_eq!(
            trips.load(Ordering::Relaxed),
            1,
            "exactly one caller sees the closed->open transition"
        );
    });
    assert!(report.executions > 1);
}

/// Racing admits after the open window: at most one caller is admitted
/// as the half-open probe, the rest are rejected — the probe slot never
/// double-admits.
#[test]
fn model_half_open_admits_a_single_probe() {
    check_opts(&opts(), || {
        let b = CircuitBreaker::new(cfg());
        b.on_failure(0, false);
        b.on_failure(0, false);
        let probes = AtomicUsize::new(0);
        scope(|s| {
            let h = s.spawn(|| {
                if matches!(b.try_admit(2_000_000).0, Admission::Probe) {
                    probes.fetch_add(1, Ordering::Relaxed);
                }
            });
            if matches!(b.try_admit(2_000_000).0, Admission::Probe) {
                probes.fetch_add(1, Ordering::Relaxed);
            }
            let _ = h.join();
        });
        assert_eq!(
            probes.load(Ordering::Relaxed),
            1,
            "exactly one probe admitted while half-open"
        );
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // the probe's success closes the breaker again
        let t = b.on_success(true).expect("probe success closes");
        assert_eq!(
            (t.from, t.to),
            (BreakerState::HalfOpen, BreakerState::Closed)
        );
    });
}

/// A probe failure and a late stale failure racing: the breaker ends
/// open (probe failure reopens) and never closes from a stale report.
#[test]
fn model_probe_failure_vs_late_failure_race() {
    check_opts(&opts(), || {
        let b = CircuitBreaker::new(cfg());
        b.on_failure(0, false);
        b.on_failure(0, false);
        assert!(matches!(b.try_admit(2_000_000).0, Admission::Probe));
        scope(|s| {
            let h = s.spawn(|| {
                // late completion of a pre-trip request
                let _ = b.on_failure(2_000_001, false);
            });
            let t = b.on_failure(2_000_001, true);
            assert!(t.is_some(), "probe failure reopens");
            let _ = h.join();
        });
        assert_eq!(b.state(), BreakerState::Open);
        assert!(matches!(b.try_admit(2_000_500).0, Admission::Reject));
    });
}

/// The admission gate under concurrent acquire/release: never exceeds
/// capacity, sheds are counted, and slots are restored on drop.
#[test]
fn model_admission_gate_is_bounded_and_leak_free() {
    check_opts(&opts(), || {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_in_flight: 1,
            max_queue_depth: 0,
        });
        let admitted = AtomicUsize::new(0);
        scope(|s| {
            let h = s.spawn(|| {
                if let Ok(p) = gate.try_acquire() {
                    admitted.fetch_add(1, Ordering::Relaxed);
                    assert!(gate.in_flight() <= 1, "capacity respected");
                    drop(p);
                }
            });
            if let Ok(p) = gate.try_acquire() {
                admitted.fetch_add(1, Ordering::Relaxed);
                assert!(gate.in_flight() <= 1, "capacity respected");
                drop(p);
            }
            let _ = h.join();
        });
        let admitted = admitted.load(Ordering::Relaxed);
        assert!(admitted >= 1, "at least one caller admitted");
        assert_eq!(
            admitted as u64 + gate.shed_total(),
            2,
            "every caller either admitted or counted as shed"
        );
        assert_eq!(gate.in_flight(), 0, "all permits released");
    });
}
