//! The fault-hardened multi-tenant skyline service.
//!
//! One [`SkylineService`] owns a [`SkybandBuffer`] per tenant plus the
//! hardening layers around the request path:
//!
//! - **admission control** — a bounded [`AdmissionGate`] sheds mutations
//!   with a typed [`ServeError::Overloaded`] instead of queueing;
//! - **retries** — transient faults (driven by the [`FaultPlan`]) are
//!   retried with seeded, jittered exponential backoff, every delay
//!   charged against a simulated clock and a per-request deadline;
//! - **circuit breakers** — per tenant and operation class; an open
//!   mutation breaker rejects with [`ServeError::BreakerOpen`], an open
//!   query breaker degrades queries to the last consistent snapshot with
//!   a staleness marker instead of failing them;
//! - **dead-lettering** — poison mutations (non-finite payloads, or
//!   injected `PoisonRow` faults) divert to a bounded [`DeadLetter`]
//!   queue and return [`ServeError::PoisonMutation`];
//! - **checkpointing** — every `checkpoint_every` applied mutations the
//!   tenant's live store is written through a [`CheckpointStore`], with
//!   the applied-sequence high-water mark in a sidecar, so a killed
//!   service resumes by replaying only unacknowledged mutations.
//!
//! Time is fully simulated: the service owns a microsecond counter that
//! requests advance (service ticks + backoff charges), so latencies,
//! breaker windows, and deadline enforcement are deterministic for a
//! given plan/seed. Every decision on the path emits a trace event
//! (`request`, `shed`, `breaker_transition`, `skyband_repair`,
//! `stale_served`).

use crate::admission::{AdmissionConfig, AdmissionGate, ShedReason};
use crate::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, Transition};
use crate::error::ServeError;
use mr_skyline::checkpoint::CheckpointStore;
use mrsky_chaos::{DeadLetter, FaultKind, FaultPlan, FaultSite, KillSwitch, KILL_PAYLOAD};
use mrsky_model::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use mrsky_trace::{EventKind, Tracer};
use skyline_algos::point::Point;
use skyline_algos::skyband::{DeleteOutcome, SkybandBuffer, SkybandStats};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::Arc;

/// Simulated microseconds one execution attempt costs on the request
/// path, before any backoff charges.
const SERVICE_TICK_US: u64 = 100;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// `k` for each tenant's k-skyband retention buffer: deletions repair
    /// from retained candidates until the `k`-th deletion since the last
    /// rebuild forces a recompute.
    pub skyband_k: usize,
    /// Per-request deadline in simulated seconds; backoff charges count
    /// against it.
    pub deadline_seconds: f64,
    /// Service-side retry budget (0 = use the fault plan's
    /// `max_attempts`). A budget *below* the plan's makes
    /// retries-exhausted reachable — the plan only guarantees
    /// convergence within its own budget.
    pub max_attempts: u32,
    /// Circuit-breaker tuning, shared by every tenant/operation breaker.
    pub breaker: BreakerConfig,
    /// Admission limits for the mutation path.
    pub admission: AdmissionConfig,
    /// Dead-letter budget before `over_budget()` trips.
    pub max_dead_letters: usize,
    /// Applied mutations between checkpoints (0 disables checkpointing
    /// even when a store is attached).
    pub checkpoint_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            skyband_k: 4,
            deadline_seconds: 30.0,
            max_attempts: 0,
            breaker: BreakerConfig::default(),
            admission: AdmissionConfig::default(),
            max_dead_letters: 64,
            checkpoint_every: 8,
        }
    }
}

/// One mutation on a tenant's live set. Inserts are idempotent by id;
/// deleting an id that is not live is an acknowledged no-op, which is
/// what makes at-least-once replay after a crash safe.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Add (or re-add, a no-op) a point.
    Insert {
        /// Point id, unique per tenant.
        id: u64,
        /// Coordinates; non-finite values dead-letter the mutation.
        coords: Vec<f64>,
    },
    /// Remove a point by id.
    Delete {
        /// Point id to remove.
        id: u64,
    },
}

impl Mutation {
    fn op(&self) -> &'static str {
        match self {
            Mutation::Insert { .. } => "insert",
            Mutation::Delete { .. } => "delete",
        }
    }
}

/// Acknowledgement for an applied mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationReceipt {
    /// Attempts consumed (0 when the mutation was a replay skip).
    pub attempts: u32,
    /// The mutation's sequence number was at or below the tenant's
    /// applied high-water mark, so it was skipped (already applied
    /// before a crash).
    pub replayed: bool,
    /// Points promoted into the skyline by a deletion repair.
    pub promoted: u64,
}

/// A served skyline query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The skyline, sorted by point id.
    pub skyline: Vec<Point>,
    /// True when this is the last consistent snapshot rather than a
    /// fresh read (breaker open, or a repair in flight).
    pub stale: bool,
    /// Mutations applied since the served snapshot was taken (0 for
    /// fresh reads).
    pub lag: u64,
}

/// Aggregate counters for smoke checks and CI assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Mutations acknowledged (including replay skips).
    pub mutations_ok: u64,
    /// Queries answered fresh.
    pub queries_fresh: u64,
    /// Queries served from a stale snapshot.
    pub queries_stale: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests rejected by an open breaker.
    pub breaker_rejected: u64,
    /// Breaker trips (closed -> open transitions).
    pub breaker_opens: u64,
    /// Mutations diverted to the dead-letter queue.
    pub dead_lettered: u64,
    /// Requests that exhausted their retry budget.
    pub retries_exhausted: u64,
    /// Requests that blew their deadline budget.
    pub deadline_exceeded: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Per-tenant skyband repair stats, summed.
    pub skyband: SkybandStats,
}

struct Snapshot {
    points: Vec<Point>,
    /// Applied-mutation count when the snapshot was taken.
    version: u64,
}

/// Per-request context threaded through the rejection helpers.
struct ReqCtx<'a> {
    tenant: &'a str,
    op: &'a str,
    seq: u64,
    start_us: u64,
    probe: bool,
}

struct TenantCell {
    index: u64,
    band: Mutex<SkybandBuffer>,
    snapshot: Mutex<Snapshot>,
    repairing: AtomicBool,
    mutation_breaker: CircuitBreaker,
    query_breaker: CircuitBreaker,
    /// Highest mutation sequence applied (0 = none).
    applied_seq: AtomicU64,
    /// Total mutations applied (snapshot lag is measured against this).
    applied_count: AtomicU64,
    since_checkpoint: AtomicU64,
    query_seq: AtomicU64,
}

/// The service. See the module docs for the request-path contract.
pub struct SkylineService {
    cfg: ServeConfig,
    plan: FaultPlan,
    tracer: Tracer,
    sim_us: AtomicU64,
    gate: AdmissionGate,
    dlq: Mutex<DeadLetter>,
    tenants: Mutex<BTreeMap<String, Arc<TenantCell>>>,
    next_index: AtomicU64,
    store: Option<CheckpointStore>,
    kill: Option<Arc<KillSwitch>>,
    mutations_ok: AtomicU64,
    queries_fresh: AtomicU64,
    queries_stale: AtomicU64,
    breaker_rejected: AtomicU64,
    breaker_opens: AtomicU64,
    dead_lettered: AtomicU64,
    retries_exhausted: AtomicU64,
    deadline_exceeded: AtomicU64,
    checkpoints: AtomicU64,
}

impl SkylineService {
    /// Creates a service with no checkpoint store.
    pub fn new(cfg: ServeConfig, plan: FaultPlan, tracer: Tracer) -> Self {
        let max_dl = cfg.max_dead_letters;
        let admission = cfg.admission;
        Self {
            cfg,
            plan,
            tracer,
            sim_us: AtomicU64::new(0),
            gate: AdmissionGate::new(admission),
            dlq: Mutex::new(DeadLetter::with_budget(max_dl)),
            tenants: Mutex::new(BTreeMap::new()),
            next_index: AtomicU64::new(0),
            store: None,
            kill: None,
            mutations_ok: AtomicU64::new(0),
            queries_fresh: AtomicU64::new(0),
            queries_stale: AtomicU64::new(0),
            breaker_rejected: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
            retries_exhausted: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        }
    }

    /// Attaches a checkpoint store and restores any prior state from it:
    /// each checkpointed tenant comes back with its full live store and
    /// applied-sequence high-water mark, so the driver can replay its
    /// mutation log and have already-applied entries skip as no-ops.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the store.
    pub fn with_store(mut self, store: CheckpointStore) -> std::io::Result<Self> {
        let restored = store.restore()?;
        let marks = read_tenant_marks(store.dir());
        let mut tenants = BTreeMap::new();
        let mut max_index = 0u64;
        for (index, points) in restored {
            let Some((name, applied_seq, applied_count)) = marks.get(&index).cloned() else {
                continue;
            };
            max_index = max_index.max(index + 1);
            let mut band = SkybandBuffer::new(self.cfg.skyband_k);
            for p in points {
                // restored points were validated on the way in
                let _ = band.insert(p);
            }
            let snapshot = Snapshot {
                points: band.skyline(),
                version: applied_count,
            };
            let cell = Arc::new(TenantCell {
                index,
                band: Mutex::new(band),
                snapshot: Mutex::new(snapshot),
                repairing: AtomicBool::new(false),
                mutation_breaker: CircuitBreaker::new(self.cfg.breaker),
                query_breaker: CircuitBreaker::new(self.cfg.breaker),
                applied_seq: AtomicU64::new(applied_seq),
                applied_count: AtomicU64::new(applied_count),
                since_checkpoint: AtomicU64::new(0),
                query_seq: AtomicU64::new(0),
            });
            tenants.insert(name, cell);
        }
        *self.tenants.lock() = tenants;
        self.next_index = AtomicU64::new(max_index);
        self.store = Some(store);
        Ok(self)
    }

    /// Arms a crash simulator: the service panics with
    /// [`KILL_PAYLOAD`] after the switch's checkpoint-write budget.
    #[must_use]
    pub fn with_kill_switch(mut self, kill: Arc<KillSwitch>) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.sim_us.load(Ordering::Acquire)
    }

    /// The tracer the service emits request-path events into (so a
    /// driver can drain recorded events, including after a simulated
    /// crash).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The dead-letter queue's rendered report.
    pub fn dead_letter_report(&self) -> String {
        self.dlq.lock().render()
    }

    /// Number of dead-lettered mutations.
    pub fn dead_letter_len(&self) -> usize {
        self.dlq.lock().len()
    }

    /// Aggregate counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        let mut skyband = SkybandStats::default();
        for cell in self.tenants.lock().values() {
            let s = cell.band.lock().stats();
            skyband.repairs_from_buffer += s.repairs_from_buffer;
            skyband.underflow_rebuilds += s.underflow_rebuilds;
            skyband.discarded_inserts += s.discarded_inserts;
            skyband.evictions += s.evictions;
        }
        ServeStats {
            mutations_ok: self.mutations_ok.load(Ordering::Acquire),
            queries_fresh: self.queries_fresh.load(Ordering::Acquire),
            queries_stale: self.queries_stale.load(Ordering::Acquire),
            shed: self.gate.shed_total(),
            breaker_rejected: self.breaker_rejected.load(Ordering::Acquire),
            breaker_opens: self.breaker_opens.load(Ordering::Acquire),
            dead_lettered: self.dead_lettered.load(Ordering::Acquire),
            retries_exhausted: self.retries_exhausted.load(Ordering::Acquire),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Acquire),
            checkpoints: self.checkpoints.load(Ordering::Acquire),
            skyband,
        }
    }

    /// Tenant names currently known to the service.
    pub fn tenants(&self) -> Vec<String> {
        self.tenants.lock().keys().cloned().collect()
    }

    fn retry_budget(&self) -> u32 {
        if self.cfg.max_attempts == 0 {
            self.plan.max_attempts
        } else {
            self.cfg.max_attempts
        }
    }

    fn tick(&self, us: u64) -> u64 {
        self.sim_us.fetch_add(us, Ordering::AcqRel) + us
    }

    fn cell(&self, tenant: &str) -> Arc<TenantCell> {
        let mut g = self.tenants.lock();
        if let Some(c) = g.get(tenant) {
            return Arc::clone(c);
        }
        let index = self.next_index.fetch_add(1, Ordering::AcqRel);
        let cell = Arc::new(TenantCell {
            index,
            band: Mutex::new(SkybandBuffer::new(self.cfg.skyband_k)),
            snapshot: Mutex::new(Snapshot {
                points: Vec::new(),
                version: 0,
            }),
            repairing: AtomicBool::new(false),
            mutation_breaker: CircuitBreaker::new(self.cfg.breaker),
            query_breaker: CircuitBreaker::new(self.cfg.breaker),
            applied_seq: AtomicU64::new(0),
            applied_count: AtomicU64::new(0),
            since_checkpoint: AtomicU64::new(0),
            query_seq: AtomicU64::new(0),
        });
        g.insert(tenant.to_string(), Arc::clone(&cell));
        cell
    }

    fn trace_transition(&self, tenant: &str, op: &str, t: Transition) {
        if t.to == BreakerState::Open {
            self.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        let (tenant, op) = (tenant.to_string(), op.to_string());
        self.tracer.emit(move || EventKind::BreakerTransition {
            tenant,
            op,
            from: t.from.as_str().to_string(),
            to: t.to.as_str().to_string(),
        });
    }

    fn trace_request(&self, tenant: &str, op: &str, outcome: &str, start_us: u64, attempts: u32) {
        let lat = (self.now_us().saturating_sub(start_us)) as f64 / 1e6;
        let (tenant, op, outcome) = (tenant.to_string(), op.to_string(), outcome.to_string());
        self.tracer.emit(move || EventKind::Request {
            tenant,
            op,
            outcome,
            sim_latency: lat,
            attempts: u64::from(attempts),
        });
    }

    /// Applies one mutation. `seq` is the caller's monotonically
    /// increasing per-tenant sequence number; replays (`seq` at or below
    /// the applied high-water mark) acknowledge without re-executing.
    ///
    /// # Errors
    ///
    /// Every rejection is a typed [`ServeError`]; see the module docs
    /// for the full decision path.
    ///
    /// # Panics
    ///
    /// With an armed kill switch, panics with [`KILL_PAYLOAD`] when the
    /// checkpoint-write budget is exhausted (the simulated crash).
    pub fn apply(
        &self,
        tenant: &str,
        seq: u64,
        mutation: &Mutation,
    ) -> Result<MutationReceipt, ServeError> {
        let op = mutation.op();
        let start_us = self.now_us();

        // Admission first: an overloaded service must shed before doing
        // any per-request work, or the gate is not protecting anything.
        let permit = match self.gate.try_acquire() {
            Ok(p) => p,
            Err(ShedReason::QueueDepth { depth }) => {
                let (t, o) = (tenant.to_string(), op.to_string());
                self.tracer.emit(move || EventKind::Shed {
                    tenant: t,
                    op: o,
                    reason: "queue-depth".to_string(),
                    depth,
                });
                self.trace_request(tenant, op, "rejected-overloaded", start_us, 0);
                return Err(ServeError::Overloaded {
                    tenant: tenant.to_string(),
                    op: "mutation".to_string(),
                    depth,
                });
            }
        };
        let _permit = permit;

        let cell = self.cell(tenant);
        if seq <= cell.applied_seq.load(Ordering::Acquire) {
            self.mutations_ok.fetch_add(1, Ordering::Relaxed);
            self.trace_request(tenant, op, "replayed", start_us, 0);
            return Ok(MutationReceipt {
                attempts: 0,
                replayed: true,
                promoted: 0,
            });
        }

        let now = self.now_us();
        let (admission, transition) = cell.mutation_breaker.try_admit(now);
        if let Some(t) = transition {
            self.trace_transition(tenant, "mutation", t);
        }
        let probe = match admission {
            Admission::Reject => {
                self.breaker_rejected.fetch_add(1, Ordering::Relaxed);
                self.trace_request(tenant, op, "rejected-breaker", start_us, 0);
                return Err(ServeError::BreakerOpen {
                    tenant: tenant.to_string(),
                    op: "mutation".to_string(),
                });
            }
            Admission::Probe => true,
            Admission::Allow => false,
        };

        let ctx = ReqCtx {
            tenant,
            op,
            seq,
            start_us,
            probe,
        };

        // Payload validation: a non-finite coordinate is poison from the
        // client, not a service fault — dead-letter it without charging
        // the breaker (the request path itself worked).
        let point = match mutation {
            Mutation::Insert { id, coords } => match Point::try_new(*id, coords.clone()) {
                Ok(p) => Some(p),
                Err(e) => return self.dead_letter(&cell, &ctx, e.to_string()),
            },
            Mutation::Delete { .. } => None,
        };

        // Retry loop: the fault plan decides, backoff charges sim time,
        // the deadline budget bounds the whole request.
        let mut attempts = 0u32;
        loop {
            let attempt = attempts;
            attempts += 1;
            self.tick(SERVICE_TICK_US);
            match self
                .plan
                .decide(FaultSite::ServeMutation, tenant, seq, attempt)
            {
                None => break,
                Some(FaultKind::PoisonRow) => {
                    return self.dead_letter(&cell, &ctx, "injected poison-row fault".to_string());
                }
                Some(_) => {
                    if attempts >= self.retry_budget() {
                        if let Some(t) = cell.mutation_breaker.on_failure(self.now_us(), probe) {
                            self.trace_transition(tenant, "mutation", t);
                        }
                        self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                        self.trace_request(tenant, op, "rejected-retries", start_us, attempts);
                        return Err(ServeError::RetriesExhausted {
                            tenant: tenant.to_string(),
                            op: "mutation".to_string(),
                            attempts,
                        });
                    }
                    let seed = self.plan.seed ^ fold(tenant) ^ seq;
                    let delay = self.plan.backoff.jittered_delay_seconds(attempt, seed);
                    self.tick((delay * 1e6) as u64);
                    let elapsed = (self.now_us().saturating_sub(start_us)) as f64 / 1e6;
                    if elapsed > self.cfg.deadline_seconds {
                        if let Some(t) = cell.mutation_breaker.on_failure(self.now_us(), probe) {
                            self.trace_transition(tenant, "mutation", t);
                        }
                        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        self.trace_request(tenant, op, "rejected-deadline", start_us, attempts);
                        return Err(ServeError::DeadlineExceeded {
                            tenant: tenant.to_string(),
                            op: "mutation".to_string(),
                            budget_seconds: self.cfg.deadline_seconds,
                        });
                    }
                }
            }
        }

        // Execute against the band. Deletions flip the repairing flag so
        // concurrent queries degrade to the snapshot instead of blocking
        // on (or observing) a half-repaired skyline.
        let promoted;
        {
            let result: Result<u64, ServeError> = match (mutation, point) {
                (Mutation::Insert { .. }, Some(p)) => {
                    let mut band = cell.band.lock();
                    band.insert(p).map(|_| 0).map_err(ServeError::from)
                }
                // Inserts always carry a point past validation; reaching
                // here without one is a payload defect, not a reason to
                // abort the service — divert it like any poison row.
                (Mutation::Insert { .. }, None) => {
                    return self.dead_letter(
                        &cell,
                        &ctx,
                        "insert payload missing after validation".to_string(),
                    );
                }
                (Mutation::Delete { id }, _) => {
                    cell.repairing.store(true, Ordering::Release);
                    let mut band = cell.band.lock();
                    let outcome = band.delete(*id);
                    drop(band);
                    cell.repairing.store(false, Ordering::Release);
                    match outcome {
                        DeleteOutcome::NotLive | DeleteOutcome::Discarded => Ok(0),
                        DeleteOutcome::FromBuffer { promoted } => {
                            let n = promoted.len() as u64;
                            let t = tenant.to_string();
                            self.tracer.emit(move || EventKind::SkybandRepair {
                                tenant: t,
                                promoted: n,
                                underflow: false,
                            });
                            Ok(n)
                        }
                        DeleteOutcome::UnderflowRebuild { promoted } => {
                            let n = promoted.len() as u64;
                            let t = tenant.to_string();
                            self.tracer.emit(move || EventKind::SkybandRepair {
                                tenant: t,
                                promoted: n,
                                underflow: true,
                            });
                            Ok(n)
                        }
                    }
                }
            };
            match result {
                Ok(n) => promoted = n,
                Err(e) => {
                    // Invalid payload (e.g. dimension mismatch): typed
                    // rejection; the service itself worked, so the
                    // breaker records a success.
                    if let Some(t) = cell.mutation_breaker.on_success(probe) {
                        self.trace_transition(tenant, "mutation", t);
                    }
                    self.trace_request(tenant, op, "rejected-invalid", start_us, attempts);
                    return Err(e);
                }
            }
        }

        let applied = cell.applied_count.fetch_add(1, Ordering::AcqRel) + 1;
        cell.applied_seq.store(seq, Ordering::Release);
        {
            let band = cell.band.lock();
            let mut snap = cell.snapshot.lock();
            snap.points = band.skyline();
            snap.version = applied;
        }
        if let Some(t) = cell.mutation_breaker.on_success(probe) {
            self.trace_transition(tenant, "mutation", t);
        }
        self.maybe_checkpoint(&cell);
        self.mutations_ok.fetch_add(1, Ordering::Relaxed);
        self.trace_request(tenant, op, "ok", start_us, attempts);
        Ok(MutationReceipt {
            attempts,
            replayed: false,
            promoted,
        })
    }

    fn dead_letter(
        &self,
        cell: &TenantCell,
        ctx: &ReqCtx<'_>,
        reason: String,
    ) -> Result<MutationReceipt, ServeError> {
        self.dlq.lock().push(ctx.tenant, ctx.seq, reason.clone());
        self.dead_lettered.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = cell.mutation_breaker.on_success(ctx.probe) {
            self.trace_transition(ctx.tenant, "mutation", t);
        }
        self.trace_request(ctx.tenant, ctx.op, "dead-letter", ctx.start_us, 1);
        Err(ServeError::PoisonMutation {
            tenant: ctx.tenant.to_string(),
            reason,
        })
    }

    fn maybe_checkpoint(&self, cell: &TenantCell) {
        if self.cfg.checkpoint_every == 0 {
            return;
        }
        let Some(store) = &self.store else { return };
        let since = cell.since_checkpoint.fetch_add(1, Ordering::AcqRel) + 1;
        if since < self.cfg.checkpoint_every {
            return;
        }
        cell.since_checkpoint.store(0, Ordering::Release);
        // A checkpoint is a *global* consistency point: the sidecar
        // records every tenant's applied-seq mark, so every tenant's
        // live store must be durable before the marks are — otherwise a
        // crash here would replay-skip mutations whose data was lost.
        let cells: Vec<Arc<TenantCell>> = self.tenants.lock().values().cloned().collect();
        for c in &cells {
            c.since_checkpoint.store(0, Ordering::Release);
            let live = c.band.lock().live_points();
            if store.write_partition(c.index, &live).is_err() {
                return;
            }
        }
        self.write_tenant_marks(store);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if let Some(kill) = &self.kill {
            if kill.record_write() {
                panic!("{KILL_PAYLOAD}");
            }
        }
    }

    fn write_tenant_marks(&self, store: &CheckpointStore) {
        let g = self.tenants.lock();
        let mut body = String::new();
        for (name, cell) in g.iter() {
            body.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                cell.index,
                name,
                cell.applied_seq.load(Ordering::Acquire),
                cell.applied_count.load(Ordering::Acquire),
            ));
        }
        drop(g);
        let tmp = store.dir().join("tenants.tsv.tmp");
        let dst = store.dir().join("tenants.tsv");
        let ok = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(body.as_bytes()).and_then(|()| f.sync_all()))
            .and_then(|()| std::fs::rename(&tmp, &dst));
        let _ = ok;
    }

    fn stale_serve(
        &self,
        cell: &TenantCell,
        tenant: &str,
        reason: &str,
        start_us: u64,
    ) -> QueryResponse {
        // Stale serves still cost a tick: simulated time must advance or
        // an open breaker's window would never elapse under a pure
        // query load.
        self.tick(SERVICE_TICK_US);
        let snap = cell.snapshot.lock();
        let lag = cell
            .applied_count
            .load(Ordering::Acquire)
            .saturating_sub(snap.version);
        let resp = QueryResponse {
            skyline: snap.points.clone(),
            stale: true,
            lag,
        };
        drop(snap);
        self.queries_stale.fetch_add(1, Ordering::Relaxed);
        let (t, r) = (tenant.to_string(), reason.to_string());
        self.tracer.emit(move || EventKind::StaleServed {
            tenant: t,
            reason: r,
            lag,
        });
        self.trace_request(tenant, "query", "stale", start_us, 0);
        resp
    }

    /// Serves the tenant's skyline. Fresh when the path is healthy;
    /// degrades to the last consistent snapshot (marked `stale`) when
    /// the query breaker is open or a deletion repair is in flight.
    ///
    /// # Errors
    ///
    /// [`ServeError::RetriesExhausted`] or
    /// [`ServeError::DeadlineExceeded`] when transient faults outlast
    /// the budgets *and* no snapshot degradation applies.
    pub fn query(&self, tenant: &str) -> Result<QueryResponse, ServeError> {
        let start_us = self.now_us();
        let cell = {
            let g = self.tenants.lock();
            g.get(tenant).map(Arc::clone)
        };
        let Some(cell) = cell else {
            // Unknown tenant: an empty skyline is a correct fresh answer.
            self.queries_fresh.fetch_add(1, Ordering::Relaxed);
            self.tick(SERVICE_TICK_US);
            self.trace_request(tenant, "query", "ok", start_us, 1);
            return Ok(QueryResponse {
                skyline: Vec::new(),
                stale: false,
                lag: 0,
            });
        };

        if cell.repairing.load(Ordering::Acquire) {
            return Ok(self.stale_serve(&cell, tenant, "repair-in-flight", start_us));
        }

        let now = self.now_us();
        let (admission, transition) = cell.query_breaker.try_admit(now);
        if let Some(t) = transition {
            self.trace_transition(tenant, "query", t);
        }
        let probe = match admission {
            Admission::Reject => {
                self.breaker_rejected.fetch_add(1, Ordering::Relaxed);
                return Ok(self.stale_serve(&cell, tenant, "breaker-open", start_us));
            }
            Admission::Probe => true,
            Admission::Allow => false,
        };

        let qseq = cell.query_seq.fetch_add(1, Ordering::AcqRel);
        let mut attempts = 0u32;
        loop {
            let attempt = attempts;
            attempts += 1;
            self.tick(SERVICE_TICK_US);
            match self
                .plan
                .decide(FaultSite::ServeQuery, tenant, qseq, attempt)
            {
                None => break,
                Some(_) => {
                    if attempts >= self.retry_budget() {
                        if let Some(t) = cell.query_breaker.on_failure(self.now_us(), probe) {
                            self.trace_transition(tenant, "query", t);
                        }
                        self.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                        self.trace_request(tenant, "query", "rejected-retries", start_us, attempts);
                        return Err(ServeError::RetriesExhausted {
                            tenant: tenant.to_string(),
                            op: "query".to_string(),
                            attempts,
                        });
                    }
                    let seed = self.plan.seed ^ fold(tenant) ^ qseq ^ 0x71_75_65_72_79;
                    let delay = self.plan.backoff.jittered_delay_seconds(attempt, seed);
                    self.tick((delay * 1e6) as u64);
                    let elapsed = (self.now_us().saturating_sub(start_us)) as f64 / 1e6;
                    if elapsed > self.cfg.deadline_seconds {
                        if let Some(t) = cell.query_breaker.on_failure(self.now_us(), probe) {
                            self.trace_transition(tenant, "query", t);
                        }
                        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        self.trace_request(
                            tenant,
                            "query",
                            "rejected-deadline",
                            start_us,
                            attempts,
                        );
                        return Err(ServeError::DeadlineExceeded {
                            tenant: tenant.to_string(),
                            op: "query".to_string(),
                            budget_seconds: self.cfg.deadline_seconds,
                        });
                    }
                }
            }
        }

        let applied = cell.applied_count.load(Ordering::Acquire);
        let skyline = {
            let band = cell.band.lock();
            let sky = band.skyline();
            let mut snap = cell.snapshot.lock();
            snap.points = sky.clone();
            snap.version = applied;
            sky
        };
        if let Some(t) = cell.query_breaker.on_success(probe) {
            self.trace_transition(tenant, "query", t);
        }
        self.queries_fresh.fetch_add(1, Ordering::Relaxed);
        self.trace_request(tenant, "query", "ok", start_us, attempts);
        Ok(QueryResponse {
            skyline,
            stale: false,
            lag: 0,
        })
    }
}

/// FNV-folds a tenant name into a jitter-seed contribution.
fn fold(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Reads `tenants.tsv` sidecar marks: `index -> (name, applied_seq,
/// applied_count)`. Missing or malformed files yield an empty map (a
/// fresh service).
fn read_tenant_marks(dir: &std::path::Path) -> BTreeMap<u64, (String, u64, u64)> {
    let Ok(text) = std::fs::read_to_string(dir.join("tenants.tsv")) else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.split('\t');
        let (Some(idx), Some(name), Some(seq), Some(count)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let (Ok(idx), Ok(seq), Ok(count)) =
            (idx.parse::<u64>(), seq.parse::<u64>(), count.parse::<u64>())
        else {
            continue;
        };
        out.insert(idx, (name.to_string(), seq, count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsky_chaos::SiteRule;

    fn svc(plan: FaultPlan) -> SkylineService {
        SkylineService::new(ServeConfig::default(), plan, Tracer::in_memory())
    }

    fn insert(id: u64, coords: &[f64]) -> Mutation {
        Mutation::Insert {
            id,
            coords: coords.to_vec(),
        }
    }

    #[test]
    fn inserts_deletes_and_queries_flow_fault_free() {
        let s = svc(FaultPlan::off());
        s.apply("acme", 1, &insert(1, &[1.0, 5.0])).expect("insert");
        s.apply("acme", 2, &insert(2, &[5.0, 1.0])).expect("insert");
        s.apply("acme", 3, &insert(3, &[4.0, 6.0])).expect("insert");
        let q = s.query("acme").expect("query");
        assert!(!q.stale);
        let ids: Vec<u64> = q.skyline.iter().map(Point::id).collect();
        assert_eq!(ids, vec![1, 2]);
        // deleting a skyline point repairs from the retained band
        let r = s
            .apply("acme", 4, &Mutation::Delete { id: 1 })
            .expect("delete");
        assert_eq!(r.promoted, 1, "point 3 promoted from the band");
        let ids: Vec<u64> = s
            .query("acme")
            .expect("query")
            .skyline
            .iter()
            .map(Point::id)
            .collect();
        assert_eq!(ids, vec![2, 3]);
        let stats = s.stats();
        assert_eq!(stats.mutations_ok, 4);
        assert_eq!(stats.skyband.repairs_from_buffer, 1);
    }

    #[test]
    fn replayed_sequence_numbers_are_skipped() {
        let s = svc(FaultPlan::off());
        s.apply("t", 1, &insert(1, &[1.0, 1.0])).expect("insert");
        let r = s
            .apply("t", 1, &insert(1, &[9.0, 9.0]))
            .expect("replay ack");
        assert!(r.replayed);
        // the replay did not overwrite the original point
        let q = s.query("t").expect("query");
        assert_eq!(q.skyline[0].coords(), &[1.0, 1.0]);
    }

    #[test]
    fn poison_payload_dead_letters_with_typed_error() {
        let s = svc(FaultPlan::off());
        let err = s
            .apply("t", 1, &insert(1, &[f64::NAN, 1.0]))
            .expect_err("NaN payload must dead-letter");
        assert!(matches!(err, ServeError::PoisonMutation { .. }));
        assert_eq!(s.dead_letter_len(), 1);
        assert_eq!(s.stats().dead_lettered, 1);
        // the tenant's live set is untouched
        assert!(s.query("t").expect("query").skyline.is_empty());
    }

    #[test]
    fn injected_poison_row_fault_dead_letters() {
        let mut plan = FaultPlan::off();
        plan.max_attempts = 4;
        plan.rules.push(SiteRule {
            site: FaultSite::ServeMutation,
            kind: FaultKind::PoisonRow,
            permille: 1000,
        });
        let s = svc(plan);
        let err = s
            .apply("t", 1, &insert(1, &[1.0, 1.0]))
            .expect_err("poisoned");
        assert!(matches!(err, ServeError::PoisonMutation { .. }));
        assert_eq!(s.dead_letter_len(), 1);
    }

    #[test]
    fn transient_faults_retry_to_success_and_charge_backoff() {
        let mut plan = FaultPlan::off();
        plan.max_attempts = 6;
        plan.rules.push(SiteRule {
            site: FaultSite::ServeMutation,
            kind: FaultKind::TransientError,
            permille: 400,
        });
        let s = svc(plan);
        let mut retried = 0u32;
        for seq in 1..=40u64 {
            let r = s
                .apply("t", seq, &insert(seq, &[seq as f64, 41.0 - seq as f64]))
                .expect("plan converges within its budget");
            retried += u32::from(r.attempts > 1);
        }
        assert!(retried > 0, "some mutation should have retried");
        assert!(
            s.now_us() > 40 * SERVICE_TICK_US,
            "backoff charged sim time"
        );
        assert_eq!(s.stats().mutations_ok, 40);
    }

    #[test]
    fn breaker_opens_under_sustained_faults_then_recovers() {
        // Every query attempt faults, and one 10s backoff charge blows
        // the 5s deadline — so each query fails, two failures trip the
        // breaker, and subsequent queries degrade to the snapshot.
        let mut plan = FaultPlan::off();
        plan.max_attempts = 8;
        plan.backoff.base_seconds = 10.0;
        plan.rules.push(SiteRule {
            site: FaultSite::ServeQuery,
            kind: FaultKind::TransientError,
            permille: 1000,
        });
        let cfg = ServeConfig {
            deadline_seconds: 5.0,
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_seconds: 1.0,
                half_open_probes: 1,
            },
            ..ServeConfig::default()
        };
        let s = SkylineService::new(cfg, plan, Tracer::in_memory());
        s.apply("t", 1, &insert(1, &[1.0, 2.0])).expect("insert ok");
        // two failing queries trip the query breaker
        for _ in 0..2 {
            let err = s.query("t").expect_err("faults blow the deadline");
            assert!(matches!(err, ServeError::DeadlineExceeded { .. }));
        }
        assert_eq!(s.stats().breaker_opens, 1);
        // while open, queries degrade to the stale snapshot
        let q = s.query("t").expect("degraded");
        assert!(q.stale);
        assert_eq!(q.skyline.len(), 1, "last consistent snapshot served");
        assert!(s.stats().queries_stale >= 1);
    }

    #[test]
    fn admission_gate_sheds_with_typed_overloaded() {
        let cfg = ServeConfig {
            admission: AdmissionConfig {
                max_in_flight: 0,
                max_queue_depth: 0,
            },
            ..ServeConfig::default()
        };
        let s = SkylineService::new(cfg, FaultPlan::off(), Tracer::in_memory());
        let err = s.apply("t", 1, &insert(1, &[1.0])).expect_err("gate full");
        assert!(matches!(err, ServeError::Overloaded { .. }));
        assert_eq!(s.stats().shed, 1);
    }

    #[test]
    fn checkpoint_restore_resumes_with_replay_skips() {
        let dir = std::env::temp_dir().join(format!(
            "mrsky-serve-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            checkpoint_every: 2,
            ..ServeConfig::default()
        };
        let store = CheckpointStore::open(&dir).expect("open store");
        let s = SkylineService::new(cfg.clone(), FaultPlan::off(), Tracer::in_memory())
            .with_store(store)
            .expect("attach store");
        for seq in 1..=6u64 {
            s.apply("t", seq, &insert(seq, &[seq as f64, 7.0 - seq as f64]))
                .expect("insert");
        }
        assert!(s.stats().checkpoints >= 3);
        let before = s.query("t").expect("query").skyline;
        drop(s);

        // "crash": rebuild from the store, replay the whole log
        let store = CheckpointStore::open(&dir).expect("reopen store");
        let s2 = SkylineService::new(cfg, FaultPlan::off(), Tracer::in_memory())
            .with_store(store)
            .expect("restore");
        let mut replays = 0;
        for seq in 1..=6u64 {
            let r = s2
                .apply("t", seq, &insert(seq, &[seq as f64, 7.0 - seq as f64]))
                .expect("replay");
            replays += u64::from(r.replayed);
        }
        assert_eq!(replays, 6, "every checkpointed mutation skips on replay");
        let after = s2.query("t").expect("query").skyline;
        assert_eq!(before, after, "restored skyline is bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dimension_mismatch_is_a_typed_invalid_rejection() {
        let s = svc(FaultPlan::off());
        s.apply("t", 1, &insert(1, &[1.0, 2.0])).expect("insert");
        let err = s.apply("t", 2, &insert(2, &[1.0])).expect_err("bad dim");
        assert!(matches!(err, ServeError::Skyline(_)));
        assert_eq!(err.outcome(), "rejected-invalid");
    }
}
