//! Typed request-path errors: every rejected request carries one of
//! these — the service never drops work silently.

use skyline_algos::SkylineError;
use std::fmt;

/// Why a serving-layer request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control shed the request: accepting it would have
    /// grown an unbounded queue.
    Overloaded {
        /// Tenant the request targeted.
        tenant: String,
        /// Operation class (`mutation`, `query`).
        op: String,
        /// Observed depth (in-flight + queued) at the shed decision.
        depth: u64,
    },
    /// The tenant/operation circuit breaker is open; mutations are
    /// rejected until the open window elapses and probing succeeds.
    BreakerOpen {
        /// Tenant whose breaker rejected the request.
        tenant: String,
        /// Operation class guarded.
        op: String,
    },
    /// The retry budget was exhausted by transient faults.
    RetriesExhausted {
        /// Tenant the request targeted.
        tenant: String,
        /// Operation class.
        op: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The per-request deadline budget ran out before the operation
    /// converged (backoff charges are counted against it).
    DeadlineExceeded {
        /// Tenant the request targeted.
        tenant: String,
        /// Operation class.
        op: String,
        /// Simulated seconds the request was allowed.
        budget_seconds: f64,
    },
    /// The mutation was poisoned (non-finite payload or an injected
    /// `PoisonRow` fault) and was diverted to the dead-letter queue.
    PoisonMutation {
        /// Tenant the mutation targeted.
        tenant: String,
        /// Why the payload was rejected.
        reason: String,
    },
    /// A skyline-layer invariant rejected the payload (e.g. dimension
    /// mismatch against the tenant's existing points).
    Skyline(SkylineError),
}

impl ServeError {
    /// Stable wire name for the error class, used as the `outcome`
    /// label on `request` trace events.
    pub fn outcome(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "rejected-overloaded",
            ServeError::BreakerOpen { .. } => "rejected-breaker",
            ServeError::RetriesExhausted { .. } => "rejected-retries",
            ServeError::DeadlineExceeded { .. } => "rejected-deadline",
            ServeError::PoisonMutation { .. } => "dead-letter",
            ServeError::Skyline(_) => "rejected-invalid",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { tenant, op, depth } => {
                write!(
                    f,
                    "overloaded: shed {op} for tenant {tenant} at depth {depth}"
                )
            }
            ServeError::BreakerOpen { tenant, op } => {
                write!(f, "circuit breaker open for tenant {tenant} {op}s")
            }
            ServeError::RetriesExhausted {
                tenant,
                op,
                attempts,
            } => write!(
                f,
                "{op} for tenant {tenant} failed after {attempts} attempt(s)"
            ),
            ServeError::DeadlineExceeded {
                tenant,
                op,
                budget_seconds,
            } => write!(
                f,
                "{op} for tenant {tenant} exceeded its {budget_seconds}s deadline"
            ),
            ServeError::PoisonMutation { tenant, reason } => {
                write!(f, "poison mutation for tenant {tenant}: {reason}")
            }
            ServeError::Skyline(e) => write!(f, "skyline error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SkylineError> for ServeError {
    fn from(e: SkylineError) -> Self {
        ServeError::Skyline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_distinct_wire_names() {
        let all = [
            ServeError::Overloaded {
                tenant: "t".into(),
                op: "mutation".into(),
                depth: 3,
            },
            ServeError::BreakerOpen {
                tenant: "t".into(),
                op: "query".into(),
            },
            ServeError::RetriesExhausted {
                tenant: "t".into(),
                op: "mutation".into(),
                attempts: 4,
            },
            ServeError::DeadlineExceeded {
                tenant: "t".into(),
                op: "mutation".into(),
                budget_seconds: 1.0,
            },
            ServeError::PoisonMutation {
                tenant: "t".into(),
                reason: "NaN".into(),
            },
            ServeError::Skyline(SkylineError::EmptyDataset),
        ];
        let mut names: Vec<_> = all.iter().map(ServeError::outcome).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }
}
