//! Admission control: bounded in-flight work plus queue-depth load
//! shedding. A request that cannot be admitted is *rejected with a
//! typed error* — nothing on the request path queues unboundedly.

use mrsky_model::sync::{AtomicU64, AtomicUsize, Ordering};

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Mutations allowed to execute concurrently.
    pub max_in_flight: usize,
    /// Mutations allowed to wait beyond the in-flight limit before the
    /// gate sheds.
    pub max_queue_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 8,
            max_queue_depth: 32,
        }
    }
}

/// Why the gate shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The in-flight limit and the bounded queue are both full.
    QueueDepth {
        /// Depth (in-flight + queued) observed at the decision.
        depth: u64,
    },
}

/// The admission gate. Depth accounting is two facade atomics; the
/// "queue" is purely a count — admitted requests execute immediately in
/// this synchronous service, so queued slots model the burst headroom
/// the caller is allowed before shedding starts.
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    in_flight: AtomicUsize,
    shed_total: AtomicU64,
}

/// RAII permit; releases its admission slot on drop.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

impl AdmissionGate {
    /// Creates a gate with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            in_flight: AtomicUsize::new(0),
            shed_total: AtomicU64::new(0),
        }
    }

    /// Capacity before shedding starts (in-flight + burst headroom).
    pub fn capacity(&self) -> usize {
        self.cfg.max_in_flight + self.cfg.max_queue_depth
    }

    /// Requests currently holding permits.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Requests shed over the gate's lifetime.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Acquire)
    }

    /// Tries to admit one request, returning a permit or the typed shed
    /// reason. Never blocks, never queues.
    ///
    /// # Errors
    ///
    /// [`ShedReason::QueueDepth`] when admitting would exceed the
    /// bounded capacity.
    pub fn try_acquire(&self) -> Result<Permit<'_>, ShedReason> {
        let cap = self.capacity();
        let mut cur = self.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= cap {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
                return Err(ShedReason::QueueDepth { depth: cur as u64 });
            }
            match self
                .in_flight
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(Permit { gate: self }),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_beyond_capacity_and_releases_on_drop() {
        let gate = AdmissionGate::new(AdmissionConfig {
            max_in_flight: 1,
            max_queue_depth: 1,
        });
        let p1 = gate.try_acquire().expect("first");
        let p2 = gate.try_acquire().expect("burst headroom");
        match gate.try_acquire() {
            Err(ShedReason::QueueDepth { depth }) => assert_eq!(depth, 2),
            Ok(_) => panic!("gate over capacity"),
        }
        assert_eq!(gate.shed_total(), 1);
        drop(p1);
        let _p3 = gate.try_acquire().expect("slot released");
        drop(p2);
        assert_eq!(gate.in_flight(), 1);
    }
}
