//! Per-tenant/operation circuit breaker: closed → open → half-open.
//!
//! Time is the caller's problem — every method takes `now_us` on the
//! *simulated* clock, so the breaker is deterministic under `SimClock`
//! and replayable from a trace. All state lives behind the
//! `mrsky_model::sync` facade, so the transition protocol is exercised
//! by the instrumented scheduler under `--cfg mrsky_model`
//! (`tests/model.rs`).
//!
//! Protocol:
//!
//! - **Closed**: requests flow; `failure_threshold` *consecutive*
//!   failures trip the breaker open for `open_seconds`.
//! - **Open**: requests are rejected until the window elapses; the
//!   first admission attempt after that moves to half-open and is
//!   admitted as a probe.
//! - **Half-open**: one probe in flight at a time; `half_open_probes`
//!   consecutive probe successes close the breaker, any probe failure
//!   re-opens it (with a fresh window).

use mrsky_model::sync::Mutex;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// Simulated seconds an open breaker rejects before probing.
    pub open_seconds: f64,
    /// Consecutive probe successes required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            open_seconds: 5.0,
            half_open_probes: 2,
        }
    }
}

/// The three externally visible breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests rejected until the window elapses.
    Open,
    /// Probing: limited requests test whether the fault cleared.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire name (`closed`, `open`, `half-open`).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A state change, reported so the caller can emit a
/// `breaker_transition` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed normally.
    Allow,
    /// Proceed, but report the outcome as a half-open probe.
    Probe,
    /// Reject without executing.
    Reject,
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    open_until_us: u64,
    probe_in_flight: bool,
    probe_successes: u32,
}

/// A deterministic circuit breaker (see module docs).
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until_us: 0,
                probe_in_flight: false,
                probe_successes: 0,
            }),
        }
    }

    /// The current state (for reporting; admission decisions should use
    /// [`CircuitBreaker::try_admit`]).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Decides whether a request may proceed at simulated time `now_us`.
    pub fn try_admit(&self, now_us: u64) -> (Admission, Option<Transition>) {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::Open => {
                if now_us >= g.open_until_us {
                    g.state = BreakerState::HalfOpen;
                    g.probe_in_flight = true;
                    g.probe_successes = 0;
                    (
                        Admission::Probe,
                        Some(Transition {
                            from: BreakerState::Open,
                            to: BreakerState::HalfOpen,
                        }),
                    )
                } else {
                    (Admission::Reject, None)
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight {
                    (Admission::Reject, None)
                } else {
                    g.probe_in_flight = true;
                    (Admission::Probe, None)
                }
            }
        }
    }

    /// Records a successful request (`probe` = admitted as
    /// [`Admission::Probe`]).
    pub fn on_success(&self, probe: bool) -> Option<Transition> {
        let mut g = self.inner.lock();
        if probe && g.state == BreakerState::HalfOpen {
            g.probe_in_flight = false;
            g.probe_successes += 1;
            if g.probe_successes >= self.cfg.half_open_probes {
                g.state = BreakerState::Closed;
                g.consecutive_failures = 0;
                return Some(Transition {
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Closed,
                });
            }
            return None;
        }
        g.consecutive_failures = 0;
        None
    }

    /// Records a failed request at simulated time `now_us`.
    pub fn on_failure(&self, now_us: u64, probe: bool) -> Option<Transition> {
        let mut g = self.inner.lock();
        let open_until = now_us + (self.cfg.open_seconds * 1e6) as u64;
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.cfg.failure_threshold {
                    g.state = BreakerState::Open;
                    g.open_until_us = open_until;
                    Some(Transition {
                        from: BreakerState::Closed,
                        to: BreakerState::Open,
                    })
                } else {
                    None
                }
            }
            BreakerState::HalfOpen if probe => {
                g.state = BreakerState::Open;
                g.open_until_us = open_until;
                g.probe_in_flight = false;
                g.consecutive_failures = 0;
                Some(Transition {
                    from: BreakerState::HalfOpen,
                    to: BreakerState::Open,
                })
            }
            // a failure finishing after the breaker already moved on
            // (late non-probe completion) does not drive transitions
            BreakerState::Open | BreakerState::HalfOpen => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_seconds: 1.0,
            half_open_probes: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_and_recovers_via_probes() {
        let b = CircuitBreaker::new(cfg());
        assert_eq!(b.try_admit(0).0, Admission::Allow);
        assert_eq!(b.on_failure(0, false), None);
        let t = b.on_failure(0, false).expect("second failure trips");
        assert_eq!((t.from, t.to), (BreakerState::Closed, BreakerState::Open));
        // rejected during the open window
        assert_eq!(b.try_admit(999_999).0, Admission::Reject);
        // window elapses: half-open, one probe admitted
        let (adm, tr) = b.try_admit(1_000_000);
        assert_eq!(adm, Admission::Probe);
        assert_eq!(
            tr.map(|t| t.to),
            Some(BreakerState::HalfOpen),
            "open->half-open transition reported"
        );
        // only one probe in flight
        assert_eq!(b.try_admit(1_000_000).0, Admission::Reject);
        assert_eq!(b.on_success(true), None, "one success is not enough");
        let (adm, _) = b.try_admit(1_000_001);
        assert_eq!(adm, Admission::Probe);
        let t = b.on_success(true).expect("second probe success closes");
        assert_eq!(
            (t.from, t.to),
            (BreakerState::HalfOpen, BreakerState::Closed)
        );
        assert_eq!(b.try_admit(1_000_002).0, Admission::Allow);
    }

    #[test]
    fn probe_failure_reopens_with_fresh_window() {
        let b = CircuitBreaker::new(cfg());
        b.on_failure(0, false);
        b.on_failure(0, false);
        assert_eq!(b.try_admit(1_000_000).0, Admission::Probe);
        let t = b
            .on_failure(1_000_000, true)
            .expect("probe failure reopens");
        assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Open));
        assert_eq!(b.try_admit(1_999_999).0, Admission::Reject);
        assert_eq!(b.try_admit(2_000_000).0, Admission::Probe);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let b = CircuitBreaker::new(cfg());
        b.on_failure(0, false);
        b.on_success(false);
        assert_eq!(b.on_failure(0, false), None, "streak was reset");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
