//! Seeded open-loop load generator and correctness oracle.
//!
//! [`script`] expands a [`LoadgenConfig`] into a deterministic sequence
//! of tenant mutations and queries (the same seed always yields the
//! same workload, including which inserts carry poisoned payloads).
//! [`run`] drives a [`SkylineService`] through a script while keeping a
//! brute-force oracle of every *acknowledged* mutation per tenant, and
//! checks each fresh (non-stale) query response against it — a service
//! under chaos may reject or degrade, but it must never serve a fresh
//! answer that disagrees with the mutations it acknowledged.

use crate::service::{Mutation, QueryResponse, SkylineService};
use skyline_algos::dominance::dominates;
use skyline_algos::point::Point;
use std::collections::BTreeMap;

/// Workload shape knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Seed for the whole workload.
    pub seed: u64,
    /// Number of tenants, named `tenant-0..`.
    pub tenants: usize,
    /// Total operations to generate across all tenants.
    pub operations: u64,
    /// Coordinate dimensionality.
    pub dim: usize,
    /// Permille of inserts whose payload is poisoned (NaN coordinate).
    pub poison_permille: u32,
    /// Permille of mutations that are deletions of a previously
    /// inserted id.
    pub delete_permille: u32,
    /// Permille of operations that are queries.
    pub query_permille: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            tenants: 3,
            operations: 400,
            dim: 3,
            poison_permille: 30,
            delete_permille: 250,
            query_permille: 300,
        }
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Apply a mutation with the given per-tenant sequence number.
    Mutate {
        /// Target tenant.
        tenant: String,
        /// Per-tenant sequence number (1-based, monotone).
        seq: u64,
        /// The mutation payload.
        mutation: Mutation,
    },
    /// Query the tenant's skyline.
    Query {
        /// Target tenant.
        tenant: String,
    },
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn permille(&mut self) -> u32 {
        (self.next() % 1000) as u32
    }
}

/// Expands a config into a deterministic operation script.
pub fn script(cfg: &LoadgenConfig) -> Vec<Op> {
    let mut rng = Lcg(cfg.seed ^ 0x006c_6f61_6467_656e);
    let mut ops = Vec::with_capacity(cfg.operations as usize);
    let mut next_seq = vec![0u64; cfg.tenants.max(1)];
    let mut live_ids: Vec<Vec<u64>> = vec![Vec::new(); cfg.tenants.max(1)];
    let mut next_id = 1u64;
    for _ in 0..cfg.operations {
        let t = (rng.next() as usize) % cfg.tenants.max(1);
        let tenant = format!("tenant-{t}");
        if rng.permille() < cfg.query_permille {
            ops.push(Op::Query { tenant });
            continue;
        }
        next_seq[t] += 1;
        let seq = next_seq[t];
        let deletable = !live_ids[t].is_empty();
        if deletable && rng.permille() < cfg.delete_permille {
            let pick = (rng.next() as usize) % live_ids[t].len();
            let id = live_ids[t].swap_remove(pick);
            ops.push(Op::Mutate {
                tenant,
                seq,
                mutation: Mutation::Delete { id },
            });
            continue;
        }
        let id = next_id;
        next_id += 1;
        let poison = rng.permille() < cfg.poison_permille;
        let coords: Vec<f64> = (0..cfg.dim.max(1))
            .map(|d| {
                if poison && d == 0 {
                    f64::NAN
                } else {
                    (rng.next() % 64) as f64
                }
            })
            .collect();
        if !poison {
            live_ids[t].push(id);
        }
        ops.push(Op::Mutate {
            tenant,
            seq,
            mutation: Mutation::Insert { id, coords },
        });
    }
    ops
}

/// What a load run observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Operations driven.
    pub ops: u64,
    /// Mutations the service acknowledged.
    pub mutations_ok: u64,
    /// Typed rejections, keyed by `ServeError::outcome()`.
    pub rejections: BTreeMap<String, u64>,
    /// Fresh query responses.
    pub queries_fresh: u64,
    /// Stale-marked query responses.
    pub queries_stale: u64,
    /// Fresh responses that disagreed with the oracle. Must be zero —
    /// stale-marked responses are allowed to lag, fresh ones are not.
    pub incorrect: u64,
    /// Tenants whose final quiesced skyline mismatched the oracle.
    pub final_mismatches: u64,
}

/// Brute-force skyline of a live set (the oracle).
fn oracle_skyline(live: &BTreeMap<u64, Vec<f64>>) -> Vec<Point> {
    let pts: Vec<Point> = live
        .iter()
        .map(|(id, c)| Point::new(*id, c.clone()))
        .collect();
    let mut out: Vec<Point> = pts
        .iter()
        .filter(|p| !pts.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect();
    out.sort_unstable_by_key(Point::id);
    out
}

fn matches_oracle(resp: &QueryResponse, live: &BTreeMap<u64, Vec<f64>>) -> bool {
    let want = oracle_skyline(live);
    resp.skyline.len() == want.len()
        && resp
            .skyline
            .iter()
            .zip(&want)
            .all(|(a, b)| a.id() == b.id() && a.coords() == b.coords())
}

/// A resumable load run. [`LoadRunner::drive`] advances through the
/// script one operation at a time, recording outcomes and the oracle
/// *after* each service call returns — so a kill-switch panic mid-op
/// leaves the runner positioned at that op, and re-driving against a
/// recovered service replays it (the service's applied-sequence mark
/// makes the retry an acknowledged no-op if it had committed).
pub struct LoadRunner {
    ops: Vec<Op>,
    pos: usize,
    oracle: BTreeMap<String, BTreeMap<u64, Vec<f64>>>,
    report: LoadReport,
}

impl LoadRunner {
    /// Wraps a script for (possibly interrupted) execution.
    pub fn new(ops: Vec<Op>) -> Self {
        Self {
            ops,
            pos: 0,
            oracle: BTreeMap::new(),
            report: LoadReport::default(),
        }
    }

    /// Next op index to execute.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether every scripted op has completed.
    pub fn done(&self) -> bool {
        self.pos >= self.ops.len()
    }

    /// Drives the remaining ops against `service`. A panic (the armed
    /// kill switch) propagates with the runner still positioned at the
    /// interrupted op; catch it, recover the service from its
    /// checkpoint store, and call `drive` again.
    pub fn drive(&mut self, service: &SkylineService) {
        while self.pos < self.ops.len() {
            let op = self.ops[self.pos].clone();
            match &op {
                Op::Mutate {
                    tenant,
                    seq,
                    mutation,
                } => match service.apply(tenant, *seq, mutation) {
                    Ok(_) => {
                        self.report.mutations_ok += 1;
                        let live = self.oracle.entry(tenant.clone()).or_default();
                        match mutation {
                            Mutation::Insert { id, coords } => {
                                live.entry(*id).or_insert_with(|| coords.clone());
                            }
                            Mutation::Delete { id } => {
                                live.remove(id);
                            }
                        }
                    }
                    Err(e) => {
                        *self
                            .report
                            .rejections
                            .entry(e.outcome().to_string())
                            .or_insert(0) += 1;
                    }
                },
                Op::Query { tenant } => match service.query(tenant) {
                    Ok(resp) if resp.stale => self.report.queries_stale += 1,
                    Ok(resp) => {
                        self.report.queries_fresh += 1;
                        let live = self.oracle.entry(tenant.clone()).or_default();
                        if !matches_oracle(&resp, live) {
                            self.report.incorrect += 1;
                        }
                    }
                    Err(e) => {
                        *self
                            .report
                            .rejections
                            .entry(e.outcome().to_string())
                            .or_insert(0) += 1;
                    }
                },
            }
            self.report.ops += 1;
            self.pos += 1;
        }
    }

    /// Quiesces every tenant (repeated queries until a fresh response,
    /// bounded — the sim clock ticks forward on each, so open breaker
    /// windows elapse) and verifies the final skyline is bit-identical
    /// to the acknowledged-mutation oracle's. Returns the report.
    pub fn finish(mut self, service: &SkylineService) -> LoadReport {
        for (tenant, live) in &self.oracle {
            let mut fresh = None;
            // Each stale serve ticks the sim clock 100us, so outlasting
            // an open breaker's 5s window takes ~50k queries; the bound
            // covers several reopen cycles from failed probes.
            for _ in 0..500_000 {
                match service.query(tenant) {
                    Ok(resp) if !resp.stale => {
                        fresh = Some(resp);
                        break;
                    }
                    Ok(_) | Err(_) => {}
                }
            }
            match fresh {
                Some(resp) if matches_oracle(&resp, live) => {}
                _ => self.report.final_mismatches += 1,
            }
        }
        self.report
    }
}

/// Drives `service` through `ops` start to finish (no kill/resume) and
/// returns the verified report. See [`LoadRunner`] for interruptible
/// runs.
pub fn run(service: &SkylineService, ops: &[Op]) -> LoadReport {
    let mut runner = LoadRunner::new(ops.to_vec());
    runner.drive(service);
    runner.finish(service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use mrsky_chaos::FaultPlan;
    use mrsky_trace::Tracer;

    #[test]
    fn script_is_deterministic_and_seeded() {
        let cfg = LoadgenConfig::default();
        let a = script(&cfg);
        let b = script(&cfg);
        // NaN payloads make Op's PartialEq reflexively false; compare
        // the debug renderings instead (NaN formats stably).
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = script(&LoadgenConfig {
            seed: 8,
            ..LoadgenConfig::default()
        });
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
        assert!(a.iter().any(|o| matches!(o, Op::Query { .. })));
        assert!(a.iter().any(|o| matches!(
            o,
            Op::Mutate {
                mutation: Mutation::Delete { .. },
                ..
            }
        )));
    }

    #[test]
    fn fault_free_run_is_fully_correct() {
        let s = SkylineService::new(
            ServeConfig::default(),
            FaultPlan::off(),
            Tracer::in_memory(),
        );
        let ops = script(&LoadgenConfig::default());
        let report = run(&s, &ops);
        assert_eq!(report.incorrect, 0);
        assert_eq!(report.final_mismatches, 0);
        assert!(report.mutations_ok > 0);
        assert!(report.queries_fresh > 0);
        // the only rejections a fault-free run may see are poison payloads
        for outcome in report.rejections.keys() {
            assert_eq!(outcome, "dead-letter");
        }
    }

    #[test]
    fn heavy_chaos_run_never_serves_an_incorrect_fresh_response() {
        let s = SkylineService::new(
            ServeConfig::default(),
            FaultPlan::heavy(11),
            Tracer::in_memory(),
        );
        let ops = script(&LoadgenConfig {
            operations: 600,
            ..LoadgenConfig::default()
        });
        let report = run(&s, &ops);
        assert_eq!(report.incorrect, 0, "fresh responses must match the oracle");
        assert_eq!(
            report.final_mismatches, 0,
            "quiesced skylines must converge"
        );
        assert!(
            !report.rejections.is_empty(),
            "heavy chaos should reject something, and every rejection is typed"
        );
    }
}
