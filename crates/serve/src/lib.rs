//! mrsky-serve: a fault-hardened online incremental skyline service.
//!
//! The serving layer for the reproduction suite: long-running,
//! multi-tenant, and hardened end to end on the request path. Each
//! tenant's live skyline sits on a k-skyband retention buffer
//! (`skyline_algos::skyband`) so deletions repair from retained
//! dominated candidates instead of recomputing; around it, this crate
//! layers admission control, seeded-jitter retries with deadline
//! budgets, per-tenant/operation circuit breakers, dead-lettering for
//! poison mutations, graceful degradation to stale snapshots, and
//! checkpoint/restore with replay-skip high-water marks.
//!
//! Module map:
//!
//! - [`service`] — the [`SkylineService`] request path (the heart of
//!   the crate; its module docs spell out the decision order);
//! - [`breaker`] — the deterministic circuit breaker;
//! - [`admission`] — the bounded admission gate;
//! - [`error`] — typed rejections ([`ServeError`]); nothing on the
//!   request path fails silently;
//! - [`loadgen`] — seeded open-loop load generator plus the
//!   acknowledged-mutation oracle used by the chaos suites and CI.
//!
//! Everything is deterministic: faults come from a
//! `mrsky_chaos::FaultPlan`, time is a simulated microsecond counter,
//! and all synchronization goes through the `mrsky_model::sync` facade
//! so the protocols are model-checkable under `--cfg mrsky_model`.

pub mod admission;
pub mod breaker;
pub mod error;
pub mod loadgen;
pub mod service;

pub use admission::{AdmissionConfig, AdmissionGate, Permit, ShedReason};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use error::ServeError;
pub use loadgen::{
    run as run_load, script as load_script, LoadReport, LoadRunner, LoadgenConfig, Op,
};
pub use service::{
    Mutation, MutationReceipt, QueryResponse, ServeConfig, ServeStats, SkylineService,
};
