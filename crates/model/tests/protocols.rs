//! Model checks of the runtime's four sync protocols, expressed as
//! faithful in-crate replicas (the real components run these same
//! shapes through the facade; their own `tests/model.rs` suites — built
//! with `--cfg mrsky_model` — check the actual code).
//!
//! - registry: sharded counter merge is linearizable (no lost `incr`);
//! - pool: cursor/slot handoff neither loses nor double-executes tasks;
//! - streaming merge: id-deduped absorption credits each id once and
//!   converges to the same skyline on every schedule;
//! - kill switch: the threshold fires exactly once across racing writers.

use mrsky_model::checked::{scope, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};
use mrsky_model::{check_opts, CheckOptions};
use std::collections::BTreeSet;
use std::sync::Mutex as StdMutex;

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 3,
        random_walks: 16,
        ..CheckOptions::default()
    }
}

/// `trace::registry` shape: per-thread shard selection, mutexed shard
/// counters, snapshot folds shards with saturating adds. Writers on
/// different shards plus a fold must never lose an increment.
#[test]
fn registry_shard_merge_is_linearizable() {
    let report = check_opts(&opts(), || {
        let enabled = AtomicBool::new(true);
        let shards = [Mutex::new(0u64), Mutex::new(0u64)];
        let incr = |shard: usize, delta: u64| {
            if !enabled.load(Ordering::Relaxed) {
                return;
            }
            let mut guard = shards[shard].lock();
            *guard = guard.saturating_add(delta);
        };
        scope(|s| {
            let writer = s.spawn(|| {
                incr(1, 2);
                incr(1, 3);
            });
            incr(0, 1);
            let _ = writer.join();
        });
        let snapshot: u64 = shards.iter().map(|m| *m.lock()).sum();
        assert_eq!(snapshot, 6, "shard merge lost an increment");
    });
    assert!(report.executions > 1);
}

/// `mapreduce::pool::run` shape: a shared cursor hands out task
/// indices, each worker writes its result into a dedicated slot. Every
/// task must run exactly once and every slot must be filled.
#[test]
fn pool_handoff_loses_nothing_and_runs_once() {
    const TASKS: usize = 3;
    let report = check_opts(&opts(), || {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<usize>>> = (0..TASKS).map(|_| Mutex::new(None)).collect();
        let executions: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
        let worker = || loop {
            let task = cursor.fetch_add(1, Ordering::Relaxed);
            if task >= TASKS {
                break;
            }
            executions[task].fetch_add(1, Ordering::Relaxed);
            *slots[task].lock() = Some(task * 10);
        };
        scope(|s| {
            let h = s.spawn(worker);
            worker();
            let _ = h.join();
        });
        for (task, slot) in slots.into_iter().enumerate() {
            assert_eq!(slot.into_inner(), Some(task * 10), "slot {task} lost");
        }
        for (task, count) in executions.into_iter().enumerate() {
            assert_eq!(
                count.into_inner(),
                1,
                "task {task} ran a wrong number of times"
            );
        }
    });
    assert!(report.executions > 1);
}

/// `skyline::incremental::StreamingMerge` shape: absorption dedupes by
/// point id before inserting, and reports how many points it absorbed.
/// Across racing absorbers the final skyline must be schedule-invariant
/// and each id credited exactly once.
#[test]
fn streaming_merge_absorption_is_schedule_invariant() {
    let outcomes = StdMutex::new(BTreeSet::new());
    check_opts(&opts(), || {
        let merge: Mutex<(BTreeSet<u64>, Vec<u64>)> = Mutex::new((BTreeSet::new(), Vec::new()));
        let absorb = |ids: &[u64]| -> usize {
            let mut absorbed = 0;
            for &id in ids {
                // Lock per point, like the shared-merge absorb loop: the
                // seen-check and the skyline insert stay atomic together.
                let mut guard = merge.lock();
                let (seen, sky) = &mut *guard;
                if seen.insert(id) {
                    sky.push(id);
                    absorbed += 1;
                }
            }
            absorbed
        };
        let credited = Mutex::new(0usize);
        scope(|s| {
            let h = s.spawn(|| {
                let n = absorb(&[1, 2]);
                *credited.lock() += n;
            });
            let n = absorb(&[2, 3]);
            *credited.lock() += n;
            let _ = h.join();
        });
        assert_eq!(credited.into_inner(), 3, "id 2 double- or un-credited");
        let (seen, mut sky) = merge.into_inner();
        assert_eq!(seen, [1, 2, 3].into_iter().collect::<BTreeSet<u64>>());
        sky.sort_unstable();
        outcomes.lock().unwrap().insert(sky);
    });
    assert_eq!(
        outcomes.lock().unwrap().len(),
        1,
        "skyline must be bit-identical across schedules"
    );
}

/// `chaos::KillSwitch` shape: racing writers pass the threshold, but
/// `swap` on the fired flag admits exactly one kill.
#[test]
fn kill_switch_fires_exactly_once() {
    let report = check_opts(&opts(), || {
        let after = 2u64;
        let written = AtomicU64::new(0);
        let fired = AtomicBool::new(false);
        let kills = AtomicUsize::new(0);
        let record_write = || {
            let total = written.fetch_add(1, Ordering::SeqCst) + 1;
            if total >= after && !fired.swap(true, Ordering::SeqCst) {
                kills.fetch_add(1, Ordering::SeqCst);
            }
        };
        scope(|s| {
            let h = s.spawn(|| {
                record_write();
                record_write();
            });
            record_write();
            let _ = h.join();
        });
        assert_eq!(written.into_inner(), 3);
        assert_eq!(kills.into_inner(), 1, "kill switch must fire exactly once");
    });
    assert!(report.executions > 1);
}
