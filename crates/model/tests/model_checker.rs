//! Checker-semantics tests: exhaustiveness of the bounded DFS, the
//! meaning of the preemption bound, failure detection (races,
//! deadlocks, lock-order inversions), and deterministic replay.
//!
//! These use [`mrsky_model::checked`] directly, which is always
//! instrumented — no `--cfg mrsky_model` needed, so plain
//! `cargo test -p mrsky-model` explores real interleavings.

use mrsky_model::checked::{scope, AtomicUsize, Mutex, Ordering};
use mrsky_model::{check, check_opts, check_result, replay, CheckOptions, FailureKind, Schedule};
use std::collections::BTreeSet;
use std::sync::Mutex as StdMutex;

fn opts(preemption_bound: usize) -> CheckOptions {
    CheckOptions {
        preemption_bound,
        random_walks: 0,
        ..CheckOptions::default()
    }
}

/// Two threads, two operations each: the writer stores 1 then 2, the
/// reader loads twice. The reachable (first, second) load pairs are
/// exactly the six monotone pairs over {0, 1, 2} — seeing all six
/// proves the DFS enumerates every interleaving of the four ops.
#[test]
fn exhaustive_two_thread_interleavings() {
    let observed = StdMutex::new(BTreeSet::new());
    let report = check_opts(&opts(3), || {
        let cell = AtomicUsize::new(0);
        let mut pair = (0, 0);
        scope(|s| {
            let writer = s.spawn(|| {
                cell.store(1, Ordering::SeqCst);
                cell.store(2, Ordering::SeqCst);
            });
            let first = cell.load(Ordering::SeqCst);
            let second = cell.load(Ordering::SeqCst);
            pair = (first, second);
            let _ = writer.join();
        });
        observed.lock().unwrap().insert(pair);
    });
    let expected: BTreeSet<(usize, usize)> = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)]
        .into_iter()
        .collect();
    assert_eq!(*observed.lock().unwrap(), expected);
    assert!(
        report.executions >= 6,
        "at least one execution per outcome, got {}",
        report.executions
    );
    assert!(!report.truncated);
}

/// With a preemption bound of zero the only schedule is the canonical
/// one (each thread runs until it blocks), and the pruned alternatives
/// show up in `bound_skips`.
#[test]
fn preemption_bound_zero_explores_single_schedule() {
    let observed = StdMutex::new(BTreeSet::new());
    let report = check_opts(&opts(0), || {
        let cell = AtomicUsize::new(0);
        let mut pair = (0, 0);
        scope(|s| {
            let writer = s.spawn(|| {
                cell.store(1, Ordering::SeqCst);
                cell.store(2, Ordering::SeqCst);
            });
            pair = (cell.load(Ordering::SeqCst), cell.load(Ordering::SeqCst));
            let _ = writer.join();
        });
        observed.lock().unwrap().insert(pair);
    });
    assert_eq!(
        report.executions, 1,
        "bound 0 admits only the canonical run"
    );
    assert_eq!(observed.lock().unwrap().len(), 1);
    assert!(report.bound_skips > 0, "the bound visibly pruned schedules");
}

/// A deliberately-seeded lost-update race (non-atomic read-modify-write
/// from two threads) must be caught, and its printed schedule must
/// replay deterministically to the same failure.
#[test]
fn seeded_race_is_caught_and_replays() {
    let body = || {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            let racer = s.spawn(|| {
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            let _ = racer.join();
        });
        assert_eq!(counter.into_inner(), 2, "lost update");
    };
    let failure = check_result(&opts(3), body).expect_err("the race must be found");
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("lost update")),
        "unexpected failure: {failure}"
    );
    let schedule = failure.schedule.to_string();
    assert!(!schedule.is_empty());
    // Replay is deterministic: same schedule, same failure, three times.
    for _ in 0..3 {
        let replayed = replay(&schedule, body).expect_err("replay must reproduce the race");
        assert_eq!(replayed.kind, failure.kind);
        assert_eq!(replayed.schedule.to_string(), schedule);
    }
}

/// The same race protected by a mutex passes every explored schedule.
#[test]
fn mutex_protected_counter_is_race_free() {
    let report = check(|| {
        let counter = Mutex::new(0usize);
        scope(|s| {
            let h = s.spawn(|| {
                let mut guard = counter.lock();
                *guard += 1;
            });
            {
                let mut guard = counter.lock();
                *guard += 1;
            }
            let _ = h.join();
        });
        assert_eq!(counter.into_inner(), 2);
    });
    assert!(report.executions > 1, "contention creates real branching");
}

/// Classic ABBA deadlock: with inversion detection off, some schedule
/// blocks both threads and the checker reports a deadlock — and the
/// schedule string replays to the same deadlock.
#[test]
fn abba_deadlock_detected_and_replays() {
    let options = CheckOptions {
        preemption_bound: 3,
        random_walks: 0,
        detect_lock_inversion: false,
        ..CheckOptions::default()
    };
    let body = || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        scope(|s| {
            let h = s.spawn(|| {
                let _b = b.lock();
                let _a = a.lock();
            });
            let _a = a.lock();
            let _b = b.lock();
            drop(_b);
            drop(_a);
            let _ = h.join();
        });
    };
    let failure = check_result(&options, body).expect_err("deadlock must be found");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "unexpected failure: {failure}"
    );
    let schedule = failure.schedule.to_string();
    let replayed = replay(&schedule, body).expect_err("replay must deadlock again");
    assert!(matches!(replayed.kind, FailureKind::Deadlock(_)));
}

/// With inversion detection on (the default), the same ABBA pattern is
/// flagged as a lock-order inversion as soon as both orders have been
/// observed — even on schedules that happen not to deadlock.
#[test]
fn lock_order_inversion_detected() {
    let failure = check_result(&opts(3), || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        scope(|s| {
            let h = s.spawn(|| {
                let _b = b.lock();
                let _a = a.lock();
            });
            let _a = a.lock();
            let _b = b.lock();
            drop(_b);
            drop(_a);
            let _ = h.join();
        });
    })
    .expect_err("inversion must be found");
    assert!(
        matches!(
            failure.kind,
            FailureKind::LockOrderInversion(_) | FailureKind::Deadlock(_)
        ),
        "unexpected failure: {failure}"
    );
}

/// Consistent lock ordering passes with inversion detection on.
#[test]
fn consistent_lock_order_is_clean() {
    check(|| {
        let a = Mutex::new(0usize);
        let b = Mutex::new(0usize);
        scope(|s| {
            let h = s.spawn(|| {
                let mut ga = a.lock();
                let mut gb = b.lock();
                *ga += 1;
                *gb += 1;
            });
            {
                let mut ga = a.lock();
                let mut gb = b.lock();
                *ga += 1;
                *gb += 1;
            }
            let _ = h.join();
        });
        assert_eq!(a.into_inner(), 2);
        assert_eq!(b.into_inner(), 2);
    });
}

/// The report tallies instrumented accesses by `"op:Ordering"`.
#[test]
fn report_records_ordering_profile() {
    let report = check_opts(&opts(1), || {
        let n = AtomicUsize::new(0);
        n.fetch_add(1, Ordering::Relaxed);
        n.load(Ordering::SeqCst);
    });
    assert!(
        report
            .orderings
            .get("fetch_add:Relaxed")
            .copied()
            .unwrap_or(0)
            > 0
    );
    assert!(report.orderings.get("load:SeqCst").copied().unwrap_or(0) > 0);
}

/// Schedule strings round-trip through parse/format, and malformed
/// input is rejected.
#[test]
fn schedule_string_round_trip() {
    let schedule = Schedule(vec![0, 1, 1, 0, 2]);
    let text = schedule.to_string();
    assert_eq!(text, "0.1.1.0.2");
    assert_eq!(Schedule::parse(&text).unwrap(), schedule);
    assert_eq!(Schedule::parse("").unwrap(), Schedule::default());
    assert!(Schedule::parse("0.x.1").is_err());
}

/// Random walks run after the bounded search and count separately.
#[test]
fn random_walks_supplement_bounded_search() {
    let options = CheckOptions {
        preemption_bound: 0,
        random_walks: 8,
        ..CheckOptions::default()
    };
    let report = check_opts(&options, || {
        let cell = AtomicUsize::new(0);
        scope(|s| {
            let h = s.spawn(|| cell.store(1, Ordering::SeqCst));
            cell.load(Ordering::SeqCst);
            let _ = h.join();
        });
    });
    assert_eq!(report.random_executions, 8);
}
