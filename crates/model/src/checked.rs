//! Instrumented sync primitives: every access is a scheduler decision
//! point when a model run is active on the current thread, and plain
//! `std` behaviour otherwise (so code compiled with `--cfg mrsky_model`
//! still works in ordinary tests that never enter [`crate::check`]).
//!
//! These types are always compiled — the `cfg` switch lives in
//! [`crate::sync`], which re-exports either these or raw `std`. The
//! checker's own tests use this module directly.

use crate::scheduler::{current, AbortUnwind};
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::{Arc, PoisonError};

pub use std::sync::atomic::Ordering;

/// Stable identity for instrumented mutexes; per-execution dense lock
/// ids are derived from first-acquisition order, so monotonically
/// growing keys across executions are fine.
static NEXT_MUTEX_KEY: StdAtomicUsize = StdAtomicUsize::new(1);

fn ordering_name(order: Ordering) -> &'static str {
    match order {
        // ORDERING: not an atomic access — this match only names
        // orderings for the exploration report's profile.
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "Other",
    }
}

fn hook(op: &'static str, order: Ordering) {
    if let Some((exec, me)) = current() {
        exec.op_point(me, Some((op, ordering_name(order))));
    }
}

macro_rules! instrumented_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty, $zero:expr) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic (usable in `static` position).
            pub const fn new(value: $prim) -> Self {
                Self { inner: <$std>::new(value) }
            }

            /// Instrumented load.
            pub fn load(&self, order: Ordering) -> $prim {
                hook("load", order);
                self.inner.load(order)
            }

            /// Instrumented store.
            pub fn store(&self, value: $prim, order: Ordering) {
                hook("store", order);
                self.inner.store(value, order);
            }

            /// Instrumented swap.
            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                hook("swap", order);
                self.inner.swap(value, order)
            }

            /// Instrumented compare-exchange.
            ///
            /// # Errors
            ///
            /// Returns the current value when it differs from `current`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                hook("compare_exchange", success);
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Consumes the atomic, returning the inner value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new($zero)
            }
        }
    };
}

instrumented_atomic!(
    /// Instrumented drop-in for [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool,
    false
);
instrumented_atomic!(
    /// Instrumented drop-in for [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    0
);
instrumented_atomic!(
    /// Instrumented drop-in for [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    0
);

macro_rules! instrumented_fetch_ops {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Instrumented fetch-add.
            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                hook("fetch_add", order);
                self.inner.fetch_add(value, order)
            }

            /// Instrumented fetch-sub.
            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                hook("fetch_sub", order);
                self.inner.fetch_sub(value, order)
            }
        }
    };
}

instrumented_fetch_ops!(AtomicUsize, usize);
instrumented_fetch_ops!(AtomicU64, u64);

/// Instrumented, poison-free drop-in for [`std::sync::Mutex`]: acquire
/// and release are decision points; contention blocks the thread at the
/// model level (feeding deadlock and lock-order-inversion detection).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    key: usize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            key: NEXT_MUTEX_KEY.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock; never returns poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let ctl = current();
        if let Some((exec, me)) = &ctl {
            exec.acquire(*me, self.key);
        }
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            ctl: ctl.map(|(exec, me)| (exec, me, self.key)),
            inner: Some(guard),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for the instrumented [`Mutex`]; releases at the model level on
/// drop (quietly while unwinding, so teardown never double-panics).
pub struct MutexGuard<'a, T> {
    ctl: Option<(Arc<crate::scheduler::Exec>, usize, usize)>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(guard) => guard,
            None => unreachable!("guard accessed after release"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard first so the next thread the scheduler
        // grants the lock to can take it without blocking on the OS.
        drop(self.inner.take());
        if let Some((exec, me, key)) = self.ctl.take() {
            exec.release(me, key, std::thread::panicking());
        }
    }
}

/// Model-aware scoped threads; mirrors [`std::thread::scope`] but each
/// spawn registers with the scheduler and parks until first chosen.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    ctl: Option<(Arc<crate::scheduler::Exec>, usize)>,
    children: RefCell<Vec<usize>>,
}

/// Join handle from [`Scope::spawn`].
pub struct ScopedHandle<'scope, T> {
    child: Option<usize>,
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<T> ScopedHandle<'_, T> {
    /// Joins the thread, returning its panic payload on failure (under
    /// an active model run a child panic instead fails the whole
    /// execution, so the `Err` arm is only reachable in passthrough).
    ///
    /// # Errors
    ///
    /// The thread's panic payload, as with [`std::thread::ScopedJoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(child) = self.child {
            if let Some((exec, me)) = current() {
                exec.join_thread(me, child);
            }
        }
        match self.inner.join() {
            Ok(Some(value)) => Ok(value),
            // The child bailed out during an abort and produced no
            // value; the whole execution is unwinding, follow it.
            Ok(None) => std::panic::panic_any(AbortUnwind),
            Err(payload) => Err(payload),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; under a model run it parks until the
    /// scheduler first picks it.
    pub fn spawn<F, T>(&self, f: F) -> ScopedHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.ctl {
            None => ScopedHandle {
                child: None,
                inner: self.inner.spawn(move || Some(f())),
            },
            Some((exec, _)) => {
                let id = exec.register_thread();
                self.children.borrow_mut().push(id);
                let exec = Arc::clone(exec);
                let inner = self.inner.spawn(move || {
                    crate::scheduler::enter_thread(&exec, id);
                    let started = catch_unwind(AssertUnwindSafe(|| exec.thread_started(id)));
                    let out = match started {
                        Err(_) => {
                            // Aborted before ever running.
                            exec.thread_finished(id, None);
                            None
                        }
                        Ok(()) => match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(value) => {
                                exec.thread_finished(id, None);
                                Some(value)
                            }
                            Err(payload) => {
                                exec.thread_finished(
                                    id,
                                    crate::scheduler::panic_message(payload.as_ref()),
                                );
                                None
                            }
                        },
                    };
                    crate::scheduler::exit_thread();
                    out
                });
                ScopedHandle {
                    child: Some(id),
                    inner,
                }
            }
        }
    }
}

/// Model-aware replacement for [`std::thread::scope`]: the scope's end
/// is a model-level join of every child, and a panic in the scope body
/// aborts the execution so parked children unwind instead of hanging.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let ctl = current();
    std::thread::scope(move |s| {
        let ms = Scope {
            inner: s,
            ctl,
            children: RefCell::new(Vec::new()),
        };
        let body = catch_unwind(AssertUnwindSafe(|| f(&ms)));
        match body {
            Ok(value) => {
                if let Some((exec, me)) = &ms.ctl {
                    let kids: Vec<usize> = ms.children.borrow().clone();
                    for kid in kids {
                        exec.join_thread(*me, kid);
                    }
                }
                value
            }
            Err(payload) => {
                if let Some((exec, _)) = &ms.ctl {
                    exec.abort_with(crate::scheduler::panic_message(payload.as_ref()));
                }
                resume_unwind(payload)
            }
        }
    })
}
