//! **mrsky-model** — bounded model checking for the MR-skyline runtime.
//!
//! The distributed-skyline correctness argument leans on a handful of
//! shared-state steps being linearizable: metrics-shard merges, the
//! work pool's cursor/slot handoff, streaming-merge absorption, and the
//! chaos kill switch's exactly-once firing. Ordinary tests only observe
//! the schedules the OS happens to pick; this crate explores the
//! schedule space deliberately, in the style of loom/CHESS, with zero
//! dependencies (per the workspace's vendored-shim policy).
//!
//! # How it works
//!
//! Runtime crates import [`sync`] instead of `std::sync`. In normal
//! builds that facade is a zero-cost `std` passthrough; compiled with
//! `RUSTFLAGS="--cfg mrsky_model"` it swaps in instrumented primitives
//! ([`checked`]) where every atomic access, lock operation, spawn, and
//! join is a *decision point* for a deterministic cooperative scheduler.
//! [`check`] then runs the test body repeatedly, enumerating
//! interleavings by depth-first search over decision prefixes up to a
//! preemption bound, plus seeded random walks past the bound. It fails
//! on panics (assertion violations), deadlocks, and lock-order
//! inversions, and every failure carries a [`Schedule`] string that
//! [`replay`] reproduces deterministically:
//!
//! ```text
//! panic: assertion failed: lost update
//!   schedule: "0.0.1.1.0"
//!   replay:   mrsky_model::replay("0.0.1.1.0", || { ... })
//! ```
//!
//! # Writing a model test
//!
//! Component crates import [`sync`] (so production builds pay nothing);
//! the checker's own tests can use [`checked`] directly, which is
//! always instrumented:
//!
//! ```
//! use mrsky_model::checked::{scope, AtomicUsize, Ordering};
//!
//! let report = mrsky_model::check(|| {
//!     let counter = AtomicUsize::new(0);
//!     scope(|s| {
//!         let h = s.spawn(|| counter.fetch_add(1, Ordering::Relaxed));
//!         counter.fetch_add(1, Ordering::Relaxed);
//!         let _ = h.join();
//!     });
//!     assert_eq!(counter.into_inner(), 2);
//! });
//! assert!(report.executions > 1, "several interleavings explored");
//! ```
//!
//! The body must be deterministic apart from scheduling: no wall clock,
//! no OS randomness, no I/O races — the same constraint the runtime
//! crates already observe (enforced by `mrsky-audit lint`).

pub mod checked;
mod scheduler;
pub mod sync;

pub use scheduler::{CheckOptions, Failure, FailureKind, Report, Schedule};

/// Explores interleavings of `body` with [`CheckOptions::default`] and
/// panics (with the failing schedule) on the first failure.
///
/// # Panics
///
/// Panics with a rendered [`Failure`] — kind, schedule string, and a
/// replay hint — when any explored interleaving panics, deadlocks, or
/// inverts a lock order.
pub fn check<F: Fn() + Send + Sync>(body: F) -> Report {
    check_opts(&CheckOptions::default(), body)
}

/// [`check`] with explicit options.
///
/// # Panics
///
/// As [`check`].
pub fn check_opts<F: Fn() + Send + Sync>(opts: &CheckOptions, body: F) -> Report {
    match scheduler::explore(opts, body) {
        Ok(report) => report,
        Err(failure) => std::panic::panic_any(format!("model check failed: {failure}")),
    }
}

/// Explores interleavings of `body`, returning the failure instead of
/// panicking — for tests that assert a race IS caught.
///
/// # Errors
///
/// The first failing interleaving found, with its schedule.
pub fn check_result<F: Fn() + Send + Sync>(
    opts: &CheckOptions,
    body: F,
) -> Result<Report, Failure> {
    scheduler::explore(opts, body)
}

/// Replays one schedule string (as printed by a [`Failure`]) against
/// `body`, returning the failure it reproduces, if any.
///
/// Decisions past the end of the schedule fall back to the
/// no-preemption choice, so a prefix is enough to steer the body back
/// into a failing region.
///
/// # Errors
///
/// The reproduced failure. A malformed schedule string is reported as a
/// [`FailureKind::Panic`] with an empty schedule.
pub fn replay<F: Fn() + Send + Sync>(schedule: &str, body: F) -> Result<Report, Failure> {
    let parsed = match Schedule::parse(schedule) {
        Ok(parsed) => parsed,
        Err(err) => {
            return Err(Failure {
                kind: FailureKind::Panic(err),
                schedule: Schedule::default(),
            })
        }
    };
    scheduler::replay_schedule(&parsed, &CheckOptions::default(), body)
}
