//! The deterministic cooperative scheduler behind the model checker.
//!
//! Threads under test are real OS threads, but exactly one is ever
//! *runnable* from the scheduler's point of view: every instrumented
//! operation (atomic access, lock acquire/release, spawn, join) is a
//! *decision point* where the scheduler picks which thread runs next and
//! parks everyone else on a condvar. Replaying the same decision sequence
//! therefore replays the same interleaving, bit for bit, as long as the
//! test body itself is deterministic.
//!
//! Exploration is iterative depth-first search over decision prefixes:
//! each execution records, at every decision point, the canonical list of
//! enabled threads and which one was chosen; backtracking walks that log
//! from the tail looking for an unexplored alternative whose cost fits
//! inside the preemption bound. Choosing a thread other than the one that
//! just ran — while that thread is still enabled — counts as one
//! preemption; schedules needing more preemptions than the bound are
//! skipped (counted in [`Report::bound_skips`]) and instead sampled by
//! seeded random walks after the bounded search is exhausted.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Panic payload used to tear an execution down once a failure is found
/// or the run is aborted; never surfaces to user code.
pub(crate) struct AbortUnwind;

/// What went wrong in a failing execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A thread under test panicked; carries the panic message.
    Panic(String),
    /// Every live thread was blocked (on a lock or a join).
    Deadlock(String),
    /// Two locks were acquired in both orders within one execution.
    LockOrderInversion(String),
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailureKind::Deadlock(detail) => write!(f, "deadlock: {detail}"),
            FailureKind::LockOrderInversion(detail) => {
                write!(f, "lock-order inversion: {detail}")
            }
        }
    }
}

/// A failing interleaving: the kind of failure plus the printable
/// schedule that reproduces it via [`crate::replay`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The decision sequence that triggers it.
    pub schedule: Schedule,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\n  schedule: \"{}\"\n  replay:   mrsky_model::replay(\"{}\", || {{ ... }})",
            self.kind, self.schedule, self.schedule
        )
    }
}

/// A printable, parseable interleaving: the thread id chosen at each
/// decision point, dot-separated (`"0.1.1.0"`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule(pub Vec<usize>);

impl Schedule {
    /// Parses a dot-separated schedule string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed component.
    pub fn parse(s: &str) -> Result<Schedule, String> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        let mut steps = Vec::new();
        for part in s.split('.') {
            match part.trim().parse::<usize>() {
                Ok(tid) => steps.push(tid),
                Err(_) => return Err(format!("bad schedule component {part:?} in {s:?}")),
            }
        }
        Ok(Schedule(steps))
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for tid in &self.0 {
            if !first {
                f.write_str(".")?;
            }
            first = false;
            write!(f, "{tid}")?;
        }
        Ok(())
    }
}

/// Knobs for [`crate::check_with`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Maximum preemptions per explored schedule (CHESS-style bound).
    pub preemption_bound: usize,
    /// Cap on bounded-DFS executions before giving up ([`Report::truncated`]).
    pub max_iterations: usize,
    /// Seeded random walks run after (or past) the bounded search.
    pub random_walks: usize,
    /// Seed for the random walks; same seed, same walks.
    pub seed: u64,
    /// Whether to flag lock-order inversions (disable to let a test
    /// observe the resulting deadlock instead).
    pub detect_lock_inversion: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            preemption_bound: 3,
            max_iterations: 50_000,
            random_walks: 64,
            seed: 0x006d_7273_6b79, // "mrsky"
            detect_lock_inversion: true,
        }
    }
}

/// Summary of a completed (non-failing) check.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Executions explored by the bounded DFS.
    pub executions: u64,
    /// Additional seeded random-walk executions.
    pub random_executions: u64,
    /// Longest decision sequence seen across executions.
    pub max_decisions: usize,
    /// Alternatives skipped because they exceeded the preemption bound.
    /// An indicator, not an exact schedule count: > 0 means the bound
    /// pruned part of the space (the random walks sample past it).
    pub bound_skips: u64,
    /// True when `max_iterations` stopped the DFS before exhaustion.
    pub truncated: bool,
    /// Count of instrumented atomic accesses by `"op:Ordering"` key,
    /// e.g. `"load:Relaxed"` — the raw material for ordering audits.
    pub orderings: BTreeMap<String, u64>,
}

/// Per-thread run state inside one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Runnable,
    /// Waiting on lock (dense id).
    BlockedOnLock(usize),
    /// Waiting for thread (id) to finish.
    BlockedOnThread(usize),
    Finished,
}

/// One decision point: the canonical enabled list, what we picked, and
/// enough bookkeeping to cost alternatives during backtracking.
#[derive(Debug, Clone)]
struct Decision {
    canonical: Vec<usize>,
    chosen_pos: usize,
    preemptions_before: usize,
    prev_enabled: bool,
}

enum Mode {
    /// Follow the prefix, then take canonical position 0 (no preemption).
    Guided,
    /// Follow the prefix, then pick uniformly with this xorshift state.
    Random(u64),
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

struct Inner {
    states: Vec<RunState>,
    active: usize,
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    prefix: Vec<usize>,
    preemptions: usize,
    mode: Mode,
    failure: Option<FailureKind>,
    aborting: bool,
    /// Stable mutex key -> dense per-execution lock id (first-acquire order).
    lock_ids: BTreeMap<usize, usize>,
    /// Dense lock id -> current owner.
    lock_owner: Vec<Option<usize>>,
    /// Thread -> dense ids of locks currently held.
    holding: Vec<Vec<usize>>,
    /// Held-lock -> acquired-lock edges seen this execution.
    edges: BTreeSet<(usize, usize)>,
    detect_lock_inversion: bool,
    orderings: BTreeMap<String, u64>,
}

impl Inner {
    fn record_failure(&mut self, kind: FailureKind) {
        if self.failure.is_none() {
            self.failure = Some(kind);
        }
        self.aborting = true;
    }
}

/// Shared state for one execution; threads under test hold an `Arc` to
/// it via thread-local storage.
pub(crate) struct Exec {
    inner: Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

/// The executing thread's scheduler registration, if a model run is
/// active on this thread.
pub(crate) fn current() -> Option<(Arc<Exec>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Exec>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Registers a spawned thread's scheduler identity in its TLS.
pub(crate) fn enter_thread(exec: &Arc<Exec>, id: usize) {
    set_current(Some((Arc::clone(exec), id)));
}

/// Clears the thread's scheduler identity on exit.
pub(crate) fn exit_thread() {
    set_current(None);
}

/// Renders a panic payload for failure reporting; `None` for the
/// checker's own teardown payload.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> Option<String> {
    payload_message(payload)
}

/// Renders a panic payload, eating our own teardown payload.
fn payload_message(payload: &(dyn Any + Send)) -> Option<String> {
    if payload.is::<AbortUnwind>() {
        return None;
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("non-string panic payload".to_string())
}

impl Exec {
    fn new(prefix: Vec<usize>, mode: Mode, opts: &CheckOptions) -> Exec {
        Exec {
            inner: Mutex::new(Inner {
                states: Vec::new(),
                active: 0,
                schedule: Vec::new(),
                decisions: Vec::new(),
                prefix,
                preemptions: 0,
                mode,
                failure: None,
                aborting: false,
                lock_ids: BTreeMap::new(),
                lock_owner: Vec::new(),
                holding: Vec::new(),
                edges: BTreeSet::new(),
                detect_lock_inversion: opts.detect_lock_inversion,
                orderings: BTreeMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new thread; no decision point (creation order is fixed
    /// by the program, not the schedule).
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock_inner();
        let id = g.states.len();
        g.states.push(RunState::Runnable);
        g.holding.push(Vec::new());
        id
    }

    /// Picks the next active thread. `me_runnable` is false when the
    /// caller just blocked or finished. Sets `aborting` on deadlock.
    fn choose(&self, g: &mut Inner, me: usize, me_runnable: bool) {
        let mut canonical: Vec<usize> = Vec::new();
        if me_runnable {
            canonical.push(me);
        }
        for (tid, state) in g.states.iter().enumerate() {
            if tid != me && *state == RunState::Runnable {
                canonical.push(tid);
            }
        }
        if canonical.is_empty() {
            if g.states.iter().all(|s| *s == RunState::Finished) {
                return; // execution complete, nobody left to run
            }
            let blocked: Vec<String> = g
                .states
                .iter()
                .enumerate()
                .filter_map(|(tid, s)| match s {
                    RunState::BlockedOnLock(l) => Some(format!("thread {tid} on lock #{l}")),
                    RunState::BlockedOnThread(t) => Some(format!("thread {tid} on join({t})")),
                    _ => None,
                })
                .collect();
            g.record_failure(FailureKind::Deadlock(format!(
                "all live threads blocked ({})",
                blocked.join(", ")
            )));
            return;
        }
        let step = g.schedule.len();
        let pos = if step < g.prefix.len() {
            // Replaying a prefix: find the forced thread. A deterministic
            // body always contains it; fall back to 0 if the program
            // diverged (e.g. a schedule string for a different test).
            let forced = g.prefix[step];
            canonical.iter().position(|&t| t == forced).unwrap_or(0)
        } else {
            match &mut g.mode {
                Mode::Guided => 0,
                Mode::Random(state) => (xorshift(state) % canonical.len() as u64) as usize,
            }
        };
        let chosen = canonical[pos];
        g.decisions.push(Decision {
            canonical: canonical.clone(),
            chosen_pos: pos,
            preemptions_before: g.preemptions,
            prev_enabled: me_runnable,
        });
        if me_runnable && chosen != me {
            g.preemptions += 1;
        }
        g.schedule.push(chosen);
        g.active = chosen;
    }

    /// Parks until this thread is the active one (or the run aborts).
    fn wait_until_mine<'a>(
        &'a self,
        mut g: std::sync::MutexGuard<'a, Inner>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, Inner> {
        loop {
            if g.aborting {
                drop(g);
                std::panic::panic_any(AbortUnwind);
            }
            if g.active == me && g.states[me] == RunState::Runnable {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain decision point: record the op (for ordering audits), let
    /// the scheduler pick, park until chosen.
    pub(crate) fn op_point(&self, me: usize, record: Option<(&'static str, &'static str)>) {
        let mut g = self.lock_inner();
        if g.aborting {
            drop(g);
            std::panic::panic_any(AbortUnwind);
        }
        if let Some((op, ordering)) = record {
            *g.orderings.entry(format!("{op}:{ordering}")).or_insert(0) += 1;
        }
        self.choose(&mut g, me, true);
        self.cv.notify_all();
        drop(self.wait_until_mine(g, me));
    }

    /// Lock acquisition: one decision point, then block until the lock
    /// is free (each blocked retry is another decision point).
    pub(crate) fn acquire(&self, me: usize, key: usize) {
        let mut g = self.lock_inner();
        if g.aborting {
            drop(g);
            std::panic::panic_any(AbortUnwind);
        }
        self.choose(&mut g, me, true);
        self.cv.notify_all();
        g = self.wait_until_mine(g, me);
        loop {
            let next_id = g.lock_ids.len();
            let id = *g.lock_ids.entry(key).or_insert(next_id);
            if id == g.lock_owner.len() {
                g.lock_owner.push(None);
            }
            if g.lock_owner[id].is_none() {
                g.lock_owner[id] = Some(me);
                let held: Vec<usize> = g.holding[me].clone();
                for h in held {
                    if h != id {
                        g.edges.insert((h, id));
                        if g.detect_lock_inversion && g.edges.contains(&(id, h)) {
                            g.record_failure(FailureKind::LockOrderInversion(format!(
                                "locks #{h} and #{id} acquired in both orders"
                            )));
                            self.cv.notify_all();
                            drop(g);
                            std::panic::panic_any(AbortUnwind);
                        }
                    }
                }
                g.holding[me].push(id);
                return;
            }
            g.states[me] = RunState::BlockedOnLock(id);
            self.choose(&mut g, me, false);
            self.cv.notify_all();
            g = self.wait_until_mine(g, me);
        }
    }

    /// Lock release. `quiet` (set while unwinding) skips the decision
    /// point so guard drops during teardown never panic.
    pub(crate) fn release(&self, me: usize, key: usize, quiet: bool) {
        let mut g = self.lock_inner();
        if !quiet && !g.aborting {
            self.choose(&mut g, me, true);
            self.cv.notify_all();
            g = self.wait_until_mine(g, me);
        }
        let Some(&id) = g.lock_ids.get(&key) else {
            return;
        };
        g.lock_owner[id] = None;
        g.holding[me].retain(|&h| h != id);
        for state in &mut g.states {
            if *state == RunState::BlockedOnLock(id) {
                *state = RunState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// First park of a freshly spawned thread; it runs only once chosen.
    pub(crate) fn thread_started(&self, me: usize) {
        let g = self.lock_inner();
        drop(self.wait_until_mine(g, me));
    }

    /// Terminal bookkeeping for a thread; never panics (teardown path).
    /// `failure` carries a real panic message from the thread body.
    pub(crate) fn thread_finished(&self, me: usize, failure: Option<String>) {
        let mut g = self.lock_inner();
        g.states[me] = RunState::Finished;
        for state in &mut g.states {
            if *state == RunState::BlockedOnThread(me) {
                *state = RunState::Runnable;
            }
        }
        if let Some(msg) = failure {
            g.record_failure(FailureKind::Panic(msg));
        }
        if !g.aborting {
            self.choose(&mut g, me, false);
        }
        self.cv.notify_all();
    }

    /// Model-level join: one decision point, then block until `target`
    /// finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let mut g = self.lock_inner();
        if g.aborting {
            drop(g);
            std::panic::panic_any(AbortUnwind);
        }
        self.choose(&mut g, me, true);
        self.cv.notify_all();
        g = self.wait_until_mine(g, me);
        loop {
            if g.states[target] == RunState::Finished {
                return;
            }
            g.states[me] = RunState::BlockedOnThread(target);
            self.choose(&mut g, me, false);
            self.cv.notify_all();
            g = self.wait_until_mine(g, me);
        }
    }

    /// Aborts the execution (scope body panicked outside any decision
    /// point); children wake and unwind via [`AbortUnwind`].
    pub(crate) fn abort_with(&self, failure: Option<String>) {
        let mut g = self.lock_inner();
        match failure {
            Some(msg) => g.record_failure(FailureKind::Panic(msg)),
            None => g.aborting = true,
        }
        self.cv.notify_all();
    }
}

struct ExecOutcome {
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    failure: Option<FailureKind>,
    orderings: BTreeMap<String, u64>,
}

/// Runs the body once under a fixed prefix + fill mode.
fn run_once<F: Fn()>(prefix: Vec<usize>, mode: Mode, opts: &CheckOptions, body: &F) -> ExecOutcome {
    let exec = Arc::new(Exec::new(prefix, mode, opts));
    let root = exec.register_thread();
    debug_assert_eq!(root, 0);
    set_current(Some((exec.clone(), root)));
    let outcome = catch_unwind(AssertUnwindSafe(body));
    let failure = match outcome {
        Ok(()) => None,
        Err(payload) => payload_message(payload.as_ref()),
    };
    exec.thread_finished(root, failure);
    set_current(None);
    let g = exec.lock_inner();
    ExecOutcome {
        schedule: g.schedule.clone(),
        decisions: g.decisions.clone(),
        failure: g.failure.clone(),
        orderings: g.orderings.clone(),
    }
}

fn merge_report(report: &mut Report, outcome: &ExecOutcome) {
    report.max_decisions = report.max_decisions.max(outcome.decisions.len());
    for (key, count) in &outcome.orderings {
        *report.orderings.entry(key.clone()).or_insert(0) += count;
    }
}

/// Explores interleavings of `body`; see [`crate::check_with`] for the
/// public contract.
pub(crate) fn explore<F: Fn()>(opts: &CheckOptions, body: F) -> Result<Report, Failure> {
    let mut report = Report::default();
    let mut prefix: Vec<usize> = Vec::new();
    loop {
        let outcome = run_once(prefix.clone(), Mode::Guided, opts, &body);
        report.executions += 1;
        merge_report(&mut report, &outcome);
        if let Some(kind) = outcome.failure {
            return Err(Failure {
                kind,
                schedule: Schedule(outcome.schedule),
            });
        }
        if report.executions as usize >= opts.max_iterations {
            report.truncated = true;
            break;
        }
        // Backtrack: deepest decision with an unexplored, in-budget
        // alternative becomes the next prefix.
        let mut next: Option<Vec<usize>> = None;
        'scan: for (depth, decision) in outcome.decisions.iter().enumerate().rev() {
            for pos in decision.chosen_pos + 1..decision.canonical.len() {
                let cost = usize::from(decision.prev_enabled && pos != 0);
                if decision.preemptions_before + cost <= opts.preemption_bound {
                    let mut p = outcome.schedule[..depth].to_vec();
                    p.push(decision.canonical[pos]);
                    next = Some(p);
                    break 'scan;
                }
                report.bound_skips += 1;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
    let mut seed = opts.seed | 1;
    for _ in 0..opts.random_walks {
        let walk_seed = xorshift(&mut seed);
        let outcome = run_once(Vec::new(), Mode::Random(walk_seed | 1), opts, &body);
        report.random_executions += 1;
        merge_report(&mut report, &outcome);
        if let Some(kind) = outcome.failure {
            return Err(Failure {
                kind,
                schedule: Schedule(outcome.schedule),
            });
        }
    }
    Ok(report)
}

/// Replays one schedule; see [`crate::replay`].
pub(crate) fn replay_schedule<F: Fn()>(
    schedule: &Schedule,
    opts: &CheckOptions,
    body: F,
) -> Result<Report, Failure> {
    let outcome = run_once(schedule.0.clone(), Mode::Guided, opts, &body);
    let mut report = Report {
        executions: 1,
        ..Report::default()
    };
    merge_report(&mut report, &outcome);
    match outcome.failure {
        Some(kind) => Err(Failure {
            kind,
            schedule: Schedule(outcome.schedule),
        }),
        None => Ok(report),
    }
}
