//! The sync facade the runtime crates import instead of `std::sync`.
//!
//! In a normal build this module is zero-cost re-exports of `std` (plus
//! a thin poison-free `Mutex` and a no-argument-closure `scope`). Under
//! `RUSTFLAGS="--cfg mrsky_model"` the same names resolve to the
//! instrumented types in [`crate::checked`], so every atomic access,
//! lock operation, spawn, and join becomes a scheduler decision point
//! inside [`crate::check`] — and plain `std` behaviour outside it.
//!
//! Code on the facade must stick to the shared surface: `Mutex::{new,
//! lock, into_inner}`, the atomic `load/store/swap/compare_exchange/
//! fetch_add/fetch_sub`, and `scope(|s| s.spawn(|| ..))` with
//! `ScopedHandle::join`.

#[cfg(mrsky_model)]
pub use crate::checked::{
    scope, AtomicBool, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering, Scope, ScopedHandle,
};

#[cfg(not(mrsky_model))]
pub use passthrough::{
    scope, AtomicBool, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering, Scope, ScopedHandle,
};

#[cfg(not(mrsky_model))]
mod passthrough {
    //! Production build: `std` primitives with the facade's surface.

    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::PoisonError;

    /// Poison-free wrapper over [`std::sync::Mutex`] matching the
    /// instrumented API (no `Result`-returning `lock`).
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        /// Wraps a value.
        #[inline]
        pub fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquires the lock; a poisoned lock is recovered, not an error
        /// (panic propagation is handled at join sites instead).
        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            }
        }

        /// Consumes the mutex, returning the inner value.
        #[inline]
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Facade over [`std::thread::Scope`] with no-argument spawn
    /// closures (matching the instrumented variant).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle from [`Scope::spawn`].
    pub struct ScopedHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedHandle<'_, T> {
        /// Joins the thread.
        ///
        /// # Errors
        ///
        /// The thread's panic payload, as with
        /// [`std::thread::ScopedJoinHandle::join`].
        #[inline]
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.
        #[inline]
        pub fn spawn<F, T>(&self, f: F) -> ScopedHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Structured scoped threads; children are joined when the scope
    /// ends, and an unjoined child's panic propagates at that point.
    #[inline]
    pub fn scope<'env, F, R>(f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }
}
