//! Golden-file test for the Prometheus text exposition: the full output
//! for a fixed registry state is pinned byte-for-byte, so `# HELP`/`# TYPE`
//! comments, label escaping, series ordering, and the summary-quantile
//! format cannot drift silently. Regenerate with
//! `MRSKY_BLESS=1 cargo test -p mrsky-trace --test prometheus_golden`.

use mrsky_trace::MetricsRegistry;

/// A fixed registry state exercising every series family. Everything is
/// recorded from this one thread, so all writes land in one shard and the
/// exposition is fully deterministic.
fn exposition() -> String {
    let reg = MetricsRegistry::new();
    reg.set_enabled(true);
    reg.incr("dominance.tests", 12345);
    reg.incr("skyline/bnl.calls", 7);
    reg.gauge("partitions", 32.0);
    reg.gauge("mapreduce.peak_mem.reduce_in_bytes", 1500000.0);
    for v in [0u64, 1, 3, 900, 40000] {
        reg.observe("cmp", v);
    }
    for i in 0..1000 {
        reg.observe_quantile("mapreduce.task_seconds.map", f64::from(i) / 100.0);
    }
    reg.snapshot().to_prometheus()
}

#[test]
fn exposition_matches_golden_file() {
    let got = exposition();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_prometheus.txt");
    if std::env::var_os("MRSKY_BLESS").is_some() {
        std::fs::write(path, &got).expect("write golden");
    }
    let want =
        std::fs::read_to_string(path).expect("golden file missing; regenerate with MRSKY_BLESS=1");
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from the golden file; \
         regenerate with MRSKY_BLESS=1 if the change is intentional"
    );
}

#[test]
fn exposition_is_stable_across_repeated_snapshots() {
    let a = exposition();
    let b = exposition();
    assert_eq!(a.as_bytes(), b.as_bytes());
}
