//! Model checks of the real `MetricsRegistry` under adversarial
//! interleavings. Compiled only with `RUSTFLAGS="--cfg mrsky_model"`
//! (the CI `model-check` job), where the sync facade is instrumented.
#![cfg(mrsky_model)]

use mrsky_model::{check_opts, CheckOptions};
use mrsky_trace::MetricsRegistry;

fn opts() -> CheckOptions {
    CheckOptions {
        preemption_bound: 2,
        random_walks: 8,
        max_iterations: 5_000,
        ..CheckOptions::default()
    }
}

/// Racing writers on the sharded registry: the snapshot fold after the
/// join must see every increment exactly once, on every schedule.
#[test]
fn model_registry_counter_merge_is_linearizable() {
    let report = check_opts(&opts(), || {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        mrsky_model::sync::scope(|s| {
            let h = s.spawn(|| {
                reg.incr("spread", 2);
                reg.observe("obs", 5);
            });
            reg.incr("spread", 1);
            let _ = h.join();
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("spread"), Some(&3), "lost increment");
        assert_eq!(snap.histograms.get("obs").map(|h| h.count()), Some(1));
    });
    assert!(report.executions >= 1);
}

/// A concurrent snapshot during a write must be a prefix-consistent
/// fold: it can miss in-flight increments but never invent or corrupt
/// them, and the enable flag race is benign.
#[test]
fn model_registry_snapshot_during_writes_is_sane() {
    let report = check_opts(&opts(), || {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        let mid = mrsky_model::sync::scope(|s| {
            let writer = s.spawn(|| {
                reg.incr("c", 1);
                reg.incr("c", 1);
            });
            let observed = reg.snapshot().counters.get("c").copied().unwrap_or(0);
            let _ = writer.join();
            observed
        });
        assert!(mid <= 2, "snapshot saw more than was ever written");
        let finals = reg.snapshot();
        assert_eq!(
            finals.counters.get("c"),
            Some(&2),
            "final fold lost a write"
        );
    });
    assert!(report.executions >= 1);
}
