//! Post-hoc trace analysis: schema validation for recorded streams and a
//! human-readable [`TraceSummary`] table (`mrsky trace --summary`).

use crate::event::{EventKind, PhaseKind, TraceEvent};
use crate::registry::Histogram;
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Validates a recorded event stream against the schema invariants the
/// tracer guarantees:
///
/// 1. sequence numbers strictly increase,
/// 2. jobs and phases finish only after they start (and at most once),
/// 3. every generic span closes a matching open,
/// 4. each phase finishes exactly the task count it announced,
/// 5. a partition restored from a checkpoint is never *also* recomputed:
///    no `partition_local_skyline` may share a partition id with a
///    `checkpoint_restored` in the same run (this is how the resume
///    path proves it skipped finished partitions).
///
/// A `run_resumed` marker means a simulated crash tore the stream: every
/// job, phase, and span the killed run left open is considered abandoned
/// (not a violation), and the restored/recomputed bookkeeping restarts —
/// the killed run legitimately computed partitions the resumed run then
/// restores.
///
/// Returns every violation found (empty = valid).
pub fn validate_events(events: &[TraceEvent]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut last_seq: Option<u64> = None;
    let mut open_jobs: BTreeMap<String, ()> = BTreeMap::new();
    let mut open_phases: BTreeMap<(String, PhaseKind), u64> = BTreeMap::new();
    let mut finished_tasks: BTreeMap<(String, PhaseKind), u64> = BTreeMap::new();
    let mut open_spans: BTreeMap<String, u64> = BTreeMap::new();
    let mut restored_partitions: BTreeMap<u64, ()> = BTreeMap::new();
    let mut computed_partitions: BTreeMap<u64, ()> = BTreeMap::new();

    for ev in events {
        if let Some(prev) = last_seq {
            if ev.seq <= prev {
                errors.push(format!(
                    "seq not strictly increasing: {} after {}",
                    ev.seq, prev
                ));
            }
        }
        last_seq = Some(ev.seq);

        match &ev.kind {
            // side effects in the guards are intentional: the map updates
            // every time, the arm body only on the violation
            EventKind::JobStarted { job } if open_jobs.insert(job.clone(), ()).is_some() => {
                errors.push(format!("job `{job}` started twice (seq {})", ev.seq));
            }
            EventKind::JobFinished { job, .. } if open_jobs.remove(job).is_none() => {
                errors.push(format!(
                    "job `{job}` finished without starting (seq {})",
                    ev.seq
                ));
            }
            EventKind::PhaseStarted {
                job, phase, tasks, ..
            } => {
                if !open_jobs.contains_key(job) {
                    errors.push(format!(
                        "phase {phase} of `{job}` started outside its job (seq {})",
                        ev.seq
                    ));
                }
                if open_phases.insert((job.clone(), *phase), *tasks).is_some() {
                    errors.push(format!(
                        "phase {phase} of `{job}` started twice (seq {})",
                        ev.seq
                    ));
                }
            }
            EventKind::PhaseFinished { job, phase, .. } => {
                let key = (job.clone(), *phase);
                match open_phases.remove(&key) {
                    None => errors.push(format!(
                        "phase {phase} of `{job}` finished without starting (seq {})",
                        ev.seq
                    )),
                    Some(expected) => {
                        let finished = finished_tasks.get(&key).copied().unwrap_or(0);
                        if finished != expected {
                            errors.push(format!(
                                "phase {phase} of `{job}` announced {expected} tasks but finished {finished}"
                            ));
                        }
                    }
                }
            }
            EventKind::TaskFinished { job, phase, .. } => {
                let slot = finished_tasks.entry((job.clone(), *phase)).or_insert(0);
                *slot += 1;
            }
            EventKind::SpanBegin { name } => {
                *open_spans.entry(name.clone()).or_insert(0) += 1;
            }
            EventKind::SpanEnd { name } => match open_spans.get_mut(name) {
                Some(depth) if *depth > 0 => *depth -= 1,
                _ => errors.push(format!(
                    "span `{name}` closed without opening (seq {})",
                    ev.seq
                )),
            },
            EventKind::PartitionLocalSkyline { partition, .. } => {
                computed_partitions.insert(*partition, ());
            }
            EventKind::CheckpointRestored { partition, .. } => {
                restored_partitions.insert(*partition, ());
            }
            EventKind::RunResumed { .. } => {
                // Crash recovery: the killed run's open state is abandoned,
                // and its computed partitions are exactly what the resumed
                // run restores — reset instead of reporting them.
                open_jobs.clear();
                open_phases.clear();
                finished_tasks.clear();
                open_spans.clear();
                computed_partitions.clear();
                restored_partitions.clear();
            }
            EventKind::RowsFiltered { input, filtered } if filtered > input => {
                errors.push(format!(
                    "rows_filtered dropped {filtered} of only {input} rows (seq {})",
                    ev.seq
                ));
            }
            EventKind::MergeOverlap { seconds, .. } if !seconds.is_finite() || *seconds < 0.0 => {
                errors.push(format!(
                    "merge_overlap span {seconds} is not a non-negative finite duration (seq {})",
                    ev.seq
                ));
            }
            EventKind::CausalEdge { edge, src, dst } => {
                if edge.is_empty() || src.is_empty() || dst.is_empty() {
                    errors.push(format!("causal_edge with empty field (seq {})", ev.seq));
                } else if src == dst {
                    errors.push(format!(
                        "causal_edge `{edge}` is a self-loop on `{src}` (seq {})",
                        ev.seq
                    ));
                }
            }
            EventKind::TaskStolen { thief, victim, .. } if thief == victim => {
                errors.push(format!(
                    "task_stolen reports worker {thief} stealing from itself (seq {})",
                    ev.seq
                ));
            }
            _ => {}
        }
    }

    for partition in restored_partitions.keys() {
        if computed_partitions.contains_key(partition) {
            errors.push(format!(
                "partition {partition} was restored from a checkpoint but also recomputed"
            ));
        }
    }

    for job in open_jobs.keys() {
        errors.push(format!("job `{job}` never finished"));
    }
    for (job, phase) in open_phases.keys() {
        errors.push(format!("phase {phase} of `{job}` never finished"));
    }
    for (name, depth) in &open_spans {
        if *depth > 0 {
            errors.push(format!("span `{name}` left open {depth} time(s)"));
        }
    }
    errors
}

/// Aggregate view of one job's phase, built from task lifecycle events.
#[derive(Debug, Default, Clone)]
pub struct PhaseSummary {
    /// Tasks announced by `phase_started`.
    pub tasks: u64,
    /// `task_finished` events observed.
    pub finished: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Speculative backups that won.
    pub speculative_wins: u64,
    /// Tasks rebalanced by work stealing during real execution.
    pub steals: u64,
    /// Simulated phase span in seconds.
    pub sim_span: f64,
}

/// Aggregate view of one job.
#[derive(Debug, Default, Clone)]
pub struct JobSummary {
    /// Per-phase aggregates.
    pub phases: BTreeMap<PhaseKind, PhaseSummary>,
    /// Shuffle totals: bytes, records, segments.
    pub shuffle: (u64, u64, u64),
    /// Per-phase peak resident bytes (map = buffered map output, reduce =
    /// shuffled reduce input), maxed across `phase_peak_memory` events.
    pub peak_mem: BTreeMap<PhaseKind, u64>,
    /// DFS block reads: (local, remote).
    pub dfs_reads: (u64, u64),
    /// Simulated end-to-end seconds.
    pub sim_total: f64,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
}

/// Aggregate view of one kernel across all its invocations.
#[derive(Debug, Default, Clone)]
pub struct KernelSummary {
    /// Invocation count.
    pub calls: u64,
    /// Total input points.
    pub input: u64,
    /// Total output points.
    pub output: u64,
    /// Total passes over the input.
    pub passes: u64,
    /// Total tracer-clock kernel time in microseconds (0 for traces
    /// predating the `elapsed_us` field or simulated clocks).
    pub elapsed_us: u64,
    /// Dominance comparisons per invocation, log₂-bucketed.
    pub comparisons: Histogram,
}

/// Everything `mrsky trace --summary` reports, built from a trace stream.
#[derive(Debug, Default, Clone)]
pub struct TraceSummary {
    /// Per-job aggregates, in first-seen order semantics (BTreeMap by name).
    pub jobs: BTreeMap<String, JobSummary>,
    /// Per-kernel aggregates.
    pub kernels: BTreeMap<String, KernelSummary>,
    /// Per-partition `(input, local-skyline size, pruned, kernel)` rows.
    /// `kernel` names the kernel that computed the partition (`pruned`
    /// when skipped, empty for pre-schema traces).
    pub partitions: BTreeMap<u64, (u64, u64, bool, String)>,
    /// Ingest totals: (services, rejected).
    pub ingest: Option<(u64, u64)>,
    /// Driver span wall durations in microseconds, by name.
    pub spans: BTreeMap<String, u64>,
    /// Injected faults by `site/kind` wire names.
    pub faults: BTreeMap<String, u64>,
    /// Operations that ran out of their retry budget.
    pub retries_exhausted: u64,
    /// Partition checkpoints written / restored.
    pub checkpoints: (u64, u64),
    /// Map-side filter sweep totals: (rows entering, rows dropped).
    pub filtered: (u64, u64),
    /// Witness-based sector pruning: (partitions skipped, points skipped).
    pub sectors_pruned: (u64, u64),
    /// Streaming-merge overlap: (seconds concurrent with reduce, candidates
    /// absorbed), summed across `merge_overlap` events.
    pub merge_overlap: (f64, u64),
    /// Records quarantined to the dead-letter report.
    pub quarantined: u64,
    /// Crash-recovery resumes observed (`run_resumed` markers).
    pub resumes: u64,
    /// Serving layer: completed requests by `op/outcome` wire names.
    pub requests: BTreeMap<String, u64>,
    /// Circuit-breaker transitions by `op: from->to`.
    pub breaker_transitions: BTreeMap<String, u64>,
    /// Requests shed by admission control, by reason.
    pub sheds: BTreeMap<String, u64>,
    /// Skyband deletion repairs: (from-buffer, underflow recomputes,
    /// candidates promoted).
    pub skyband_repairs: (u64, u64, u64),
    /// Stale snapshot serves by reason.
    pub stale_served: BTreeMap<String, u64>,
    /// Causal edges by edge kind (`dispatch`, `slot`, `barrier`, ...).
    pub causal_edges: BTreeMap<String, u64>,
    /// Latency quantile sketches derived from the stream: simulated task
    /// durations per phase, kernel comparison counts, and per-reducer
    /// shuffle bytes, keyed by a stable row label.
    pub latency: BTreeMap<String, QuantileSketch>,
    /// Total events consumed.
    pub events: u64,
}

/// Rank-error target for the summary's latency sketches: a single
/// (unmerged) sketch per row, so the reporting budget of 0.01 holds with
/// headroom.
const SUMMARY_EPSILON: f64 = 0.005;

impl TraceSummary {
    /// Folds an event stream into aggregates.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut summary = TraceSummary {
            events: events.len() as u64,
            ..TraceSummary::default()
        };
        let mut phase_starts: BTreeMap<(String, PhaseKind), f64> = BTreeMap::new();
        let mut span_opens: BTreeMap<String, Vec<u64>> = BTreeMap::new();

        for ev in events {
            match &ev.kind {
                EventKind::JobStarted { job } => {
                    summary.jobs.entry(job.clone()).or_default();
                }
                EventKind::JobFinished {
                    job,
                    sim_total,
                    wall_seconds,
                } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    entry.sim_total = *sim_total;
                    entry.wall_seconds = *wall_seconds;
                }
                EventKind::PhaseStarted {
                    job,
                    phase,
                    tasks,
                    sim,
                } => {
                    phase_starts.insert((job.clone(), *phase), *sim);
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    entry.phases.entry(*phase).or_default().tasks = *tasks;
                }
                EventKind::PhaseFinished {
                    job,
                    phase,
                    sim,
                    speculative_wins,
                } => {
                    let start = phase_starts.remove(&(job.clone(), *phase)).unwrap_or(0.0);
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    let p = entry.phases.entry(*phase).or_default();
                    p.sim_span = (sim - start).max(0.0);
                    p.speculative_wins = *speculative_wins;
                }
                EventKind::TaskRetried { job, phase, .. } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    entry.phases.entry(*phase).or_default().retries += 1;
                }
                EventKind::TaskFinished {
                    job,
                    phase,
                    sim_start,
                    sim_end,
                    ..
                } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    entry.phases.entry(*phase).or_default().finished += 1;
                    summary
                        .latency
                        .entry(format!("task seconds ({phase})"))
                        .or_insert_with(|| QuantileSketch::new(SUMMARY_EPSILON))
                        .observe((sim_end - sim_start).max(0.0));
                }
                EventKind::TaskStolen { job, phase, .. } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    entry.phases.entry(*phase).or_default().steals += 1;
                }
                EventKind::CausalEdge { edge, .. } => {
                    *summary.causal_edges.entry(edge.clone()).or_insert(0) += 1;
                }
                EventKind::ShufflePartition {
                    job,
                    bytes,
                    records,
                    segments,
                    ..
                } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    entry.shuffle.0 += bytes;
                    entry.shuffle.1 += records;
                    entry.shuffle.2 += segments;
                    summary
                        .latency
                        .entry("shuffle bytes (per reducer)".into())
                        .or_insert_with(|| QuantileSketch::new(SUMMARY_EPSILON))
                        .observe(*bytes as f64);
                }
                EventKind::PhasePeakMemory {
                    job,
                    phase,
                    peak_bytes,
                } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    let slot = entry.peak_mem.entry(*phase).or_insert(0);
                    *slot = (*slot).max(*peak_bytes);
                }
                EventKind::DfsBlockRead { job, local, .. } => {
                    let entry = summary.jobs.entry(job.clone()).or_default();
                    if *local {
                        entry.dfs_reads.0 += 1;
                    } else {
                        entry.dfs_reads.1 += 1;
                    }
                }
                EventKind::KernelRun {
                    kernel,
                    input,
                    output,
                    comparisons,
                    passes,
                    elapsed_us,
                } => {
                    let entry = summary.kernels.entry(kernel.clone()).or_default();
                    entry.calls += 1;
                    entry.input += input;
                    entry.output += output;
                    entry.passes += passes;
                    entry.elapsed_us += elapsed_us;
                    entry.comparisons.record(*comparisons);
                    summary
                        .latency
                        .entry("kernel comparisons".into())
                        .or_insert_with(|| QuantileSketch::new(SUMMARY_EPSILON))
                        .observe(*comparisons as f64);
                }
                EventKind::PartitionLocalSkyline {
                    partition,
                    input,
                    output,
                    pruned,
                    kernel,
                } => {
                    summary
                        .partitions
                        .insert(*partition, (*input, *output, *pruned, kernel.clone()));
                }
                EventKind::IngestFinished { services, rejected } => {
                    summary.ingest = Some((*services, *rejected));
                }
                EventKind::SpanBegin { name } => {
                    span_opens.entry(name.clone()).or_default().push(ev.wall_us);
                }
                EventKind::SpanEnd { name } => {
                    if let Some(begin) = span_opens.get_mut(name).and_then(Vec::pop) {
                        let dur = ev.wall_us.saturating_sub(begin);
                        let slot = summary.spans.entry(name.clone()).or_insert(0);
                        *slot = slot.saturating_add(dur);
                    }
                }
                EventKind::FaultInjected { site, fault, .. } => {
                    *summary.faults.entry(format!("{site}/{fault}")).or_insert(0) += 1;
                }
                EventKind::TaskRetryExhausted { .. } => {
                    summary.retries_exhausted += 1;
                }
                EventKind::CheckpointWritten { .. } => {
                    summary.checkpoints.0 += 1;
                }
                EventKind::CheckpointRestored { .. } => {
                    summary.checkpoints.1 += 1;
                }
                EventKind::RowsFiltered { input, filtered } => {
                    summary.filtered.0 += input;
                    summary.filtered.1 += filtered;
                }
                EventKind::SectorPruned { points, .. } => {
                    summary.sectors_pruned.0 += 1;
                    summary.sectors_pruned.1 += points;
                }
                EventKind::MergeOverlap {
                    seconds,
                    candidates,
                } => {
                    summary.merge_overlap.0 += seconds;
                    summary.merge_overlap.1 += candidates;
                }
                EventKind::RecordQuarantined { .. } => {
                    summary.quarantined += 1;
                }
                EventKind::RunResumed { .. } => {
                    summary.resumes += 1;
                }
                EventKind::Request {
                    op,
                    outcome,
                    sim_latency,
                    ..
                } => {
                    *summary
                        .requests
                        .entry(format!("{op}/{outcome}"))
                        .or_insert(0) += 1;
                    summary
                        .latency
                        .entry(format!("request seconds ({op})"))
                        .or_insert_with(|| QuantileSketch::new(SUMMARY_EPSILON))
                        .observe(sim_latency.max(0.0));
                }
                EventKind::BreakerTransition { op, from, to, .. } => {
                    *summary
                        .breaker_transitions
                        .entry(format!("{op}: {from}->{to}"))
                        .or_insert(0) += 1;
                }
                EventKind::Shed { reason, .. } => {
                    *summary.sheds.entry(reason.clone()).or_insert(0) += 1;
                }
                EventKind::SkybandRepair {
                    promoted,
                    underflow,
                    ..
                } => {
                    if *underflow {
                        summary.skyband_repairs.1 += 1;
                    } else {
                        summary.skyband_repairs.0 += 1;
                    }
                    summary.skyband_repairs.2 += promoted;
                }
                EventKind::StaleServed { reason, .. } => {
                    *summary.stale_served.entry(reason.clone()).or_insert(0) += 1;
                }
                EventKind::TaskScheduled { .. }
                | EventKind::TaskLaunched { .. }
                | EventKind::TaskSpeculated { .. }
                | EventKind::IngestStarted { .. } => {}
            }
        }
        summary
    }

    /// Renders the fixed-width report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace summary ({} events)", self.events);

        if let Some((services, rejected)) = self.ingest {
            let _ = writeln!(out, "  ingest: {services} services, {rejected} rejected");
        }

        for (job, js) in &self.jobs {
            let _ = writeln!(
                out,
                "  job {job}: sim {:.2}s, wall {:.3}s",
                js.sim_total, js.wall_seconds
            );
            for (phase, p) in &js.phases {
                let _ = writeln!(
                    out,
                    "    {phase:<6} tasks={} finished={} retries={} spec_wins={} span={:.2}s",
                    p.tasks, p.finished, p.retries, p.speculative_wins, p.sim_span
                );
            }
            if js.shuffle != (0, 0, 0) {
                let _ = writeln!(
                    out,
                    "    shuffle: {} bytes, {} records, {} segments",
                    js.shuffle.0, js.shuffle.1, js.shuffle.2
                );
            }
            if js.dfs_reads != (0, 0) {
                let _ = writeln!(
                    out,
                    "    dfs reads: {} local, {} remote",
                    js.dfs_reads.0, js.dfs_reads.1
                );
            }
            if !js.peak_mem.is_empty() {
                let _ = write!(out, "    peak memory:");
                for (phase, bytes) in &js.peak_mem {
                    let _ = write!(out, " {phase}={bytes}B");
                }
                out.push('\n');
            }
            let steals: u64 = js.phases.values().map(|p| p.steals).sum();
            if steals > 0 {
                let _ = writeln!(out, "    work-stealing: {steals} task(s) rebalanced");
            }
        }

        if !self.partitions.is_empty() {
            let computed: Vec<_> = self
                .partitions
                .iter()
                .filter(|(_, (_, _, pruned, _))| !pruned)
                .collect();
            let pruned = self.partitions.len() - computed.len();
            let _ = writeln!(
                out,
                "  partitions: {} computed, {pruned} pruned",
                computed.len()
            );
            for (id, (input, output, _, kernel)) in &computed {
                let _ = writeln!(
                    out,
                    "    p{id:<4} in={input:<8} local_skyline={output:<8} kernel={}",
                    if kernel.is_empty() { "?" } else { kernel }
                );
            }
        }

        for (kernel, ks) in &self.kernels {
            let _ = writeln!(
                out,
                "  kernel {kernel}: calls={} in={} out={} passes={} time={}us comparisons(sum={}, mean={:.0})",
                ks.calls,
                ks.input,
                ks.output,
                ks.passes,
                ks.elapsed_us,
                ks.comparisons.sum(),
                ks.comparisons.mean()
            );
            let buckets = ks.comparisons.nonzero_buckets();
            if !buckets.is_empty() {
                let _ = write!(out, "    comparisons histogram:");
                for (le, count) in buckets {
                    let _ = write!(out, " le{le}:{count}");
                }
                out.push('\n');
            }
        }

        if !self.faults.is_empty() || self.retries_exhausted > 0 {
            let total: u64 = self.faults.values().sum();
            let _ = writeln!(
                out,
                "  chaos: {total} fault(s) injected, {} retry budget(s) exhausted",
                self.retries_exhausted
            );
            for (key, count) in &self.faults {
                let _ = writeln!(out, "    {key:<28} {count}");
            }
        }
        if self.filtered.1 > 0 {
            let _ = writeln!(
                out,
                "  filter points: {} of {} rows dropped map-side",
                self.filtered.1, self.filtered.0
            );
        }
        if self.sectors_pruned.0 > 0 {
            let _ = writeln!(
                out,
                "  sector pruning: {} partition(s) skipped ({} points)",
                self.sectors_pruned.0, self.sectors_pruned.1
            );
        }
        if self.merge_overlap.1 > 0 {
            let _ = writeln!(
                out,
                "  streaming merge: {:.2}s overlapped with reduce ({} candidates)",
                self.merge_overlap.0, self.merge_overlap.1
            );
        }
        if self.checkpoints != (0, 0) {
            let _ = writeln!(
                out,
                "  checkpoints: {} written, {} restored",
                self.checkpoints.0, self.checkpoints.1
            );
        }
        if self.quarantined > 0 {
            let _ = writeln!(out, "  quarantined records: {}", self.quarantined);
        }
        if self.resumes > 0 {
            let _ = writeln!(out, "  crash recoveries: {} resume(s)", self.resumes);
        }

        if !self.requests.is_empty() {
            let total: u64 = self.requests.values().sum();
            let _ = writeln!(out, "  serve requests: {total}");
            for (key, count) in &self.requests {
                let _ = writeln!(out, "    {key:<28} {count}");
            }
        }
        if !self.breaker_transitions.is_empty() {
            let _ = writeln!(out, "  breaker transitions:");
            for (key, count) in &self.breaker_transitions {
                let _ = writeln!(out, "    {key:<28} {count}");
            }
        }
        if !self.sheds.is_empty() {
            let total: u64 = self.sheds.values().sum();
            let _ = write!(out, "  load shed: {total} request(s)");
            for (reason, count) in &self.sheds {
                let _ = write!(out, " {reason}={count}");
            }
            out.push('\n');
        }
        if self.skyband_repairs != (0, 0, 0) {
            let _ = writeln!(
                out,
                "  skyband repairs: {} from buffer, {} underflow recompute(s), {} promoted",
                self.skyband_repairs.0, self.skyband_repairs.1, self.skyband_repairs.2
            );
        }
        if !self.stale_served.is_empty() {
            let total: u64 = self.stale_served.values().sum();
            let _ = write!(out, "  stale serves: {total}");
            for (reason, count) in &self.stale_served {
                let _ = write!(out, " {reason}={count}");
            }
            out.push('\n');
        }

        if !self.causal_edges.is_empty() {
            let _ = write!(out, "  causal edges:");
            for (edge, count) in &self.causal_edges {
                let _ = write!(out, " {edge}={count}");
            }
            out.push('\n');
        }

        if !self.latency.is_empty() {
            let _ = writeln!(out, "  latency quantiles (p50 / p95 / p99 / p999):");
            for (label, sketch) in &self.latency {
                let qs: Vec<String> = QuantileSketch::REPORTED
                    .iter()
                    .map(|&(_, q)| fmt_quantile(sketch.quantile(q).unwrap_or(0.0)))
                    .collect();
                let _ = writeln!(out, "    {label:<28} {}", qs.join(" / "));
            }
        }

        if !self.spans.is_empty() {
            let _ = writeln!(out, "  driver spans (wall):");
            for (name, us) in &self.spans {
                let _ = writeln!(out, "    {name:<20} {:.3}s", *us as f64 / 1e6);
            }
        }
        out
    }
}

/// Compact quantile formatting: integral values print without a fraction
/// (comparison counts, byte sizes), fractional ones with four decimals
/// (simulated seconds).
fn fmt_quantile(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, wall_us: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { seq, wall_us, kind }
    }

    fn valid_stream() -> Vec<TraceEvent> {
        use EventKind::*;
        vec![
            ev(0, 0, SpanBegin { name: "run".into() }),
            ev(1, 5, JobStarted { job: "j".into() }),
            ev(
                2,
                6,
                PhaseStarted {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    tasks: 2,
                    sim: 0.0,
                },
            ),
            ev(
                3,
                7,
                TaskFinished {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    task: 0,
                    slot: 0,
                    sim_start: 0.0,
                    sim_end: 1.0,
                    speculative: false,
                },
            ),
            ev(
                4,
                8,
                TaskRetried {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    task: 1,
                    attempt: 1,
                },
            ),
            ev(
                5,
                9,
                TaskFinished {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    task: 1,
                    slot: 1,
                    sim_start: 0.0,
                    sim_end: 2.0,
                    speculative: true,
                },
            ),
            ev(
                6,
                10,
                PhaseFinished {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    sim: 2.0,
                    speculative_wins: 1,
                },
            ),
            ev(
                7,
                11,
                KernelRun {
                    kernel: "bnl".into(),
                    input: 100,
                    output: 10,
                    comparisons: 500,
                    passes: 1,
                    elapsed_us: 40,
                },
            ),
            ev(
                8,
                12,
                PartitionLocalSkyline {
                    partition: 3,
                    input: 100,
                    output: 10,
                    pruned: false,
                    kernel: "bnl".into(),
                },
            ),
            ev(
                9,
                13,
                JobFinished {
                    job: "j".into(),
                    sim_total: 2.5,
                    wall_seconds: 0.01,
                },
            ),
            ev(10, 20, SpanEnd { name: "run".into() }),
        ]
    }

    #[test]
    fn valid_stream_passes() {
        assert!(validate_events(&valid_stream()).is_empty());
    }

    #[test]
    fn validator_flags_each_violation() {
        use EventKind::*;
        let mut dup_seq = valid_stream();
        dup_seq[3].seq = dup_seq[2].seq;
        assert!(validate_events(&dup_seq)
            .iter()
            .any(|e| e.contains("strictly increasing")));

        let orphan_end = vec![ev(0, 0, SpanEnd { name: "x".into() })];
        assert!(validate_events(&orphan_end)
            .iter()
            .any(|e| e.contains("closed without opening")));

        let unclosed = vec![ev(0, 0, JobStarted { job: "j".into() })];
        assert!(validate_events(&unclosed)
            .iter()
            .any(|e| e.contains("never finished")));

        let mut wrong_count = valid_stream();
        wrong_count.remove(3); // drop one task_finished
        assert!(validate_events(&wrong_count)
            .iter()
            .any(|e| e.contains("announced 2 tasks but finished 1")));
    }

    #[test]
    fn validator_rejects_restored_and_recomputed_partition() {
        use EventKind::*;
        let stream = vec![
            ev(
                0,
                0,
                CheckpointRestored {
                    partition: 3,
                    points: 10,
                },
            ),
            ev(
                1,
                1,
                PartitionLocalSkyline {
                    partition: 3,
                    input: 100,
                    output: 10,
                    pruned: false,
                    kernel: "bnl".into(),
                },
            ),
        ];
        assert!(validate_events(&stream)
            .iter()
            .any(|e| e.contains("restored from a checkpoint but also recomputed")));

        // distinct partitions are fine
        let ok = vec![
            ev(
                0,
                0,
                CheckpointRestored {
                    partition: 3,
                    points: 10,
                },
            ),
            ev(
                1,
                1,
                PartitionLocalSkyline {
                    partition: 4,
                    input: 100,
                    output: 10,
                    pruned: false,
                    kernel: "bnl".into(),
                },
            ),
        ];
        assert!(validate_events(&ok).is_empty());
    }

    #[test]
    fn run_resumed_absolves_the_killed_runs_torn_state() {
        use EventKind::*;
        // A killed run: job and span left open, partition 3 computed —
        // then the resumed run restores partition 3 and completes cleanly.
        let stream = vec![
            ev(0, 0, JobStarted { job: "j1".into() }),
            ev(1, 1, SpanBegin { name: "run".into() }),
            ev(
                2,
                2,
                PartitionLocalSkyline {
                    partition: 3,
                    input: 100,
                    output: 10,
                    pruned: false,
                    kernel: "bnl".into(),
                },
            ),
            ev(3, 3, RunResumed { run: 2 }),
            ev(
                4,
                4,
                CheckpointRestored {
                    partition: 3,
                    points: 10,
                },
            ),
            ev(5, 5, JobStarted { job: "j1".into() }),
            ev(
                6,
                6,
                JobFinished {
                    job: "j1".into(),
                    sim_total: 1.0,
                    wall_seconds: 0.1,
                },
            ),
        ];
        assert!(
            validate_events(&stream).is_empty(),
            "{:?}",
            validate_events(&stream)
        );

        // Without the marker, the same stream is torn *and* recomputes a
        // restored partition.
        let torn: Vec<TraceEvent> = stream
            .iter()
            .filter(|e| !matches!(e.kind, RunResumed { .. }))
            .cloned()
            .collect();
        let problems = validate_events(&torn);
        assert!(
            problems.iter().any(|e| e.contains("restored")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|e| e.contains("never finished") || e.contains("left open")),
            "{problems:?}"
        );
    }

    #[test]
    fn summary_aggregates_chaos_events() {
        use EventKind::*;
        let stream = vec![
            ev(
                0,
                0,
                FaultInjected {
                    site: "parallel-chunk".into(),
                    fault: "panic".into(),
                    scope: "locals".into(),
                    index: 2,
                    attempt: 0,
                },
            ),
            ev(
                1,
                1,
                FaultInjected {
                    site: "parallel-chunk".into(),
                    fault: "panic".into(),
                    scope: "locals".into(),
                    index: 5,
                    attempt: 1,
                },
            ),
            ev(
                2,
                2,
                TaskRetryExhausted {
                    site: "shuffle-fetch".into(),
                    scope: "merge".into(),
                    index: 0,
                    attempts: 4,
                },
            ),
            ev(
                3,
                3,
                CheckpointWritten {
                    partition: 1,
                    points: 9,
                },
            ),
            ev(
                4,
                4,
                CheckpointRestored {
                    partition: 1,
                    points: 9,
                },
            ),
            ev(
                5,
                5,
                RecordQuarantined {
                    source: "qws.txt".into(),
                    line: 8,
                    reason: "bad".into(),
                },
            ),
        ];
        let summary = TraceSummary::from_events(&stream);
        assert_eq!(summary.faults.get("parallel-chunk/panic"), Some(&2));
        assert_eq!(summary.retries_exhausted, 1);
        assert_eq!(summary.checkpoints, (1, 1));
        assert_eq!(summary.quarantined, 1);
        let text = summary.render();
        assert!(text.contains("2 fault(s) injected"));
        assert!(text.contains("1 retry budget(s) exhausted"));
        assert!(text.contains("checkpoints: 1 written, 1 restored"));
        assert!(text.contains("quarantined records: 1"));
    }

    #[test]
    fn validator_checks_pruning_event_sanity() {
        use EventKind::*;
        let bad_filter = vec![ev(
            0,
            0,
            RowsFiltered {
                input: 10,
                filtered: 11,
            },
        )];
        assert!(validate_events(&bad_filter)
            .iter()
            .any(|e| e.contains("rows_filtered")));

        let bad_overlap = vec![ev(
            0,
            0,
            MergeOverlap {
                seconds: -1.0,
                candidates: 5,
            },
        )];
        assert!(validate_events(&bad_overlap)
            .iter()
            .any(|e| e.contains("merge_overlap")));

        let fine = vec![
            ev(
                0,
                0,
                RowsFiltered {
                    input: 10,
                    filtered: 10,
                },
            ),
            ev(
                1,
                1,
                SectorPruned {
                    partition: 2,
                    points: 30,
                },
            ),
            ev(
                2,
                2,
                MergeOverlap {
                    seconds: 0.0,
                    candidates: 0,
                },
            ),
        ];
        assert!(validate_events(&fine).is_empty());
    }

    #[test]
    fn summary_aggregates_pruning_events() {
        use EventKind::*;
        let stream = vec![
            ev(
                0,
                0,
                RowsFiltered {
                    input: 800,
                    filtered: 500,
                },
            ),
            ev(
                1,
                1,
                RowsFiltered {
                    input: 800,
                    filtered: 300,
                },
            ),
            ev(
                2,
                2,
                SectorPruned {
                    partition: 4,
                    points: 120,
                },
            ),
            ev(
                3,
                3,
                MergeOverlap {
                    seconds: 2.5,
                    candidates: 64,
                },
            ),
        ];
        let summary = TraceSummary::from_events(&stream);
        assert_eq!(summary.filtered, (1600, 800));
        assert_eq!(summary.sectors_pruned, (1, 120));
        assert_eq!(summary.merge_overlap, (2.5, 64));
        let text = summary.render();
        assert!(text.contains("filter points: 800 of 1600 rows dropped map-side"));
        assert!(text.contains("sector pruning: 1 partition(s) skipped (120 points)"));
        assert!(text.contains("streaming merge: 2.50s overlapped with reduce (64 candidates)"));
    }

    #[test]
    fn peak_memory_events_validate_and_aggregate() {
        use EventKind::*;
        let stream = vec![
            ev(0, 0, JobStarted { job: "j".into() }),
            ev(
                1,
                1,
                PhasePeakMemory {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    peak_bytes: 4096,
                },
            ),
            ev(
                2,
                2,
                PhasePeakMemory {
                    job: "j".into(),
                    phase: PhaseKind::Reduce,
                    peak_bytes: 1024,
                },
            ),
            // a second report for the same phase keeps the max
            ev(
                3,
                3,
                PhasePeakMemory {
                    job: "j".into(),
                    phase: PhaseKind::Reduce,
                    peak_bytes: 512,
                },
            ),
            ev(
                4,
                4,
                JobFinished {
                    job: "j".into(),
                    sim_total: 1.0,
                    wall_seconds: 0.1,
                },
            ),
        ];
        assert!(validate_events(&stream).is_empty());
        let summary = TraceSummary::from_events(&stream);
        let job = summary.jobs.get("j").unwrap();
        assert_eq!(job.peak_mem.get(&PhaseKind::Map), Some(&4096));
        assert_eq!(job.peak_mem.get(&PhaseKind::Reduce), Some(&1024));
        let text = summary.render();
        assert!(text.contains("peak memory: map=4096B reduce=1024B"));
    }

    #[test]
    fn summary_aggregates_the_stream() {
        let summary = TraceSummary::from_events(&valid_stream());
        let job = summary.jobs.get("j").unwrap();
        assert_eq!(job.sim_total, 2.5);
        let map = job.phases.get(&PhaseKind::Map).unwrap();
        assert_eq!(map.tasks, 2);
        assert_eq!(map.finished, 2);
        assert_eq!(map.retries, 1);
        assert_eq!(map.speculative_wins, 1);
        assert_eq!(map.sim_span, 2.0);
        let bnl = summary.kernels.get("bnl").unwrap();
        assert_eq!(bnl.calls, 1);
        assert_eq!(bnl.comparisons.sum(), 500);
        assert_eq!(
            summary.partitions.get(&3),
            Some(&(100, 10, false, "bnl".to_string()))
        );
        assert_eq!(summary.spans.get("run"), Some(&20));
    }

    #[test]
    fn validator_checks_causal_events() {
        use EventKind::*;
        let self_loop = vec![ev(
            0,
            0,
            CausalEdge {
                edge: "slot".into(),
                src: "task:j/map/1".into(),
                dst: "task:j/map/1".into(),
            },
        )];
        assert!(validate_events(&self_loop)
            .iter()
            .any(|e| e.contains("self-loop")));

        let empty_field = vec![ev(
            0,
            0,
            CausalEdge {
                edge: String::new(),
                src: "a".into(),
                dst: "b".into(),
            },
        )];
        assert!(validate_events(&empty_field)
            .iter()
            .any(|e| e.contains("empty field")));

        let self_steal = vec![ev(
            0,
            0,
            TaskStolen {
                job: "j".into(),
                phase: PhaseKind::Map,
                task: 1,
                thief: 2,
                victim: 2,
            },
        )];
        assert!(validate_events(&self_steal)
            .iter()
            .any(|e| e.contains("stealing from itself")));

        let fine = vec![
            ev(
                0,
                0,
                CausalEdge {
                    edge: "shuffle".into(),
                    src: "task:j/map/0".into(),
                    dst: "task:j/reduce/1".into(),
                },
            ),
            ev(
                1,
                1,
                TaskStolen {
                    job: "j".into(),
                    phase: PhaseKind::Map,
                    task: 1,
                    thief: 2,
                    victim: 0,
                },
            ),
        ];
        assert!(validate_events(&fine).is_empty());
    }

    #[test]
    fn summary_aggregates_causal_events_and_latency() {
        use EventKind::*;
        let mut stream = valid_stream();
        let next = stream.len() as u64;
        stream.push(ev(
            next,
            100,
            CausalEdge {
                edge: "slot".into(),
                src: "task:j/map/0".into(),
                dst: "task:j/map/1".into(),
            },
        ));
        stream.push(ev(
            next + 1,
            101,
            TaskStolen {
                job: "j".into(),
                phase: PhaseKind::Map,
                task: 1,
                thief: 3,
                victim: 0,
            },
        ));
        let summary = TraceSummary::from_events(&stream);
        assert_eq!(summary.causal_edges.get("slot"), Some(&1));
        let map = summary.jobs.get("j").unwrap().phases[&PhaseKind::Map].clone();
        assert_eq!(map.steals, 1);
        let tasks = summary.latency.get("task seconds (map)").unwrap();
        assert_eq!(tasks.count(), 2);
        let text = summary.render();
        assert!(text.contains("causal edges: slot=1"));
        assert!(text.contains("work-stealing: 1 task(s) rebalanced"));
        assert!(text.contains("latency quantiles (p50 / p95 / p99 / p999):"));
        assert!(text.contains("task seconds (map)"));
        assert!(text.contains("kernel comparisons"));
    }

    #[test]
    fn two_runs_render_byte_identical_summaries() {
        // The determinism guarantee: rendering is a pure function of the
        // trace (all row containers are ordered maps), so parsing and
        // summarizing the same JSONL twice yields identical bytes.
        let stream = valid_stream();
        let text: String = stream
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let run = |input: &str| {
            let events = crate::parse_jsonl(input).unwrap();
            TraceSummary::from_events(&events).render()
        };
        let first = run(&text);
        let second = run(&text);
        assert!(!first.is_empty());
        assert_eq!(first.as_bytes(), second.as_bytes());
    }

    #[test]
    fn summary_rows_are_sorted_regardless_of_event_order() {
        use EventKind::*;
        // Jobs and kernels arrive in reverse name order; the rendered
        // tables must still list them sorted.
        let stream = vec![
            ev(0, 0, JobStarted { job: "zeta".into() }),
            ev(
                1,
                1,
                JobFinished {
                    job: "zeta".into(),
                    sim_total: 1.0,
                    wall_seconds: 0.1,
                },
            ),
            ev(
                2,
                2,
                JobStarted {
                    job: "alpha".into(),
                },
            ),
            ev(
                3,
                3,
                JobFinished {
                    job: "alpha".into(),
                    sim_total: 1.0,
                    wall_seconds: 0.1,
                },
            ),
        ];
        let text = TraceSummary::from_events(&stream).render();
        let alpha = text.find("job alpha").expect("alpha row");
        let zeta = text.find("job zeta").expect("zeta row");
        assert!(alpha < zeta, "rows not sorted by job name:\n{text}");
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let text = TraceSummary::from_events(&valid_stream()).render();
        assert!(text.contains("job j"));
        assert!(text.contains("tasks=2"));
        assert!(text.contains("retries=1"));
        assert!(text.contains("spec_wins=1"));
        assert!(text.contains("kernel bnl"));
        assert!(text.contains("local_skyline=10"));
        assert!(text.contains("comparisons histogram:"));
    }

    #[test]
    fn serve_events_fold_into_request_aggregates() {
        use EventKind::*;
        let stream = vec![
            ev(
                0,
                0,
                Request {
                    tenant: "t0".into(),
                    op: "insert".into(),
                    outcome: "ok".into(),
                    sim_latency: 0.2,
                    attempts: 1,
                },
            ),
            ev(
                1,
                1,
                Request {
                    tenant: "t0".into(),
                    op: "query".into(),
                    outcome: "stale".into(),
                    sim_latency: 0.1,
                    attempts: 1,
                },
            ),
            ev(
                2,
                2,
                BreakerTransition {
                    tenant: "t0".into(),
                    op: "mutation".into(),
                    from: "closed".into(),
                    to: "open".into(),
                },
            ),
            ev(
                3,
                3,
                Shed {
                    tenant: "t1".into(),
                    op: "mutation".into(),
                    reason: "queue-depth".into(),
                    depth: 8,
                },
            ),
            ev(
                4,
                4,
                SkybandRepair {
                    tenant: "t0".into(),
                    promoted: 2,
                    underflow: false,
                },
            ),
            ev(
                5,
                5,
                SkybandRepair {
                    tenant: "t0".into(),
                    promoted: 0,
                    underflow: true,
                },
            ),
            ev(
                6,
                6,
                StaleServed {
                    tenant: "t0".into(),
                    reason: "breaker-open".into(),
                    lag: 3,
                },
            ),
        ];
        assert!(validate_events(&stream).is_empty());
        let summary = TraceSummary::from_events(&stream);
        assert_eq!(summary.requests.get("insert/ok"), Some(&1));
        assert_eq!(summary.requests.get("query/stale"), Some(&1));
        assert_eq!(
            summary.breaker_transitions.get("mutation: closed->open"),
            Some(&1)
        );
        assert_eq!(summary.sheds.get("queue-depth"), Some(&1));
        assert_eq!(summary.skyband_repairs, (1, 1, 2));
        assert_eq!(summary.stale_served.get("breaker-open"), Some(&1));
        assert!(summary.latency.contains_key("request seconds (insert)"));

        let text = summary.render();
        assert!(text.contains("serve requests: 2"), "{text}");
        assert!(text.contains("breaker transitions:"), "{text}");
        assert!(text.contains("load shed: 1"), "{text}");
        assert!(
            text.contains("skyband repairs: 1 from buffer, 1 underflow"),
            "{text}"
        );
        assert!(text.contains("stale serves: 1"), "{text}");
    }
}
