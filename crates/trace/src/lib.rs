//! `mrsky-trace`: structured tracing and metrics for the MapReduce
//! skyline suite.
//!
//! Three cooperating pieces, all hand-rolled on the standard library:
//!
//! - **Events** ([`event`]): typed [`TraceEvent`]s with monotonic
//!   sequence numbers, epoch-clock offsets (deterministic [`SimClock`]
//!   by default), and sim-clock payloads, serialized as flat JSONL.
//! - **Sinks** ([`sink`]): the [`Tracer`] handle threaded through
//!   [`JobSpec`](../mrsky_mapreduce/struct.JobSpec.html) and the driver;
//!   disabled tracers cost one branch per site.
//! - **Registry** ([`registry`]): the process-global, sharded
//!   counter/gauge/histogram store that kernel hot paths record into
//!   when enabled ([`metrics`]).
//!
//! Recorded streams feed the exporters: Chrome trace-event JSON for
//! Perfetto ([`to_chrome_trace`]), Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]), and the human
//! [`TraceSummary`] table.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod registry;
pub mod sink;
pub mod sketch;
pub mod summary;

pub use chrome::to_chrome_trace;
pub use event::{EventKind, PhaseKind, TraceEvent};
pub use registry::{escape_label_value, metrics, Histogram, MetricsRegistry, MetricsSnapshot};
pub use sink::{EpochClock, JsonlWriter, NullSink, SimClock, TraceSink, Tracer, VecSink};
pub use sketch::QuantileSketch;
pub use summary::{validate_events, TraceSummary};

/// Parses a JSONL trace document (one event per line, blank lines
/// ignored) into events.
///
/// # Errors
///
/// Reports the 1-based line number and cause of the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = TraceEvent::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trip_through_tracer() {
        let tracer = Tracer::in_memory();
        tracer.emit(|| EventKind::JobStarted { job: "j".into() });
        tracer.emit(|| EventKind::JobFinished {
            job: "j".into(),
            sim_total: 1.0,
            wall_seconds: 0.5,
        });
        let events = tracer.drain();
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
        assert!(validate_events(&back).is_empty());
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let err = parse_jsonl(
            "{\"seq\":0,\"wall_us\":0,\"type\":\"job_started\",\"job\":\"x\"}\nbroken\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
