//! Chrome trace-event export: converts a recorded event stream into the
//! JSON that Perfetto (`ui.perfetto.dev`) and `chrome://tracing` load.
//!
//! Layout decisions:
//!
//! - Each MapReduce **job** becomes a process (`pid` 1, 2, … in
//!   `job_started` order), named via `process_name` metadata. Jobs inside
//!   one trace run back-to-back on sim time, but every job's own clock
//!   starts at 0 — the exporter re-bases job *N* by the summed
//!   `sim_total` of jobs before it so the processes lay out sequentially.
//! - Each cluster **slot** becomes a thread (`tid = slot + 1`); tid 0
//!   carries the phase envelope slices. Task attempts are `"X"` complete
//!   slices; speculative completions additionally get an async
//!   `"b"`/`"e"` pair so the backup race is visible as an overlay.
//! - Driver-level spans ([`SpanBegin`](crate::EventKind::SpanBegin)) and
//!   point records (kernels, shuffle, ingest) live on **pid 0**, which
//!   runs on the wall clock (`wall_us`), as `"B"`/`"E"` duration events
//!   and `"i"` instants.
//! - [`CausalEdge`](crate::EventKind::CausalEdge) events become flow
//!   arrows (`"s"`/`"f"` pairs): the arrow leaves the source node's slice
//!   end and lands on the destination's slice start, so Perfetto draws
//!   shuffle→reduce and merge hand-offs. [`TaskStolen`](crate::EventKind::TaskStolen)
//!   becomes an instant on the stolen task plus a flow arrow from the
//!   phase lane into its slice. Causal events can be recorded before
//!   their endpoints' slices (real execution precedes the simulated
//!   schedule), so flows are resolved in a second pass after every slice
//!   is known.
//!
//! Timestamps are microseconds as the format requires; sim seconds are
//! scaled by 1e6.

use crate::event::{EventKind, TraceEvent};
use crate::json::{escape, number};
use std::collections::BTreeMap;

const DRIVER_PID: u64 = 0;

fn sim_us(offset: f64, sim_seconds: f64) -> f64 {
    (offset + sim_seconds) * 1e6
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Appends one raw trace-event object (no surrounding braces needed).
    fn push(&mut self, body: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(body);
        self.out.push('}');
    }

    fn metadata(&mut self, pid: u64, tid: Option<u64>, which: &str, name: &str) {
        let tid_part = match tid {
            Some(t) => format!(",\"tid\":{t}"),
            None => String::new(),
        };
        self.push(&format!(
            "\"ph\":\"M\",\"pid\":{pid}{tid_part},\"name\":\"{which}\",\"args\":{{\"name\":\"{}\"}}",
            escape(name)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

#[derive(Default)]
struct JobState {
    pid: u64,
    offset: f64,
    phase_start: BTreeMap<String, f64>,
    slots_seen: BTreeMap<u64, ()>,
}

/// Converts a stream of [`TraceEvent`]s into a Chrome trace-event JSON
/// document. Accepts any event order that a [`Tracer`](crate::Tracer)
/// can produce; unknown pairings (e.g. a `phase_finished` without its
/// start) are skipped rather than erroring.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut em = Emitter::new();
    em.metadata(DRIVER_PID, None, "process_name", "driver (wall clock)");

    let mut jobs: BTreeMap<String, JobState> = BTreeMap::new();
    let mut next_pid = 1u64;
    let mut sim_cursor = 0.0f64;
    let mut async_id = 0u64;

    // Causal-DAG node anchors, keyed by the node-id grammar
    // (`job:`/`phase:`/`task:` — see `EventKind::CausalEdge`):
    // (pid, tid, start_us, end_us) on the re-based global sim axis.
    let mut nodes: BTreeMap<String, (u64, u64, f64, f64)> = BTreeMap::new();
    // Flow endpoints can be emitted before their slices exist; buffer and
    // resolve after the main pass.
    let mut pending_edges: Vec<(String, String, String)> = Vec::new();
    let mut pending_steals: Vec<(String, u64, u64)> = Vec::new();

    for ev in events {
        match &ev.kind {
            EventKind::JobStarted { job } => {
                let state = jobs.entry(job.clone()).or_default();
                state.pid = next_pid;
                state.offset = sim_cursor;
                next_pid += 1;
                em.metadata(state.pid, None, "process_name", &format!("job: {job}"));
                em.metadata(state.pid, Some(0), "thread_name", "phases");
            }
            EventKind::JobFinished { job, sim_total, .. } => {
                if let Some(state) = jobs.get(job) {
                    nodes.insert(
                        format!("job:{job}"),
                        (
                            state.pid,
                            0,
                            state.offset * 1e6,
                            (state.offset + sim_total) * 1e6,
                        ),
                    );
                    sim_cursor = state.offset + sim_total;
                }
            }
            EventKind::PhaseStarted {
                job, phase, sim, ..
            } => {
                if let Some(state) = jobs.get_mut(job) {
                    state.phase_start.insert(phase.as_str().into(), *sim);
                }
            }
            EventKind::PhaseFinished {
                job, phase, sim, ..
            } => {
                if let Some(state) = jobs.get_mut(job) {
                    if let Some(start) = state.phase_start.remove(phase.as_str()) {
                        let ts = sim_us(state.offset, start);
                        let dur = ((sim - start) * 1e6).max(0.0);
                        nodes.insert(
                            format!("phase:{job}/{}", phase.as_str()),
                            (state.pid, 0, ts, ts + dur),
                        );
                        em.push(&format!(
                            "\"ph\":\"X\",\"pid\":{},\"tid\":0,\"name\":\"{} phase\",\"cat\":\"phase\",\"ts\":{},\"dur\":{}",
                            state.pid,
                            phase.as_str(),
                            number(ts),
                            number(dur)
                        ));
                    }
                }
            }
            EventKind::TaskFinished {
                job,
                phase,
                task,
                slot,
                sim_start,
                sim_end,
                speculative,
            } => {
                if let Some(state) = jobs.get_mut(job) {
                    let tid = slot + 1;
                    if state.slots_seen.insert(*slot, ()).is_none() {
                        em.metadata(state.pid, Some(tid), "thread_name", &format!("slot {slot}"));
                    }
                    let ts = sim_us(state.offset, *sim_start);
                    let dur = ((sim_end - sim_start) * 1e6).max(0.0);
                    nodes.insert(
                        format!("task:{job}/{}/{task}", phase.as_str()),
                        (state.pid, tid, ts, ts + dur),
                    );
                    em.push(&format!(
                        "\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"name\":\"{} {task}\",\"cat\":\"task\",\"ts\":{},\"dur\":{},\"args\":{{\"task\":{task},\"speculative\":{speculative}}}",
                        state.pid,
                        phase.as_str(),
                        number(ts),
                        number(dur)
                    ));
                    if *speculative {
                        async_id += 1;
                        let te = sim_us(state.offset, *sim_end);
                        em.push(&format!(
                            "\"ph\":\"b\",\"pid\":{0},\"tid\":{tid},\"id\":{async_id},\"cat\":\"speculation\",\"name\":\"backup {2} {task}\",\"ts\":{1}",
                            state.pid,
                            number(ts),
                            phase.as_str()
                        ));
                        em.push(&format!(
                            "\"ph\":\"e\",\"pid\":{0},\"tid\":{tid},\"id\":{async_id},\"cat\":\"speculation\",\"name\":\"backup {2} {task}\",\"ts\":{1}",
                            state.pid,
                            number(te),
                            phase.as_str()
                        ));
                    }
                }
            }
            EventKind::SpanBegin { name } => {
                em.push(&format!(
                    "\"ph\":\"B\",\"pid\":{DRIVER_PID},\"tid\":0,\"name\":\"{}\",\"cat\":\"driver\",\"ts\":{}",
                    escape(name),
                    ev.wall_us
                ));
            }
            EventKind::SpanEnd { name } => {
                em.push(&format!(
                    "\"ph\":\"E\",\"pid\":{DRIVER_PID},\"tid\":0,\"name\":\"{}\",\"cat\":\"driver\",\"ts\":{}",
                    escape(name),
                    ev.wall_us
                ));
            }
            EventKind::KernelRun {
                kernel,
                input,
                output,
                comparisons,
                passes,
                elapsed_us,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":1,\"s\":\"t\",\"name\":\"kernel {}\",\"cat\":\"kernel\",\"ts\":{},\"args\":{{\"input\":{input},\"output\":{output},\"comparisons\":{comparisons},\"passes\":{passes},\"elapsed_us\":{elapsed_us}}}",
                    escape(kernel),
                    ev.wall_us
                ));
            }
            EventKind::PartitionLocalSkyline {
                partition,
                input,
                output,
                pruned,
                kernel,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":1,\"s\":\"t\",\"name\":\"partition {partition}\",\"cat\":\"partition\",\"ts\":{},\"args\":{{\"input\":{input},\"output\":{output},\"pruned\":{pruned},\"kernel\":\"{}\"}}",
                    ev.wall_us,
                    escape(kernel)
                ));
            }
            EventKind::ShufflePartition {
                job,
                reducer,
                bytes,
                records,
                segments,
            } => {
                let pid = jobs.get(job).map_or(DRIVER_PID, |s| s.pid);
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"s\":\"t\",\"name\":\"shuffle r{reducer}\",\"cat\":\"shuffle\",\"ts\":{},\"args\":{{\"bytes\":{bytes},\"records\":{records},\"segments\":{segments}}}",
                    ev.wall_us
                ));
            }
            EventKind::PhasePeakMemory {
                job,
                phase,
                peak_bytes,
            } => {
                let pid = jobs.get(job).map_or(DRIVER_PID, |s| s.pid);
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\"s\":\"t\",\"name\":\"peak mem {}\",\"cat\":\"memory\",\"ts\":{},\"args\":{{\"peak_bytes\":{peak_bytes}}}",
                    phase.as_str(),
                    ev.wall_us
                ));
            }
            EventKind::FaultInjected {
                site,
                fault,
                scope,
                index,
                attempt,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"fault {}/{}\",\"cat\":\"chaos\",\"ts\":{},\"args\":{{\"scope\":\"{}\",\"index\":{index},\"attempt\":{attempt}}}",
                    escape(site),
                    escape(fault),
                    ev.wall_us,
                    escape(scope)
                ));
            }
            EventKind::TaskRetryExhausted {
                site,
                scope,
                index,
                attempts,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"retry exhausted {}\",\"cat\":\"chaos\",\"ts\":{},\"args\":{{\"scope\":\"{}\",\"index\":{index},\"attempts\":{attempts}}}",
                    escape(site),
                    ev.wall_us,
                    escape(scope)
                ));
            }
            EventKind::CheckpointWritten { partition, points } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"checkpoint write p{partition}\",\"cat\":\"checkpoint\",\"ts\":{},\"args\":{{\"points\":{points}}}",
                    ev.wall_us
                ));
            }
            EventKind::CheckpointRestored { partition, points } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"checkpoint restore p{partition}\",\"cat\":\"checkpoint\",\"ts\":{},\"args\":{{\"points\":{points}}}",
                    ev.wall_us
                ));
            }
            EventKind::RecordQuarantined { source, line, .. } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"quarantine {}:{line}\",\"cat\":\"chaos\",\"ts\":{}",
                    escape(source),
                    ev.wall_us
                ));
            }
            EventKind::RowsFiltered { input, filtered } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":1,\"s\":\"t\",\"name\":\"filter sweep\",\"cat\":\"pruning\",\"ts\":{},\"args\":{{\"input\":{input},\"filtered\":{filtered}}}",
                    ev.wall_us
                ));
            }
            EventKind::SectorPruned { partition, points } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":1,\"s\":\"t\",\"name\":\"sector pruned p{partition}\",\"cat\":\"pruning\",\"ts\":{},\"args\":{{\"points\":{points}}}",
                    ev.wall_us
                ));
            }
            EventKind::MergeOverlap {
                seconds,
                candidates,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":1,\"s\":\"t\",\"name\":\"merge overlap\",\"cat\":\"pruning\",\"ts\":{},\"args\":{{\"seconds\":{},\"candidates\":{candidates}}}",
                    ev.wall_us, *seconds
                ));
            }
            EventKind::BreakerTransition {
                tenant,
                op,
                from,
                to,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"breaker {} {}->{}\",\"cat\":\"serve\",\"ts\":{},\"args\":{{\"tenant\":\"{}\",\"op\":\"{}\"}}",
                    escape(op),
                    escape(from),
                    escape(to),
                    ev.wall_us,
                    escape(tenant),
                    escape(op)
                ));
            }
            EventKind::Shed { tenant, reason, .. } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"shed {}\",\"cat\":\"serve\",\"ts\":{},\"args\":{{\"tenant\":\"{}\"}}",
                    escape(reason),
                    ev.wall_us,
                    escape(tenant)
                ));
            }
            EventKind::SkybandRepair {
                tenant,
                promoted,
                underflow,
            } => {
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"t\",\"name\":\"skyband repair\",\"cat\":\"serve\",\"ts\":{},\"args\":{{\"tenant\":\"{}\",\"promoted\":{promoted},\"underflow\":{underflow}}}",
                    ev.wall_us,
                    escape(tenant)
                ));
            }
            EventKind::RunResumed { run } => {
                // Process-scoped: the crash/resume boundary matters to every
                // track, not just the chaos lane.
                em.push(&format!(
                    "\"ph\":\"i\",\"pid\":{DRIVER_PID},\"tid\":2,\"s\":\"p\",\"name\":\"run resumed (attempt {run})\",\"cat\":\"chaos\",\"ts\":{}",
                    ev.wall_us
                ));
            }
            EventKind::CausalEdge { edge, src, dst } => {
                pending_edges.push((edge.clone(), src.clone(), dst.clone()));
            }
            EventKind::TaskStolen {
                job,
                phase,
                task,
                thief,
                victim,
            } => {
                pending_steals.push((
                    format!("task:{job}/{}/{task}", phase.as_str()),
                    *thief,
                    *victim,
                ));
            }
            // Queue/launch/retry/speculation bookkeeping and ingest are
            // visible in the summary view; the timeline keeps to slices.
            // Per-request serve events are too dense for the timeline —
            // the summary's op/outcome table and latency sketches carry
            // them; only breaker/shed/repair markers surface here.
            EventKind::TaskScheduled { .. }
            | EventKind::TaskLaunched { .. }
            | EventKind::TaskRetried { .. }
            | EventKind::TaskSpeculated { .. }
            | EventKind::DfsBlockRead { .. }
            | EventKind::IngestStarted { .. }
            | EventKind::IngestFinished { .. }
            | EventKind::Request { .. }
            | EventKind::StaleServed { .. } => {}
        }
    }

    // Second pass: every slice is anchored, so causal flows resolve.
    // Flow ids share a namespace with the speculation async pairs only by
    // number, not category, but keep them disjoint anyway.
    let mut flow_id = 1_000_000u64;
    for (edge, src, dst) in &pending_edges {
        let (Some(&(spid, stid, _, send)), Some(&(dpid, dtid, dstart, _))) =
            (nodes.get(src), nodes.get(dst))
        else {
            // An endpoint with no slice (e.g. a pruned task) has nothing
            // to draw to; skip rather than invent anchors.
            continue;
        };
        em.push(&format!(
            "\"ph\":\"s\",\"pid\":{spid},\"tid\":{stid},\"id\":{flow_id},\"cat\":\"causal\",\"name\":\"{}\",\"ts\":{},\"args\":{{\"src\":\"{}\",\"dst\":\"{}\"}}",
            escape(edge),
            number(send),
            escape(src),
            escape(dst)
        ));
        em.push(&format!(
            "\"ph\":\"f\",\"bp\":\"e\",\"pid\":{dpid},\"tid\":{dtid},\"id\":{flow_id},\"cat\":\"causal\",\"name\":\"{}\",\"ts\":{}",
            escape(edge),
            number(dstart)
        ));
        flow_id += 1;
    }
    for (node, thief, victim) in &pending_steals {
        let Some(&(pid, tid, start, _)) = nodes.get(node) else {
            continue;
        };
        em.push(&format!(
            "\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"name\":\"stolen w{victim}->w{thief}\",\"cat\":\"steal\",\"ts\":{},\"args\":{{\"thief\":{thief},\"victim\":{victim}}}",
            number(start)
        ));
        em.push(&format!(
            "\"ph\":\"s\",\"pid\":{pid},\"tid\":0,\"id\":{flow_id},\"cat\":\"steal\",\"name\":\"steal\",\"ts\":{}",
            number(start)
        ));
        em.push(&format!(
            "\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":{tid},\"id\":{flow_id},\"cat\":\"steal\",\"name\":\"steal\",\"ts\":{}",
            number(start)
        ));
        flow_id += 1;
    }

    em.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseKind;
    use crate::json;

    fn ev(seq: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            wall_us: seq * 10,
            kind,
        }
    }

    fn sample_run() -> Vec<TraceEvent> {
        use EventKind::*;
        vec![
            ev(0, SpanBegin { name: "run".into() }),
            ev(1, JobStarted { job: "j1".into() }),
            ev(
                2,
                PhaseStarted {
                    job: "j1".into(),
                    phase: PhaseKind::Map,
                    tasks: 1,
                    sim: 0.0,
                },
            ),
            ev(
                3,
                TaskFinished {
                    job: "j1".into(),
                    phase: PhaseKind::Map,
                    task: 0,
                    slot: 2,
                    sim_start: 0.0,
                    sim_end: 1.5,
                    speculative: true,
                },
            ),
            ev(
                4,
                PhaseFinished {
                    job: "j1".into(),
                    phase: PhaseKind::Map,
                    sim: 1.5,
                    speculative_wins: 1,
                },
            ),
            ev(
                5,
                JobFinished {
                    job: "j1".into(),
                    sim_total: 2.0,
                    wall_seconds: 0.01,
                },
            ),
            ev(6, JobStarted { job: "j2".into() }),
            ev(
                7,
                TaskFinished {
                    job: "j2".into(),
                    phase: PhaseKind::Reduce,
                    task: 0,
                    slot: 0,
                    sim_start: 0.5,
                    sim_end: 1.0,
                    speculative: false,
                },
            ),
            ev(8, SpanEnd { name: "run".into() }),
        ]
    }

    #[test]
    fn output_is_well_formed_json() {
        let text = to_chrome_trace(&sample_run());
        let value = json::parse(&text).unwrap();
        let events = value.get("traceEvents").unwrap();
        match events {
            json::JsonValue::Arr(items) => assert!(items.len() >= 8),
            other => panic!("traceEvents not an array: {other:?}"),
        }
    }

    #[test]
    fn chained_job_is_rebased_after_the_first() {
        let text = to_chrome_trace(&sample_run());
        let value = json::parse(&text).unwrap();
        let json::JsonValue::Arr(items) = value.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        // j2's task starts at sim 0.5 but job offset is j1's sim_total
        // (2.0), so its slice must sit at ts = 2.5e6 us.
        let task = items
            .iter()
            .find(|e| {
                e.get("cat").and_then(json::JsonValue::as_str) == Some("task")
                    && e.get("pid").and_then(json::JsonValue::as_u64) == Some(2)
            })
            .unwrap();
        assert_eq!(
            task.get("ts").and_then(json::JsonValue::as_f64),
            Some(2.5e6)
        );
    }

    #[test]
    fn speculative_task_gets_async_pair() {
        let text = to_chrome_trace(&sample_run());
        assert!(text.contains("\"ph\":\"b\""));
        assert!(text.contains("\"ph\":\"e\""));
        assert!(text.contains("backup map 0"));
    }

    #[test]
    fn slots_become_named_threads() {
        let text = to_chrome_trace(&sample_run());
        assert!(text.contains("slot 2"));
        assert!(text.contains("\"tid\":3"));
    }

    #[test]
    fn chaos_events_become_instants() {
        use EventKind::*;
        let stream = vec![
            ev(
                0,
                FaultInjected {
                    site: "shuffle-fetch".into(),
                    fault: "drop-record".into(),
                    scope: "merge".into(),
                    index: 1,
                    attempt: 0,
                },
            ),
            ev(
                1,
                TaskRetryExhausted {
                    site: "map-task".into(),
                    scope: "locals".into(),
                    index: 3,
                    attempts: 4,
                },
            ),
            ev(
                2,
                CheckpointWritten {
                    partition: 7,
                    points: 12,
                },
            ),
            ev(
                3,
                CheckpointRestored {
                    partition: 7,
                    points: 12,
                },
            ),
            ev(
                4,
                RecordQuarantined {
                    source: "qws.txt".into(),
                    line: 44,
                    reason: "bad".into(),
                },
            ),
            ev(5, RunResumed { run: 2 }),
        ];
        let text = to_chrome_trace(&stream);
        json::parse(&text).unwrap();
        assert!(text.contains("fault shuffle-fetch/drop-record"));
        assert!(text.contains("retry exhausted map-task"));
        assert!(text.contains("checkpoint write p7"));
        assert!(text.contains("checkpoint restore p7"));
        assert!(text.contains("quarantine qws.txt:44"));
        assert!(text.contains("run resumed (attempt 2)"));
    }

    #[test]
    fn causal_edges_become_flow_pairs() {
        use EventKind::*;
        let mut stream = sample_run();
        let base = stream.len() as u64;
        // Emitted before j2's reduce slice exists in the stream order the
        // runtime produces (real execution precedes the schedule) — the
        // two-pass export must still resolve both endpoints.
        stream.insert(
            6,
            ev(
                100,
                CausalEdge {
                    edge: "shuffle".into(),
                    src: "task:j1/map/0".into(),
                    dst: "task:j2/reduce/0".into(),
                },
            ),
        );
        stream.push(ev(
            base + 100,
            TaskStolen {
                job: "j2".into(),
                phase: PhaseKind::Reduce,
                task: 0,
                thief: 3,
                victim: 1,
            },
        ));
        // fix seq monotonicity after the insert
        for (i, e) in stream.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        let text = to_chrome_trace(&stream);
        let value = json::parse(&text).unwrap();
        let json::JsonValue::Arr(items) = value.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        let phase_of = |item: &json::JsonValue| {
            item.get("ph")
                .and_then(json::JsonValue::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let flows: Vec<_> = items
            .iter()
            .filter(|e| e.get("cat").and_then(json::JsonValue::as_str) == Some("causal"))
            .collect();
        assert_eq!(flows.len(), 2, "one s/f pair:\n{text}");
        assert_eq!(phase_of(flows[0]), "s");
        assert_eq!(phase_of(flows[1]), "f");
        // The arrow leaves j1's map task end (1.5e6) and lands on j2's
        // reduce task start (rebased to 2.5e6).
        assert_eq!(
            flows[0].get("ts").and_then(json::JsonValue::as_f64),
            Some(1.5e6)
        );
        assert_eq!(
            flows[1].get("ts").and_then(json::JsonValue::as_f64),
            Some(2.5e6)
        );
        assert!(text.contains("stolen w1->w3"));
        assert!(text.contains("\"cat\":\"steal\""));
    }

    #[test]
    fn unresolvable_causal_edges_are_skipped() {
        use EventKind::*;
        let stream = vec![ev(
            0,
            CausalEdge {
                edge: "shuffle".into(),
                src: "task:ghost/map/0".into(),
                dst: "task:ghost/reduce/0".into(),
            },
        )];
        let text = to_chrome_trace(&stream);
        json::parse(&text).unwrap();
        assert!(!text.contains("\"cat\":\"causal\""));
    }

    #[test]
    fn pruning_events_become_instants() {
        use EventKind::*;
        let stream = vec![
            ev(
                0,
                RowsFiltered {
                    input: 1600,
                    filtered: 900,
                },
            ),
            ev(
                1,
                SectorPruned {
                    partition: 5,
                    points: 120,
                },
            ),
            ev(
                2,
                MergeOverlap {
                    seconds: 3.25,
                    candidates: 640,
                },
            ),
        ];
        let text = to_chrome_trace(&stream);
        json::parse(&text).unwrap();
        assert!(text.contains("filter sweep"));
        assert!(text.contains("\"filtered\":900"));
        assert!(text.contains("sector pruned p5"));
        assert!(text.contains("merge overlap"));
        assert!(text.contains("\"seconds\":3.25"));
    }
}
