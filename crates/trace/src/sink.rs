//! Sinks and the [`Tracer`] handle.
//!
//! A [`Tracer`] is a cheap clonable handle threaded through the pipeline.
//! The disabled tracer ([`Tracer::disabled`]) holds no allocation and its
//! [`emit`](Tracer::emit) is a branch on a `None` — instrumentation sites
//! pay ~nothing when tracing is off, which the `trace_overhead` bench
//! guards. An enabled tracer stamps each event with a monotonic sequence
//! number and an [`EpochClock`] offset (the deterministic [`SimClock`]
//! unless a wall clock is injected), then hands it to a [`TraceSink`].
//!
//! Sequence stamping and the sink write happen under one mutex, so the
//! order of lines in a JSONL file *is* sequence order — the CI schema
//! validator relies on that.

use crate::event::{EventKind, TraceEvent};
use mrsky_model::sync::{AtomicU64, Mutex, Ordering};
use std::io::{self, BufWriter, Write};
use std::sync::Arc;

/// Source of the microsecond timestamps stamped onto trace events.
///
/// The tracer deliberately does not read the wall clock itself: trace
/// files must be byte-reproducible under checkpoint/resume and in
/// tests, so the default clock is the deterministic [`SimClock`]. A
/// real-time consumer (the CLI) injects its own wall-clock
/// implementation via [`Tracer::with_clock`].
pub trait EpochClock: Send + Sync {
    /// Microseconds elapsed since this clock's epoch.
    fn now_us(&self) -> u64;
}

/// Deterministic default clock: a monotonic tick counter that advances
/// one microsecond per reading, so identical event sequences get
/// identical timestamps on every run.
#[derive(Debug, Default)]
pub struct SimClock {
    ticks: AtomicU64,
}

impl EpochClock for SimClock {
    fn now_us(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}

/// Destination for stamped trace events.
pub trait TraceSink: Send {
    /// Accepts one stamped event.
    fn emit(&mut self, event: &TraceEvent);
    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    /// Hands back buffered events, if the sink retains them ([`VecSink`]
    /// does; streaming sinks return nothing).
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Discards everything. Exists so code can hold a `Box<dyn TraceSink>`
/// unconditionally; prefer [`Tracer::disabled`], which skips even the
/// event construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Collects events in memory; the test workhorse.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Streams events as JSON Lines to any writer (typically a file).
pub struct JsonlWriter<W: Write + Send> {
    out: BufWriter<W>,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self {
            out: BufWriter::new(out),
            error: None,
        }
    }

    /// The first write error encountered, if any. Writes after an error
    /// are dropped rather than panicking mid-pipeline.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl<W: Write + Send> TraceSink for JsonlWriter<W> {
    fn emit(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json();
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

struct TracerInner {
    clock: Box<dyn EpochClock>,
    state: Mutex<SinkState>,
}

struct SinkState {
    next_seq: u64,
    sink: Box<dyn TraceSink>,
}

/// Clonable tracing handle. See the module docs for the cost model.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing and costs one branch per call site.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer feeding the given sink, stamped by the deterministic
    /// [`SimClock`].
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer::with_clock(sink, Box::new(SimClock::default()))
    }

    /// A tracer with an explicit timestamp source — how a real-time
    /// consumer opts back into wall-clock stamps.
    pub fn with_clock(sink: Box<dyn TraceSink>, clock: Box<dyn EpochClock>) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                state: Mutex::new(SinkState { next_seq: 0, sink }),
            })),
        }
    }

    /// A tracer backed by an in-memory [`VecSink`]; returns the handle and
    /// a closure-free way to drain what was recorded ([`Tracer::drain`]).
    pub fn in_memory() -> Self {
        Tracer::new(Box::new(VecSink::new()))
    }

    /// Whether events will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A reading of this tracer's clock (0 for a disabled tracer) —
    /// lets callers derive durations in the same timebase as the
    /// emitted events without touching the wall clock themselves.
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.clock.now_us())
    }

    /// Stamps and emits an event. The payload is built lazily so disabled
    /// tracers skip even the `String` clones inside [`EventKind`].
    pub fn emit(&self, make: impl FnOnce() -> EventKind) {
        let Some(inner) = &self.inner else { return };
        let wall_us = inner.clock.now_us();
        let mut state = inner.state.lock();
        let event = TraceEvent {
            seq: state.next_seq,
            wall_us,
            kind: make(),
        };
        state.next_seq += 1;
        state.sink.emit(&event);
    }

    /// Emits a [`EventKind::SpanBegin`]/[`EventKind::SpanEnd`] pair around
    /// a closure and returns its result.
    pub fn span<T>(&self, name: &str, body: impl FnOnce() -> T) -> T {
        self.emit(|| EventKind::SpanBegin { name: name.into() });
        let result = body();
        self.emit(|| EventKind::SpanEnd { name: name.into() });
        result
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error (e.g. a full disk under a
    /// [`JsonlWriter`]).
    pub fn flush(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut state = inner.state.lock();
        state.sink.flush()
    }

    /// Drains recorded events from a [`VecSink`]-backed tracer; returns an
    /// empty vec for other sinks or a disabled tracer. Test-oriented, but
    /// also used by the CLI to buffer events for post-run conversion.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut state = inner.state.lock();
        state.sink.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseKind;

    #[test]
    fn disabled_tracer_skips_payload_construction() {
        let tracer = Tracer::disabled();
        let mut built = false;
        tracer.emit(|| {
            built = true;
            EventKind::SpanBegin { name: "x".into() }
        });
        assert!(!built);
        assert!(!tracer.is_enabled());
        assert!(tracer.drain().is_empty());
        assert!(tracer.flush().is_ok());
    }

    #[test]
    fn seq_is_dense_and_monotonic_across_clones() {
        let tracer = Tracer::in_memory();
        let clone = tracer.clone();
        for i in 0..5u64 {
            let t = if i % 2 == 0 { &tracer } else { &clone };
            t.emit(|| EventKind::TaskScheduled {
                job: "j".into(),
                phase: PhaseKind::Map,
                task: i,
            });
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 5);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
        assert!(tracer.drain().is_empty(), "drain empties the sink");
    }

    #[test]
    fn span_wraps_body_in_begin_end() {
        let tracer = Tracer::in_memory();
        let answer = tracer.span("fit", || 42);
        assert_eq!(answer, 42);
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanBegin { name: "fit".into() });
        assert_eq!(events[1].kind, EventKind::SpanEnd { name: "fit".into() });
    }

    #[test]
    fn sim_clock_timestamps_are_reproducible() {
        let run = || {
            let tracer = Tracer::in_memory();
            tracer.emit(|| EventKind::JobStarted { job: "j".into() });
            tracer.span("phase", || ());
            tracer.emit(|| EventKind::JobFinished {
                job: "j".into(),
                sim_total: 1.0,
                wall_seconds: 0.0,
            });
            tracer
                .drain()
                .into_iter()
                .map(|ev| ev.wall_us)
                .collect::<Vec<u64>>()
        };
        let first = run();
        assert_eq!(first, run(), "identical runs must stamp identical times");
        assert!(
            first.windows(2).all(|w| w[0] < w[1]),
            "sim clock is monotone"
        );
    }

    #[test]
    fn injected_clock_drives_timestamps() {
        struct FixedClock;
        impl EpochClock for FixedClock {
            fn now_us(&self) -> u64 {
                42
            }
        }
        let tracer = Tracer::with_clock(Box::new(VecSink::new()), Box::new(FixedClock));
        assert_eq!(tracer.now_us(), 42);
        tracer.emit(|| EventKind::JobStarted { job: "j".into() });
        assert_eq!(tracer.drain()[0].wall_us, 42);
        assert_eq!(Tracer::disabled().now_us(), 0);
    }

    #[test]
    fn jsonl_writer_produces_parseable_lines() {
        let buffer: Vec<u8> = Vec::new();
        let shared = Arc::new(std::sync::Mutex::new(buffer));
        struct Shared(Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Box::new(JsonlWriter::new(Shared(shared.clone()))));
        tracer.emit(|| EventKind::JobStarted { job: "j".into() });
        tracer.emit(|| EventKind::JobFinished {
            job: "j".into(),
            sim_total: 1.0,
            wall_seconds: 0.1,
        });
        tracer.flush().unwrap();
        let bytes = shared.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let ev = TraceEvent::from_json(line).unwrap();
            assert_eq!(ev.seq, i as u64);
        }
    }
}
