//! The structured event model: typed [`TraceEvent`]s with monotonic
//! sequence numbers and both wall-clock and sim-clock timestamps.
//!
//! Every event serializes to one flat JSON object (one line of a JSONL
//! trace) with a `type` discriminant, and parses back losslessly — the
//! round-trip is what the CI schema check and the `mrsky trace` replay
//! subcommand rely on. The taxonomy mirrors the layers it instruments:
//!
//! | family | events |
//! |---|---|
//! | job | `job_started`, `job_finished` |
//! | phase | `phase_started`, `phase_finished` |
//! | task lifecycle | `task_scheduled`, `task_launched`, `task_retried`, `task_speculated`, `task_finished`, `task_stolen` |
//! | shuffle / DFS | `shuffle_partition`, `dfs_block_read` |
//! | causality | `causal_edge` |
//! | skyline | `kernel_run`, `partition_local_skyline` |
//! | early pruning / streaming | `rows_filtered`, `sector_pruned`, `merge_overlap` |
//! | ingest | `ingest_started`, `ingest_finished` |
//! | chaos / recovery | `fault_injected`, `task_retry_exhausted`, `checkpoint_written`, `checkpoint_restored`, `record_quarantined`, `run_resumed` |
//! | generic spans | `span_begin`, `span_end` |

use crate::json::{self, JsonValue};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Which of the two MapReduce phases an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PhaseKind {
    /// The map phase.
    Map,
    /// The reduce phase (shuffle folded in, Hadoop-style).
    Reduce,
}

impl PhaseKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseKind::Map => "map",
            PhaseKind::Reduce => "reduce",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<PhaseKind> {
        match s {
            "map" => Some(PhaseKind::Map),
            "reduce" => Some(PhaseKind::Reduce),
            _ => None,
        }
    }
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One trace event, stamped by the [`Tracer`](crate::Tracer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic sequence number (strictly increasing within one trace).
    pub seq: u64,
    /// Wall-clock microseconds since the tracer's epoch.
    pub wall_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed payload of a [`TraceEvent`].
///
/// Simulated timestamps (`sim*` fields) are in simulated seconds on the
/// emitting job's clock, which starts at 0 per job; the Chrome exporter
/// re-bases chained jobs onto one global axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A MapReduce job was submitted.
    JobStarted {
        /// Job name.
        job: String,
    },
    /// A MapReduce job completed.
    JobFinished {
        /// Job name.
        job: String,
        /// Simulated end-to-end seconds (overhead + phases).
        sim_total: f64,
        /// Host wall-clock seconds spent executing.
        wall_seconds: f64,
    },
    /// A phase's schedule was fixed.
    PhaseStarted {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task count in the phase.
        tasks: u64,
        /// Simulated phase start.
        sim: f64,
    },
    /// A phase's last task finished.
    PhaseFinished {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Simulated phase end.
        sim: f64,
        /// Speculative backups that won their race.
        speculative_wins: u64,
    },
    /// A task entered the phase's FIFO queue.
    TaskScheduled {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task index within the phase.
        task: u64,
    },
    /// A task started executing on a slot.
    TaskLaunched {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task index within the phase.
        task: u64,
        /// Cluster slot (`server * slots_per_server + slot`).
        slot: u64,
        /// Simulated launch time.
        sim: f64,
    },
    /// A task attempt failed and was re-run (injected failure model).
    TaskRetried {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task index within the phase.
        task: u64,
        /// 1-based retry number (first retry = 1).
        attempt: u64,
    },
    /// A speculative backup attempt was observed for a straggler task. In
    /// the simulator's monotone model only *winning* backups are recorded,
    /// so `won` also implies the original attempt lost the race.
    TaskSpeculated {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task index within the phase.
        task: u64,
        /// Whether the backup beat the original attempt.
        won: bool,
    },
    /// A task completed (at its winning attempt's end).
    TaskFinished {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task index within the phase.
        task: u64,
        /// Cluster slot the winning attempt ran on.
        slot: u64,
        /// Simulated start.
        sim_start: f64,
        /// Simulated end.
        sim_end: f64,
        /// Whether a speculative backup produced the completion.
        speculative: bool,
    },
    /// A work-stealing handoff during real execution: a dry worker stole a
    /// task from the back of a victim worker's deque and ran it itself.
    /// Worker ids are host-pool thread indices, not simulated slots.
    TaskStolen {
        /// Job name.
        job: String,
        /// Which phase.
        phase: PhaseKind,
        /// Task index within the phase.
        task: u64,
        /// Worker thread that stole and executed the task.
        thief: u64,
        /// Worker thread whose deque the task was seeded into.
        victim: u64,
    },
    /// An explicit happens-before edge between two nodes of the causal DAG.
    ///
    /// Node ids follow a stable grammar: `job:{name}`,
    /// `phase:{job}/{map|reduce}`, and `task:{job}/{phase}/{index}`. Edge
    /// kinds: `dispatch` (phase start → first task on a slot), `slot` (a
    /// slot's previous task → its next), `barrier` (map phase → reduce
    /// phase), `shuffle` (contributing map task → reduce task), `merge`
    /// (partition reduce task → the streaming global merge job), and
    /// `chain` (job → the next job in a chained pipeline).
    CausalEdge {
        /// Edge kind (`dispatch`, `slot`, `barrier`, `shuffle`, `merge`,
        /// `chain`).
        edge: String,
        /// Source node id (the happens-before side).
        src: String,
        /// Destination node id (the happens-after side).
        dst: String,
    },
    /// One reduce task's shuffle fetch summary.
    ShufflePartition {
        /// Job name.
        job: String,
        /// Reduce task index.
        reducer: u64,
        /// Bytes fetched.
        bytes: u64,
        /// Records fetched.
        records: u64,
        /// Map-output segments fetched (contributing map tasks).
        segments: u64,
    },
    /// High-water mark of one phase's resident data during real execution:
    /// buffered map output for the map phase, shuffled reduce input for the
    /// reduce phase (wire-accounted logical bytes, not allocator bytes).
    PhasePeakMemory {
        /// Job name.
        job: String,
        /// Which phase's plateau.
        phase: PhaseKind,
        /// Peak concurrent resident bytes.
        peak_bytes: u64,
    },
    /// A map task read its input block from the simulated DFS.
    DfsBlockRead {
        /// Job name.
        job: String,
        /// Map task (= split/block) index.
        task: u64,
        /// Server the task ran on.
        server: u64,
        /// Whether a replica of the block lived on that server.
        local: bool,
    },
    /// One skyline kernel invocation (local computation or merge).
    KernelRun {
        /// Kernel name (`bnl`, `sfs`, `salsa`, `dnc`, `presort-merge`).
        /// Under `--kernel auto` this is the kernel the selector chose for
        /// the block, never the literal `auto`.
        kernel: String,
        /// Input cardinality.
        input: u64,
        /// Output (skyline) cardinality.
        output: u64,
        /// Pairwise dominance comparisons performed.
        comparisons: u64,
        /// Passes over the input (BNL window overflow model).
        passes: u64,
        /// Tracer-clock time the kernel took, in microseconds (`0` in
        /// traces written before this field existed, and under simulated
        /// clocks that do not advance inside a task).
        elapsed_us: u64,
    },
    /// A partition's local skyline was computed (or the partition pruned).
    PartitionLocalSkyline {
        /// Partition id.
        partition: u64,
        /// Points routed into the partition.
        input: u64,
        /// Local skyline size (0 for pruned partitions).
        output: u64,
        /// Whether dominated-cell pruning skipped the kernel entirely.
        pruned: bool,
        /// Name of the kernel that computed this partition (`pruned` when
        /// the partition was skipped; empty in traces written before this
        /// field existed).
        kernel: String,
    },
    /// Map-side filter-point sweep summary: how many shuffle candidates the
    /// broadcast filter block absorbed before they were shuffled.
    RowsFiltered {
        /// Rows entering the map-side sweep.
        input: u64,
        /// Rows dropped because a filter point dominates them.
        filtered: u64,
    },
    /// A partition was skipped by witness-based sector pruning (its best
    /// reachable corner is dominated by a filter point living elsewhere).
    SectorPruned {
        /// Partition id.
        partition: u64,
        /// Points routed into the pruned partition.
        points: u64,
    },
    /// The streaming global merge overlapped the reduce phase: how much of
    /// the merge work ran before the reduce barrier would have released it.
    MergeOverlap {
        /// Simulated seconds of merge execution credited as concurrent with
        /// the reduce phase.
        seconds: f64,
        /// Candidate rows the streaming merge absorbed.
        candidates: u64,
    },
    /// Dataset ingestion began.
    IngestStarted {
        /// Source path or generator description.
        source: String,
    },
    /// Dataset ingestion completed.
    IngestFinished {
        /// Services loaded.
        services: u64,
        /// Malformed/non-finite rows rejected.
        rejected: u64,
    },
    /// A chaos fault fired at a named injection site.
    FaultInjected {
        /// Injection site wire name (`parallel-chunk`, `dfs-read`, ...).
        site: String,
        /// Fault kind wire name (`panic`, `transient-error`, ...).
        fault: String,
        /// Scope the fault fired in (job name, file path, ...).
        scope: String,
        /// Operation index within the scope (chunk, task, row, ...).
        index: u64,
        /// 0-based attempt the fault hit.
        attempt: u64,
    },
    /// A retried operation ran out of its retry budget.
    TaskRetryExhausted {
        /// Injection site wire name.
        site: String,
        /// Scope the operation ran in.
        scope: String,
        /// Operation index within the scope.
        index: u64,
        /// Attempts consumed before giving up.
        attempts: u64,
    },
    /// A partition's local skyline was checkpointed to durable storage.
    CheckpointWritten {
        /// Partition id.
        partition: u64,
        /// Local skyline cardinality persisted.
        points: u64,
    },
    /// A resumed run restored a partition's local skyline from a
    /// checkpoint instead of recomputing it.
    CheckpointRestored {
        /// Partition id.
        partition: u64,
        /// Local skyline cardinality restored.
        points: u64,
    },
    /// A corrupt input record was diverted to the dead-letter report.
    RecordQuarantined {
        /// Source name (file path, job name, ...).
        source: String,
        /// 1-based line number within the source.
        line: u64,
        /// Why the record was rejected.
        reason: String,
    },
    /// One serving-layer request (mutation or query) completed with a
    /// definite outcome — every request emits exactly one of these, so
    /// the summary's request accounting is total (no silent drops).
    Request {
        /// Tenant the request targeted.
        tenant: String,
        /// Operation wire name (`insert`, `delete`, `query`).
        op: String,
        /// Outcome wire name (`ok`, `stale`, `rejected`, `dead-letter`).
        outcome: String,
        /// Simulated seconds spent serving, including retry backoff.
        sim_latency: f64,
        /// Attempts consumed (1 = first try succeeded).
        attempts: u64,
    },
    /// A per-tenant/operation circuit breaker changed state.
    BreakerTransition {
        /// Tenant whose breaker moved.
        tenant: String,
        /// Operation class guarded (`mutation`, `query`).
        op: String,
        /// State left (`closed`, `open`, `half-open`).
        from: String,
        /// State entered.
        to: String,
    },
    /// Admission control shed a request instead of queueing it unbounded.
    Shed {
        /// Tenant whose request was shed.
        tenant: String,
        /// Operation class (`mutation`, `query`).
        op: String,
        /// Why it was shed (`in-flight-limit`, `queue-depth`).
        reason: String,
        /// Queue depth observed at the shed decision.
        depth: u64,
    },
    /// A deletion repaired the live skyline from the k-skyband retention
    /// buffer (or fell back to a full recompute on underflow).
    SkybandRepair {
        /// Tenant whose skyline was repaired.
        tenant: String,
        /// Band candidates promoted into the skyline by this repair.
        promoted: u64,
        /// True when the buffer underflowed and the repair had to
        /// recompute from the full retained store.
        underflow: bool,
    },
    /// A snapshot query was answered from the last consistent skyline
    /// while the breaker was open or a repair was in flight.
    StaleServed {
        /// Tenant served stale.
        tenant: String,
        /// Why the live skyline was unavailable (`breaker-open`,
        /// `repair-in-flight`).
        reason: String,
        /// Mutations accepted since the served snapshot was taken.
        lag: u64,
    },
    /// A resilient driver recovered from a simulated crash and is
    /// re-running with resume semantics. Everything left open by the
    /// killed run (jobs, phases, spans) is abandoned; the validator
    /// resets its accounting at this marker.
    RunResumed {
        /// 1-based retry attempt this resume starts.
        run: u64,
    },
    /// Generic span open (driver-level stages: fit, audit, pipeline...).
    SpanBegin {
        /// Span name; must match the closing [`EventKind::SpanEnd`].
        name: String,
    },
    /// Generic span close.
    SpanEnd {
        /// Span name.
        name: String,
    },
}

impl EventKind {
    /// The stable `type` discriminant used on the wire.
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::JobStarted { .. } => "job_started",
            EventKind::JobFinished { .. } => "job_finished",
            EventKind::PhaseStarted { .. } => "phase_started",
            EventKind::PhaseFinished { .. } => "phase_finished",
            EventKind::TaskScheduled { .. } => "task_scheduled",
            EventKind::TaskLaunched { .. } => "task_launched",
            EventKind::TaskRetried { .. } => "task_retried",
            EventKind::TaskSpeculated { .. } => "task_speculated",
            EventKind::TaskFinished { .. } => "task_finished",
            EventKind::TaskStolen { .. } => "task_stolen",
            EventKind::CausalEdge { .. } => "causal_edge",
            EventKind::ShufflePartition { .. } => "shuffle_partition",
            EventKind::PhasePeakMemory { .. } => "phase_peak_memory",
            EventKind::DfsBlockRead { .. } => "dfs_block_read",
            EventKind::KernelRun { .. } => "kernel_run",
            EventKind::PartitionLocalSkyline { .. } => "partition_local_skyline",
            EventKind::RowsFiltered { .. } => "rows_filtered",
            EventKind::SectorPruned { .. } => "sector_pruned",
            EventKind::MergeOverlap { .. } => "merge_overlap",
            EventKind::IngestStarted { .. } => "ingest_started",
            EventKind::IngestFinished { .. } => "ingest_finished",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::TaskRetryExhausted { .. } => "task_retry_exhausted",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::CheckpointRestored { .. } => "checkpoint_restored",
            EventKind::RecordQuarantined { .. } => "record_quarantined",
            EventKind::Request { .. } => "request",
            EventKind::BreakerTransition { .. } => "breaker_transition",
            EventKind::Shed { .. } => "shed",
            EventKind::SkybandRepair { .. } => "skyband_repair",
            EventKind::StaleServed { .. } => "stale_served",
            EventKind::RunResumed { .. } => "run_resumed",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
        }
    }
}

/// One serialized field value.
enum Field {
    U(u64),
    F(f64),
    B(bool),
    S(String),
}

impl Field {
    fn render(&self) -> String {
        match self {
            Field::U(v) => format!("{v}"),
            Field::F(v) => json::number(*v),
            Field::B(v) => format!("{v}"),
            Field::S(v) => format!("\"{}\"", json::escape(v)),
        }
    }
}

fn fields_of(kind: &EventKind) -> Vec<(&'static str, Field)> {
    use EventKind::*;
    use Field::*;
    match kind {
        JobStarted { job } => vec![("job", S(job.clone()))],
        JobFinished {
            job,
            sim_total,
            wall_seconds,
        } => vec![
            ("job", S(job.clone())),
            ("sim_total", F(*sim_total)),
            ("wall_seconds", F(*wall_seconds)),
        ],
        PhaseStarted {
            job,
            phase,
            tasks,
            sim,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("tasks", U(*tasks)),
            ("sim", F(*sim)),
        ],
        PhaseFinished {
            job,
            phase,
            sim,
            speculative_wins,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("sim", F(*sim)),
            ("speculative_wins", U(*speculative_wins)),
        ],
        TaskScheduled { job, phase, task } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("task", U(*task)),
        ],
        TaskLaunched {
            job,
            phase,
            task,
            slot,
            sim,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("task", U(*task)),
            ("slot", U(*slot)),
            ("sim", F(*sim)),
        ],
        TaskRetried {
            job,
            phase,
            task,
            attempt,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("task", U(*task)),
            ("attempt", U(*attempt)),
        ],
        TaskSpeculated {
            job,
            phase,
            task,
            won,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("task", U(*task)),
            ("won", B(*won)),
        ],
        TaskFinished {
            job,
            phase,
            task,
            slot,
            sim_start,
            sim_end,
            speculative,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("task", U(*task)),
            ("slot", U(*slot)),
            ("sim_start", F(*sim_start)),
            ("sim_end", F(*sim_end)),
            ("speculative", B(*speculative)),
        ],
        TaskStolen {
            job,
            phase,
            task,
            thief,
            victim,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("task", U(*task)),
            ("thief", U(*thief)),
            ("victim", U(*victim)),
        ],
        CausalEdge { edge, src, dst } => vec![
            ("edge", S(edge.clone())),
            ("src", S(src.clone())),
            ("dst", S(dst.clone())),
        ],
        ShufflePartition {
            job,
            reducer,
            bytes,
            records,
            segments,
        } => vec![
            ("job", S(job.clone())),
            ("reducer", U(*reducer)),
            ("bytes", U(*bytes)),
            ("records", U(*records)),
            ("segments", U(*segments)),
        ],
        PhasePeakMemory {
            job,
            phase,
            peak_bytes,
        } => vec![
            ("job", S(job.clone())),
            ("phase", S(phase.as_str().into())),
            ("peak_bytes", U(*peak_bytes)),
        ],
        DfsBlockRead {
            job,
            task,
            server,
            local,
        } => vec![
            ("job", S(job.clone())),
            ("task", U(*task)),
            ("server", U(*server)),
            ("local", B(*local)),
        ],
        KernelRun {
            kernel,
            input,
            output,
            comparisons,
            passes,
            elapsed_us,
        } => vec![
            ("kernel", S(kernel.clone())),
            ("input", U(*input)),
            ("output", U(*output)),
            ("comparisons", U(*comparisons)),
            ("passes", U(*passes)),
            ("elapsed_us", U(*elapsed_us)),
        ],
        PartitionLocalSkyline {
            partition,
            input,
            output,
            pruned,
            kernel,
        } => vec![
            ("partition", U(*partition)),
            ("input", U(*input)),
            ("output", U(*output)),
            ("pruned", B(*pruned)),
            ("kernel", S(kernel.clone())),
        ],
        RowsFiltered { input, filtered } => {
            vec![("input", U(*input)), ("filtered", U(*filtered))]
        }
        SectorPruned { partition, points } => {
            vec![("partition", U(*partition)), ("points", U(*points))]
        }
        MergeOverlap {
            seconds,
            candidates,
        } => vec![("seconds", F(*seconds)), ("candidates", U(*candidates))],
        IngestStarted { source } => vec![("source", S(source.clone()))],
        IngestFinished { services, rejected } => {
            vec![("services", U(*services)), ("rejected", U(*rejected))]
        }
        FaultInjected {
            site,
            fault,
            scope,
            index,
            attempt,
        } => vec![
            ("site", S(site.clone())),
            ("fault", S(fault.clone())),
            ("scope", S(scope.clone())),
            ("index", U(*index)),
            ("attempt", U(*attempt)),
        ],
        TaskRetryExhausted {
            site,
            scope,
            index,
            attempts,
        } => vec![
            ("site", S(site.clone())),
            ("scope", S(scope.clone())),
            ("index", U(*index)),
            ("attempts", U(*attempts)),
        ],
        CheckpointWritten { partition, points } => {
            vec![("partition", U(*partition)), ("points", U(*points))]
        }
        CheckpointRestored { partition, points } => {
            vec![("partition", U(*partition)), ("points", U(*points))]
        }
        RecordQuarantined {
            source,
            line,
            reason,
        } => vec![
            ("source", S(source.clone())),
            ("line", U(*line)),
            ("reason", S(reason.clone())),
        ],
        Request {
            tenant,
            op,
            outcome,
            sim_latency,
            attempts,
        } => vec![
            ("tenant", S(tenant.clone())),
            ("op", S(op.clone())),
            ("outcome", S(outcome.clone())),
            ("sim_latency", F(*sim_latency)),
            ("attempts", U(*attempts)),
        ],
        BreakerTransition {
            tenant,
            op,
            from,
            to,
        } => vec![
            ("tenant", S(tenant.clone())),
            ("op", S(op.clone())),
            ("from", S(from.clone())),
            ("to", S(to.clone())),
        ],
        Shed {
            tenant,
            op,
            reason,
            depth,
        } => vec![
            ("tenant", S(tenant.clone())),
            ("op", S(op.clone())),
            ("reason", S(reason.clone())),
            ("depth", U(*depth)),
        ],
        SkybandRepair {
            tenant,
            promoted,
            underflow,
        } => vec![
            ("tenant", S(tenant.clone())),
            ("promoted", U(*promoted)),
            ("underflow", B(*underflow)),
        ],
        StaleServed {
            tenant,
            reason,
            lag,
        } => vec![
            ("tenant", S(tenant.clone())),
            ("reason", S(reason.clone())),
            ("lag", U(*lag)),
        ],
        RunResumed { run } => vec![("run", U(*run))],
        SpanBegin { name } => vec![("name", S(name.clone()))],
        SpanEnd { name } => vec![("name", S(name.clone()))],
    }
}

impl TraceEvent {
    /// Serializes the event as one flat JSON object (one JSONL line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"wall_us\":{},\"type\":\"{}\"",
            self.seq,
            self.wall_us,
            self.kind.type_name()
        );
        for (key, value) in fields_of(&self.kind) {
            let _ = write!(out, ",\"{}\":{}", key, value.render());
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation: malformed JSON,
    /// a missing/badly-typed field, or an unknown `type`.
    pub fn from_json(line: &str) -> Result<TraceEvent, String> {
        let value = json::parse(line).map_err(|e| e.to_string())?;
        let seq = req_u64(&value, "seq")?;
        let wall_us = req_u64(&value, "wall_us")?;
        let ty = req_str(&value, "type")?;
        let kind = kind_from(&value, &ty)?;
        Ok(TraceEvent { seq, wall_us, kind })
    }
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn req_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field `{key}`"))
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Optional integer field with a default — for fields added to the schema
/// after traces in the wild were written. A *present but mistyped* value is
/// still a schema violation.
fn opt_u64(v: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(_) => req_u64(v, key),
    }
}

/// Optional string field with a default; present-but-mistyped still errors.
fn opt_str(v: &JsonValue, key: &str, default: &str) -> Result<String, String> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(_) => req_str(v, key),
    }
}

fn req_phase(v: &JsonValue, key: &str) -> Result<PhaseKind, String> {
    let s = req_str(v, key)?;
    PhaseKind::parse(&s).ok_or_else(|| format!("unknown phase `{s}`"))
}

fn kind_from(v: &JsonValue, ty: &str) -> Result<EventKind, String> {
    use EventKind::*;
    Ok(match ty {
        "job_started" => JobStarted {
            job: req_str(v, "job")?,
        },
        "job_finished" => JobFinished {
            job: req_str(v, "job")?,
            sim_total: req_f64(v, "sim_total")?,
            wall_seconds: req_f64(v, "wall_seconds")?,
        },
        "phase_started" => PhaseStarted {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            tasks: req_u64(v, "tasks")?,
            sim: req_f64(v, "sim")?,
        },
        "phase_finished" => PhaseFinished {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            sim: req_f64(v, "sim")?,
            speculative_wins: req_u64(v, "speculative_wins")?,
        },
        "task_scheduled" => TaskScheduled {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            task: req_u64(v, "task")?,
        },
        "task_launched" => TaskLaunched {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            task: req_u64(v, "task")?,
            slot: req_u64(v, "slot")?,
            sim: req_f64(v, "sim")?,
        },
        "task_retried" => TaskRetried {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            task: req_u64(v, "task")?,
            attempt: req_u64(v, "attempt")?,
        },
        "task_speculated" => TaskSpeculated {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            task: req_u64(v, "task")?,
            won: req_bool(v, "won")?,
        },
        "task_finished" => TaskFinished {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            task: req_u64(v, "task")?,
            slot: req_u64(v, "slot")?,
            sim_start: req_f64(v, "sim_start")?,
            sim_end: req_f64(v, "sim_end")?,
            speculative: req_bool(v, "speculative")?,
        },
        "task_stolen" => TaskStolen {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            task: req_u64(v, "task")?,
            thief: req_u64(v, "thief")?,
            victim: req_u64(v, "victim")?,
        },
        "causal_edge" => CausalEdge {
            edge: req_str(v, "edge")?,
            src: req_str(v, "src")?,
            dst: req_str(v, "dst")?,
        },
        "shuffle_partition" => ShufflePartition {
            job: req_str(v, "job")?,
            reducer: req_u64(v, "reducer")?,
            bytes: req_u64(v, "bytes")?,
            records: req_u64(v, "records")?,
            segments: req_u64(v, "segments")?,
        },
        "phase_peak_memory" => PhasePeakMemory {
            job: req_str(v, "job")?,
            phase: req_phase(v, "phase")?,
            peak_bytes: req_u64(v, "peak_bytes")?,
        },
        "dfs_block_read" => DfsBlockRead {
            job: req_str(v, "job")?,
            task: req_u64(v, "task")?,
            server: req_u64(v, "server")?,
            local: req_bool(v, "local")?,
        },
        "kernel_run" => KernelRun {
            kernel: req_str(v, "kernel")?,
            input: req_u64(v, "input")?,
            output: req_u64(v, "output")?,
            comparisons: req_u64(v, "comparisons")?,
            passes: req_u64(v, "passes")?,
            elapsed_us: opt_u64(v, "elapsed_us", 0)?,
        },
        "partition_local_skyline" => PartitionLocalSkyline {
            partition: req_u64(v, "partition")?,
            input: req_u64(v, "input")?,
            output: req_u64(v, "output")?,
            pruned: req_bool(v, "pruned")?,
            kernel: opt_str(v, "kernel", "")?,
        },
        "rows_filtered" => RowsFiltered {
            input: req_u64(v, "input")?,
            filtered: req_u64(v, "filtered")?,
        },
        "sector_pruned" => SectorPruned {
            partition: req_u64(v, "partition")?,
            points: req_u64(v, "points")?,
        },
        "merge_overlap" => MergeOverlap {
            seconds: req_f64(v, "seconds")?,
            candidates: req_u64(v, "candidates")?,
        },
        "ingest_started" => IngestStarted {
            source: req_str(v, "source")?,
        },
        "ingest_finished" => IngestFinished {
            services: req_u64(v, "services")?,
            rejected: req_u64(v, "rejected")?,
        },
        "fault_injected" => FaultInjected {
            site: req_str(v, "site")?,
            fault: req_str(v, "fault")?,
            scope: req_str(v, "scope")?,
            index: req_u64(v, "index")?,
            attempt: req_u64(v, "attempt")?,
        },
        "task_retry_exhausted" => TaskRetryExhausted {
            site: req_str(v, "site")?,
            scope: req_str(v, "scope")?,
            index: req_u64(v, "index")?,
            attempts: req_u64(v, "attempts")?,
        },
        "checkpoint_written" => CheckpointWritten {
            partition: req_u64(v, "partition")?,
            points: req_u64(v, "points")?,
        },
        "checkpoint_restored" => CheckpointRestored {
            partition: req_u64(v, "partition")?,
            points: req_u64(v, "points")?,
        },
        "record_quarantined" => RecordQuarantined {
            source: req_str(v, "source")?,
            line: req_u64(v, "line")?,
            reason: req_str(v, "reason")?,
        },
        "request" => Request {
            tenant: req_str(v, "tenant")?,
            op: req_str(v, "op")?,
            outcome: req_str(v, "outcome")?,
            sim_latency: req_f64(v, "sim_latency")?,
            attempts: req_u64(v, "attempts")?,
        },
        "breaker_transition" => BreakerTransition {
            tenant: req_str(v, "tenant")?,
            op: req_str(v, "op")?,
            from: req_str(v, "from")?,
            to: req_str(v, "to")?,
        },
        "shed" => Shed {
            tenant: req_str(v, "tenant")?,
            op: req_str(v, "op")?,
            reason: req_str(v, "reason")?,
            depth: req_u64(v, "depth")?,
        },
        "skyband_repair" => SkybandRepair {
            tenant: req_str(v, "tenant")?,
            promoted: req_u64(v, "promoted")?,
            underflow: req_bool(v, "underflow")?,
        },
        "stale_served" => StaleServed {
            tenant: req_str(v, "tenant")?,
            reason: req_str(v, "reason")?,
            lag: req_u64(v, "lag")?,
        },
        "run_resumed" => RunResumed {
            run: req_u64(v, "run")?,
        },
        "span_begin" => SpanBegin {
            name: req_str(v, "name")?,
        },
        "span_end" => SpanEnd {
            name: req_str(v, "name")?,
        },
        other => return Err(format!("unknown event type `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<EventKind> {
        use EventKind::*;
        vec![
            JobStarted { job: "j1".into() },
            JobFinished {
                job: "j1".into(),
                sim_total: 12.5,
                wall_seconds: 0.25,
            },
            PhaseStarted {
                job: "j1".into(),
                phase: PhaseKind::Map,
                tasks: 8,
                sim: 0.0,
            },
            PhaseFinished {
                job: "j1".into(),
                phase: PhaseKind::Reduce,
                sim: 9.0,
                speculative_wins: 1,
            },
            TaskScheduled {
                job: "j1".into(),
                phase: PhaseKind::Map,
                task: 3,
            },
            TaskLaunched {
                job: "j1".into(),
                phase: PhaseKind::Map,
                task: 3,
                slot: 5,
                sim: 1.5,
            },
            TaskRetried {
                job: "j1".into(),
                phase: PhaseKind::Reduce,
                task: 0,
                attempt: 2,
            },
            TaskSpeculated {
                job: "j1".into(),
                phase: PhaseKind::Map,
                task: 7,
                won: true,
            },
            TaskFinished {
                job: "j\"quoted\"".into(),
                phase: PhaseKind::Map,
                task: 3,
                slot: 5,
                sim_start: 1.5,
                sim_end: 2.75,
                speculative: false,
            },
            TaskStolen {
                job: "j1".into(),
                phase: PhaseKind::Map,
                task: 9,
                thief: 2,
                victim: 0,
            },
            CausalEdge {
                edge: "shuffle".into(),
                src: "task:j1/map/3".into(),
                dst: "task:j1/reduce/0".into(),
            },
            ShufflePartition {
                job: "j1".into(),
                reducer: 2,
                bytes: 1024,
                records: 77,
                segments: 4,
            },
            PhasePeakMemory {
                job: "j1".into(),
                phase: PhaseKind::Reduce,
                peak_bytes: 1_048_576,
            },
            DfsBlockRead {
                job: "j1".into(),
                task: 1,
                server: 3,
                local: true,
            },
            KernelRun {
                kernel: "bnl".into(),
                input: 100,
                output: 12,
                comparisons: 4321,
                passes: 2,
                elapsed_us: 750,
            },
            PartitionLocalSkyline {
                partition: 9,
                input: 50,
                output: 6,
                pruned: false,
                kernel: "salsa".into(),
            },
            RowsFiltered {
                input: 1600,
                filtered: 900,
            },
            SectorPruned {
                partition: 5,
                points: 120,
            },
            MergeOverlap {
                seconds: 3.25,
                candidates: 640,
            },
            IngestStarted {
                source: "data.csv".into(),
            },
            IngestFinished {
                services: 1000,
                rejected: 3,
            },
            FaultInjected {
                site: "parallel-chunk".into(),
                fault: "panic".into(),
                scope: "local-skylines".into(),
                index: 4,
                attempt: 1,
            },
            TaskRetryExhausted {
                site: "shuffle-fetch".into(),
                scope: "merge".into(),
                index: 2,
                attempts: 4,
            },
            CheckpointWritten {
                partition: 11,
                points: 42,
            },
            CheckpointRestored {
                partition: 11,
                points: 42,
            },
            RecordQuarantined {
                source: "qws.txt".into(),
                line: 118,
                reason: "non-finite value in column 4".into(),
            },
            Request {
                tenant: "t0".into(),
                op: "insert".into(),
                outcome: "ok".into(),
                sim_latency: 0.125,
                attempts: 2,
            },
            BreakerTransition {
                tenant: "t0".into(),
                op: "mutation".into(),
                from: "closed".into(),
                to: "open".into(),
            },
            Shed {
                tenant: "t1".into(),
                op: "mutation".into(),
                reason: "queue-depth".into(),
                depth: 64,
            },
            SkybandRepair {
                tenant: "t0".into(),
                promoted: 3,
                underflow: false,
            },
            StaleServed {
                tenant: "t0".into(),
                reason: "breaker-open".into(),
                lag: 5,
            },
            RunResumed { run: 2 },
            SpanBegin { name: "fit".into() },
            SpanEnd { name: "fit".into() },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for (i, kind) in samples().into_iter().enumerate() {
            let ev = TraceEvent {
                seq: i as u64,
                wall_us: 1000 + i as u64,
                kind,
            };
            let line = ev.to_json();
            let back = TraceEvent::from_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "{line}");
        }
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(TraceEvent::from_json(r#"{"seq":0,"wall_us":0,"type":"task_finished"}"#).is_err());
        assert!(TraceEvent::from_json(r#"{"seq":0,"type":"job_started","job":"x"}"#).is_err());
        assert!(TraceEvent::from_json(r#"{"seq":0,"wall_us":0,"type":"nope"}"#).is_err());
        assert!(TraceEvent::from_json("not json").is_err());
    }

    #[test]
    fn parse_accepts_pre_kernel_schema_traces() {
        // Traces written before `elapsed_us` / `kernel` existed must still
        // parse, with the documented defaults.
        let kr = TraceEvent::from_json(
            r#"{"seq":0,"wall_us":0,"type":"kernel_run","kernel":"bnl","input":9,"output":3,"comparisons":12,"passes":1}"#,
        )
        .unwrap();
        assert!(
            matches!(kr.kind, EventKind::KernelRun { elapsed_us: 0, .. }),
            "{kr:?}"
        );
        let pls = TraceEvent::from_json(
            r#"{"seq":1,"wall_us":0,"type":"partition_local_skyline","partition":2,"input":9,"output":3,"pruned":false}"#,
        )
        .unwrap();
        assert!(
            matches!(&pls.kind, EventKind::PartitionLocalSkyline { kernel, .. } if kernel.is_empty()),
            "{pls:?}"
        );
        // present-but-mistyped is still a schema violation
        assert!(TraceEvent::from_json(
            r#"{"seq":2,"wall_us":0,"type":"kernel_run","kernel":"bnl","input":9,"output":3,"comparisons":12,"passes":1,"elapsed_us":"fast"}"#,
        )
        .is_err());
    }

    #[test]
    fn parse_rejects_bad_phase() {
        let line =
            r#"{"seq":0,"wall_us":0,"type":"task_scheduled","job":"j","phase":"combine","task":0}"#;
        assert!(TraceEvent::from_json(line).is_err());
    }

    #[test]
    fn json_is_flat_single_line() {
        let ev = TraceEvent {
            seq: 1,
            wall_us: 2,
            kind: EventKind::JobStarted {
                job: "multi\nline".into(),
            },
        };
        assert!(!ev.to_json().contains('\n'));
    }
}
