//! A mergeable Greenwald–Khanna quantile sketch.
//!
//! The log₂ [`Histogram`](crate::Histogram) answers "how is this metric
//! distributed across octaves?" but cannot name a p99 tighter than a
//! power-of-two bucket. [`QuantileSketch`] closes that gap: it keeps a
//! compressed summary of `(value, g, Δ)` tuples with the classic GK
//! invariant `g + Δ ≤ ⌊2εn⌋`, which guarantees any rank query is answered
//! within `εn` ranks of the truth while storing
//! `O((1/ε)·log(εn))` tuples instead of `n` values.
//!
//! Two operations matter to the registry:
//!
//! * **observe** — appends to a small unsorted buffer; every
//!   `⌈1/(2ε)⌉` observations the buffer is sorted, merged into the tuple
//!   list, and the list is compressed. Amortized `O(log n)` per value.
//! * **merge** — combines two sketches by interleaving their tuple lists
//!   and recomputing conservative rank bounds (`rmin` adds the
//!   predecessor's `rmin` from the other sketch, `rmax` adds the
//!   successor's `rmax`), then compressing. Merging is how the 16
//!   registry shards fold into one snapshot; each merge can add up to the
//!   operands' ε to the worst-case rank error, so per-shard sketches use
//!   a deliberately tight ε (see [`QuantileSketch::DEFAULT_EPSILON`]) to
//!   leave headroom under the reporting target of 0.01.
//!
//! Values must be finite; non-finite observations are dropped (counted
//! nowhere) rather than poisoning every later comparison.

/// One GK tuple: `value` covers a band of `g` ranks ending at
/// `rmin = Σ g`, with `Δ` extra uncertainty above (`rmax = rmin + Δ`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tuple {
    value: f64,
    g: u64,
    delta: u64,
}

/// A mergeable ε-approximate quantile summary (Greenwald–Khanna).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    epsilon: f64,
    count: u64,
    sum: f64,
    /// Compressed summary, sorted by value.
    tuples: Vec<Tuple>,
    /// Unsorted insert buffer, folded in at flush points.
    buffer: Vec<f64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(QuantileSketch::DEFAULT_EPSILON)
    }
}

impl QuantileSketch {
    /// Default rank-error target for registry shard sketches. Tight on
    /// purpose: folding the 16 shards into one snapshot merges 16
    /// sketches, and merge error is additive in the worst case, so the
    /// merged result stays comfortably inside the 0.01 reporting bound.
    pub const DEFAULT_EPSILON: f64 = 0.001;

    /// The quantiles reported by the summary table and Prometheus export.
    pub const REPORTED: [(&'static str, f64); 4] = [
        ("0.5", 0.5),
        ("0.95", 0.95),
        ("0.99", 0.99),
        ("0.999", 0.999),
    ];

    /// Creates an empty sketch targeting rank error `epsilon·n`
    /// (clamped to `[0.0001, 0.4]`).
    pub fn new(epsilon: f64) -> Self {
        let epsilon = if epsilon.is_finite() {
            epsilon.clamp(1e-4, 0.4)
        } else {
            Self::DEFAULT_EPSILON
        };
        QuantileSketch {
            epsilon,
            count: 0,
            sum: 0.0,
            tuples: Vec::new(),
            buffer: Vec::new(),
        }
    }

    /// The sketch's rank-error target.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Observations recorded (non-finite values excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (for Prometheus `_sum`).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Records one observation. Non-finite values are dropped.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.buffer.push(value);
        if self.buffer.len() >= self.buffer_capacity() {
            self.flush();
        }
    }

    fn buffer_capacity(&self) -> usize {
        ((0.5 / self.epsilon) as usize).max(16)
    }

    /// `⌊2εn⌋`, floored at 1 — the GK compression band.
    fn threshold(&self) -> u64 {
        ((2.0 * self.epsilon * self.count as f64) as u64).max(1)
    }

    /// Sorts the buffer and merges it into the tuple list, then compresses.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut incoming = std::mem::take(&mut self.buffer);
        incoming.sort_by(f64::total_cmp);
        self.tuples = merge_buffer(&self.tuples, &incoming, self.threshold());
        self.compress();
    }

    /// GK compress: absorb a tuple into its successor whenever the
    /// combined band still fits under the invariant. The first tuple is
    /// never absorbed so the minimum stays exactly representable.
    fn compress(&mut self) {
        let threshold = self.threshold();
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        for mut t in self.tuples.drain(..) {
            while out.len() >= 2 {
                let prev = out[out.len() - 1];
                if prev.g + t.g + t.delta <= threshold {
                    t.g += prev.g;
                    out.pop();
                } else {
                    break;
                }
            }
            out.push(t);
        }
        self.tuples = out;
    }

    /// A flushed view of the tuples without mutating `self` (queries take
    /// `&self`; the clone touches only the small compressed summary).
    fn flushed_view(&self) -> Vec<Tuple> {
        if self.buffer.is_empty() {
            return self.tuples.clone();
        }
        let mut incoming = self.buffer.clone();
        incoming.sort_by(f64::total_cmp);
        merge_buffer(&self.tuples, &incoming, self.threshold())
    }

    /// Returns a value whose rank is within `εn` of `⌈q·n⌉`, or `None`
    /// for an empty sketch. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let view = self.flushed_view();
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.5
        };
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // Rank 1 and rank n are exact: compress never absorbs the first
        // tuple and the last tuple always carries the maximum.
        if target == 1 {
            return view.first().map(|t| t.value);
        }
        if target == self.count {
            return view.last().map(|t| t.value);
        }
        let slack = (self.epsilon * self.count as f64) as u64;
        let mut rmin = 0u64;
        for (i, t) in view.iter().enumerate() {
            rmin += t.g;
            match view.get(i + 1) {
                Some(next) => {
                    if rmin + next.g + next.delta > target + slack {
                        return Some(t.value);
                    }
                }
                None => return Some(t.value),
            }
        }
        None
    }

    /// Folds `other` into `self`. The merged sketch keeps `self`'s ε as
    /// its compression target; worst-case rank error grows by up to the
    /// operands' ε per merge (see module docs).
    pub fn merge_from(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let epsilon = self.epsilon;
            *self = other.clone();
            self.epsilon = epsilon;
            self.flush();
            return;
        }
        self.flush();
        let a = std::mem::take(&mut self.tuples);
        let b = other.flushed_view();
        let n_b = other.count;
        let n_a = self.count;
        self.count += other.count;
        self.sum += other.sum;
        self.tuples = merge_summaries(&a, n_a, &b, n_b);
        self.compress();
    }
}

/// Folds a sorted batch of raw values into a tuple list. Interior values
/// enter with the invariant-maximal uncertainty `Δ = ⌊2εn⌋ − 1`; values
/// extending the min or max enter exactly (`Δ = 0`).
fn merge_buffer(tuples: &[Tuple], sorted: &[f64], threshold: u64) -> Vec<Tuple> {
    let interior_delta = threshold.saturating_sub(1);
    let mut out = Vec::with_capacity(tuples.len() + sorted.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < tuples.len() || j < sorted.len() {
        let take_existing = match (tuples.get(i), sorted.get(j)) {
            (Some(t), Some(&v)) => t.value <= v,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_existing {
            out.push(tuples[i]);
            i += 1;
        } else {
            // A new value below the current min or above every existing
            // tuple has an exactly-known rank edge.
            let at_edge = out.is_empty() || (i >= tuples.len() && j + 1 >= sorted.len());
            out.push(Tuple {
                value: sorted[j],
                g: 1,
                delta: if at_edge { 0 } else { interior_delta },
            });
            j += 1;
        }
    }
    out
}

/// Merges two GK summaries by value, recomputing conservative rank
/// bounds: a tuple's merged `rmin` adds the other summary's `rmin` at its
/// predecessor, its merged `rmax` adds the other summary's `rmax` at its
/// successor (or the full count when no successor exists).
fn merge_summaries(a: &[Tuple], n_a: u64, b: &[Tuple], n_b: u64) -> Vec<Tuple> {
    let bounds = |tuples: &[Tuple]| -> (Vec<u64>, Vec<u64>) {
        let mut rmin = Vec::with_capacity(tuples.len());
        let mut rmax = Vec::with_capacity(tuples.len());
        let mut acc = 0u64;
        for t in tuples {
            acc += t.g;
            rmin.push(acc);
            rmax.push(acc + t.delta);
        }
        (rmin, rmax)
    };
    let (rmin_a, rmax_a) = bounds(a);
    let (rmin_b, rmax_b) = bounds(b);

    // For each merged tuple: rmin/rmax of its own summary plus the other
    // summary's contribution below/above its value.
    let other_bounds = |value: f64, rmin: &[u64], rmax: &[u64], tuples: &[Tuple], n: u64| {
        // Number of tuples with value <= v decides the predecessor.
        let succ = tuples.partition_point(|t| t.value < value);
        let below = if succ == 0 { 0 } else { rmin[succ - 1] };
        let above = if succ < tuples.len() {
            rmax[succ].saturating_sub(1)
        } else {
            n
        };
        (below, above)
    };

    let total = n_a + n_b;
    let mut merged: Vec<(f64, u64, u64)> = Vec::with_capacity(a.len() + b.len());
    for (i, t) in a.iter().enumerate() {
        let (below, above) = other_bounds(t.value, &rmin_b, &rmax_b, b, n_b);
        merged.push((t.value, rmin_a[i] + below, rmax_a[i] + above));
    }
    for (i, t) in b.iter().enumerate() {
        let (below, above) = other_bounds(t.value, &rmin_a, &rmax_a, a, n_a);
        merged.push((t.value, rmin_b[i] + below, rmax_b[i] + above));
    }
    merged.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));

    // The global min and max are exact; tighten their bounds before
    // converting (rmin, rmax) back to (g, Δ).
    if let Some(first) = merged.first_mut() {
        first.1 = 1;
        first.2 = first.2.max(1);
    }
    if let Some(last) = merged.last_mut() {
        last.2 = total;
        last.1 = last.1.min(total);
    }

    let mut out = Vec::with_capacity(merged.len());
    let mut prev_rmin = 0u64;
    for (value, rmin, rmax) in merged {
        let rmin = rmin.max(prev_rmin + 1).min(rmax.max(prev_rmin + 1));
        out.push(Tuple {
            value,
            g: rmin - prev_rmin,
            delta: rmax.saturating_sub(rmin),
        });
        prev_rmin = rmin;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worst observed rank error of `sketch.quantile(q)` against the
    /// exact sorted data, as a fraction of n.
    fn rank_error(sketch: &QuantileSketch, sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let got = sketch.quantile(q).expect("non-empty");
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        // The returned value's plausible rank range in the exact data.
        let lo = sorted.partition_point(|&v| v < got) + 1;
        let hi = sorted.partition_point(|&v| v <= got);
        let dist = if target < lo {
            lo - target
        } else if target > hi.max(lo) {
            target - hi.max(lo)
        } else {
            0
        };
        dist as f64 / n as f64
    }

    /// Deterministic pseudo-random stream (xorshift) — no rand dep here.
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1_000_003) as f64 / 997.0
            })
            .collect()
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new(0.01);
        assert_eq!(s.count(), 0);
        assert!(s.quantile(0.5).is_none());
    }

    #[test]
    fn single_value() {
        let mut s = QuantileSketch::new(0.01);
        s.observe(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(42.0));
        }
        assert_eq!(s.count(), 1);
        assert!((s.sum() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_dropped() {
        let mut s = QuantileSketch::new(0.01);
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn p99_within_rank_error_on_100k_values() {
        let data = stream(0x5eed, 100_000);
        let mut s = QuantileSketch::new(0.005);
        for &v in &data {
            s.observe(v);
        }
        let mut sorted = data;
        sorted.sort_by(f64::total_cmp);
        for (_, q) in QuantileSketch::REPORTED {
            let err = rank_error(&s, &sorted, q);
            assert!(err <= 0.01, "q={q}: rank error {err} exceeds 0.01");
        }
    }

    #[test]
    fn merged_shards_stay_within_rank_error() {
        // Mirrors the registry snapshot: 16 shard sketches at the tight
        // default ε folded into one, compared against the exact stream.
        let mut shards: Vec<QuantileSketch> = (0..16).map(|_| QuantileSketch::default()).collect();
        let data = stream(0xfeed, 64_000);
        for (i, &v) in data.iter().enumerate() {
            shards[i % 16].observe(v);
        }
        let mut merged = QuantileSketch::default();
        for shard in &shards {
            merged.merge_from(shard);
        }
        assert_eq!(merged.count(), data.len() as u64);
        let mut sorted = data;
        sorted.sort_by(f64::total_cmp);
        for (_, q) in QuantileSketch::REPORTED {
            let err = rank_error(&merged, &sorted, q);
            assert!(err <= 0.01, "q={q}: merged rank error {err} exceeds 0.01");
        }
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut a = QuantileSketch::new(0.01);
        let mut b = QuantileSketch::new(0.01);
        for v in 0..100 {
            b.observe(f64::from(v));
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 100);
        let p50 = a.quantile(0.5).unwrap();
        assert!((45.0..=55.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn min_and_max_are_exact() {
        let mut s = QuantileSketch::new(0.01);
        for &v in &stream(7, 10_000) {
            s.observe(v);
        }
        s.observe(-5.0);
        s.observe(1e9);
        assert_eq!(s.quantile(0.0), Some(-5.0));
        assert_eq!(s.quantile(1.0), Some(1e9));
    }

    #[test]
    fn summary_stays_compressed() {
        let mut s = QuantileSketch::new(0.01);
        for &v in &stream(3, 200_000) {
            s.observe(v);
        }
        // O((1/ε)·log(εn)) tuples, not O(n).
        assert!(
            s.tuples.len() < 4_000,
            "summary grew to {} tuples",
            s.tuples.len()
        );
    }
}
