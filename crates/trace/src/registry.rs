//! Process-wide metrics registry: named monotonic counters, gauges, and
//! log₂-bucketed histograms.
//!
//! Kernel hot paths (`skyline::kernel`, `skyline::parallel`) take only a
//! `&PointBlock` and cannot thread a handle, so recording goes through a
//! process-global registry ([`metrics`]). Three properties keep that safe
//! and cheap:
//!
//! - **Off by default.** Every recording call first checks one relaxed
//!   atomic; when disabled (the default) nothing is touched. The
//!   `trace_overhead` bench holds this under 5% on `block_bnl`.
//! - **Sharded.** Recording locks one of [`SHARDS`] mutexes chosen by a
//!   per-thread round-robin ticket, so thread-pool workers recording
//!   dominance-test counts don't contend on one lock.
//! - **Snapshot-merge.** Readers call [`MetricsRegistry::snapshot`], which
//!   folds all shards into one [`MetricsSnapshot`] with saturating adds.

use crate::sketch::QuantileSketch;
use mrsky_model::sync::{AtomicBool, AtomicUsize, Mutex, Ordering};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Number of independently locked shards.
pub const SHARDS: usize = 16;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. 64 buckets cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }
}

/// Index of the bucket a value falls in.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // floor(log2(value)) + 1, capped at the last bucket.
        (64 - value.leading_zeros() as usize).min(63)
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 63 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another histogram into this one (saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs —
    /// the compact form used by summaries and sparklines.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    sketches: BTreeMap<String, QuantileSketch>,
}

/// The sharded registry. Use the process-global one via [`metrics`]; tests
/// may build private instances with [`MetricsRegistry::new`].
pub struct MetricsRegistry {
    enabled: AtomicBool,
    shards: Vec<Mutex<Shard>>,
    // Gauges are rare (set once per run, not per point), so they live
    // behind a single lock rather than sharded last-write-wins ambiguity.
    gauges: Mutex<BTreeMap<String, f64>>,
}

static SHARD_TICKET: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = SHARD_TICKET.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates a disabled registry with [`SHARDS`] shards.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: AtomicBool::new(false),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            gauges: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        // ORDERING: Relaxed — the flag only gates best-effort recording;
        // a stale read drops or admits a few samples around the toggle,
        // never corrupts shard state (that is the mutexes' job).
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording calls currently do anything.
    pub fn is_enabled(&self) -> bool {
        // ORDERING: Relaxed — see `set_enabled`.
        self.enabled.load(Ordering::Relaxed)
    }

    fn shard(&self) -> &Mutex<Shard> {
        let idx = MY_SHARD.with(|s| *s);
        &self.shards[idx]
    }

    /// Adds to a named monotonic counter (no-op while disabled).
    pub fn incr(&self, name: &str, delta: u64) {
        if !self.is_enabled() || delta == 0 {
            return;
        }
        let mut shard = self.shard().lock();
        let slot = shard.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Records one observation into a named histogram (no-op while
    /// disabled).
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard().lock();
        shard
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records one observation into a named quantile sketch (no-op while
    /// disabled). Sketches complement [`MetricsRegistry::observe`]'s log₂
    /// histograms with ε-approximate percentiles (p50/p95/p99/p999);
    /// non-finite values are dropped.
    pub fn observe_quantile(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard().lock();
        shard
            .sketches
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Sets a named gauge to a value (last write wins; no-op while
    /// disabled).
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut gauges = self.gauges.lock();
        gauges.insert(name.to_string(), value);
    }

    /// Raises a named gauge to `value` if it exceeds the current reading
    /// (high-water-mark semantics, so concurrent reporters never lower it;
    /// no-op while disabled).
    pub fn gauge_max(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut gauges = self.gauges.lock();
        let slot = gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    /// Folds every shard into one consistent-enough snapshot. (Each shard
    /// is locked in turn, so concurrent writers may land between shards —
    /// fine for post-run reporting, which is the only consumer.)
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            let guard = shard.lock();
            for (name, value) in &guard.counters {
                let slot = snap.counters.entry(name.clone()).or_insert(0);
                *slot = slot.saturating_add(*value);
            }
            for (name, hist) in &guard.histograms {
                snap.histograms.entry(name.clone()).or_default().merge(hist);
            }
            for (name, sketch) in &guard.sketches {
                snap.sketches
                    .entry(name.clone())
                    .or_default()
                    .merge_from(sketch);
            }
        }
        let gauges = self.gauges.lock();
        snap.gauges = gauges.clone();
        snap
    }

    /// Clears every shard and gauge (the enabled flag is untouched).
    pub fn reset(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.counters.clear();
            guard.histograms.clear();
            guard.sketches.clear();
        }
        let mut gauges = self.gauges.lock();
        gauges.clear();
    }
}

/// The process-global registry used by kernel instrumentation.
pub fn metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A merged, read-only view of a registry at one point in time.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Quantile sketches by name.
    pub sketches: BTreeMap<String, QuantileSketch>,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one. Counters and histogram
    /// buckets add saturatingly; gauges take the other side's value.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (name, sketch) in &other.sketches {
            self.sketches
                .entry(name.clone())
                .or_default()
                .merge_from(sketch);
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): every series gets `# HELP` and `# TYPE` comments;
    /// counters and gauges render as single samples, histograms as
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, and
    /// quantile sketches as `summary` series with
    /// `{quantile="0.5|0.95|0.99|0.999"}` samples. Label values are
    /// escaped per the exposition grammar. Series are ordered by family
    /// (counters, gauges, histograms, summaries), then by name — the
    /// maps are `BTreeMap`s, so rendering the same snapshot twice is
    /// byte-identical.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let help = help_text(name);
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let help = help_text(name);
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let help = help_text(name);
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &count) in hist.buckets().iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative = cumulative.saturating_add(count);
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    escape_label_value(&bucket_upper_bound(i).to_string())
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        for (name, sketch) in &self.sketches {
            let help = help_text(name);
            let name = sanitize_metric_name(name);
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} summary");
            for (label, q) in QuantileSketch::REPORTED {
                if let Some(value) = sketch.quantile(q) {
                    let _ = writeln!(
                        out,
                        "{name}{{quantile=\"{}\"}} {value}",
                        escape_label_value(label)
                    );
                }
            }
            let _ = writeln!(out, "{name}_sum {}", sketch.sum());
            let _ = writeln!(out, "{name}_count {}", sketch.count());
        }
        out
    }
}

/// Escapes a label value per the Prometheus text exposition grammar:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// One-line `# HELP` text for a metric, by longest-known-prefix; the
/// fallback keeps the exposition self-describing for ad-hoc metrics.
fn help_text(name: &str) -> &'static str {
    const HELP: &[(&str, &str)] = &[
        (
            "mapreduce.task_seconds",
            "Simulated task durations in seconds, by phase",
        ),
        (
            "mapreduce.shuffle_fetch_seconds",
            "Simulated per-reduce-task shuffle fetch durations in seconds",
        ),
        (
            "mapreduce.peak_mem",
            "Peak resident bytes observed during real execution",
        ),
        (
            "skyline.kernel_comparisons",
            "Dominance comparisons per skyline kernel invocation",
        ),
        ("dominance", "Pairwise dominance tests"),
        ("kernel", "Skyline kernel instrumentation"),
    ];
    for (prefix, help) in HELP {
        if name.starts_with(prefix) {
            return help;
        }
    }
    "Metric recorded by the mrsky metrics registry"
}

/// Maps an internal metric name (dots and slashes allowed) onto the
/// Prometheus grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value sits at or below its bucket's upper bound.
        for v in [0u64, 1, 5, 100, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.incr("a", 5);
        reg.observe("h", 10);
        reg.gauge("g", 1.0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn enabled_registry_round_trips() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.incr("dominance.tests", 100);
        reg.incr("dominance.tests", 50);
        reg.observe("local.skyline", 7);
        reg.observe("local.skyline", 9);
        reg.gauge("partitions", 16.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("dominance.tests"), Some(&150));
        let hist = snap.histograms.get("local.skyline").unwrap();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 16);
        assert_eq!(snap.gauges.get("partitions"), Some(&16.0));
        reg.reset();
        assert!(reg.snapshot().counters.is_empty());
        assert!(reg.is_enabled(), "reset keeps the enabled flag");
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.gauge_max("peak", 10.0);
        reg.gauge_max("peak", 4.0);
        assert_eq!(reg.snapshot().gauges.get("peak"), Some(&10.0));
        reg.gauge_max("peak", 25.0);
        assert_eq!(reg.snapshot().gauges.get("peak"), Some(&25.0));
        // plain gauge() still overwrites unconditionally
        reg.gauge("peak", 1.0);
        assert_eq!(reg.snapshot().gauges.get("peak"), Some(&1.0));
    }

    #[test]
    fn counters_merge_across_threads_and_shards() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.set_enabled(true);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.incr("spread", 1);
                        reg.observe("obs", 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("spread"), Some(&8000));
        assert_eq!(snap.histograms.get("obs").unwrap().count(), 8000);
    }

    #[test]
    fn snapshot_merge_is_saturating() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), u64::MAX - 1);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 10);
        b.counters.insert("only_b".into(), 3);
        a.merge(&b);
        assert_eq!(a.counters.get("c"), Some(&u64::MAX));
        assert_eq!(a.counters.get("only_b"), Some(&3));

        // Empty merge is the identity.
        let before = a.clone();
        a.merge(&MetricsSnapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut h1 = Histogram::new();
        h1.record(0);
        h1.record(5);
        let mut h2 = Histogram::new();
        h2.record(5);
        h2.record(1 << 20);
        h1.merge(&h2);
        assert_eq!(h1.count(), 4);
        assert_eq!(h1.sum(), 10 + (1 << 20));
        assert_eq!(h1.buckets()[bucket_index(5)], 2);
        assert_eq!(h1.buckets()[0], 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.incr("skyline/bnl.calls", 2);
        reg.observe("cmp", 3);
        reg.observe("cmp", 900);
        reg.gauge("g.x", 2.5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE skyline_bnl_calls counter"));
        assert!(text.contains("skyline_bnl_calls 2"));
        assert!(text.contains("# TYPE g_x gauge"));
        assert!(text.contains("g_x 2.5"));
        assert!(text.contains("# TYPE cmp histogram"));
        assert!(text.contains("cmp_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("cmp_sum 903"));
        assert!(text.contains("cmp_count 2"));
        // Cumulative: the le="1023" bucket includes the le="3" one.
        assert!(text.contains("cmp_bucket{le=\"3\"} 1"));
        assert!(text.contains("cmp_bucket{le=\"1023\"} 2"));
    }

    #[test]
    fn sketches_record_and_merge_across_shards() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.set_enabled(true);
        // Spread a known uniform stream over 8 threads (hence several
        // shards); the snapshot folds all shard sketches together.
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        reg.observe_quantile("lat", (i * 8 + t) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        let sketch = snap.sketches.get("lat").expect("sketch present");
        assert_eq!(sketch.count(), 16_000);
        // Values are exactly 0..16000, so the p99 target rank is 15841;
        // allow the 0.01 reporting rank-error budget.
        let p99 = sketch.quantile(0.99).unwrap();
        assert!(
            (p99 - 15_840.0).abs() <= 160.0,
            "p99 = {p99}, expected ~15840 ± 160"
        );
    }

    #[test]
    fn disabled_registry_drops_quantile_observations() {
        let reg = MetricsRegistry::new();
        reg.observe_quantile("lat", 1.0);
        assert!(reg.snapshot().sketches.is_empty());
    }

    #[test]
    fn prometheus_summary_series_for_sketches() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        for i in 0..1000 {
            reg.observe_quantile("mapreduce.task_seconds.map", f64::from(i));
        }
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# HELP mapreduce_task_seconds_map Simulated task durations"));
        assert!(text.contains("# TYPE mapreduce_task_seconds_map summary"));
        assert!(text.contains("mapreduce_task_seconds_map{quantile=\"0.5\"}"));
        assert!(text.contains("mapreduce_task_seconds_map{quantile=\"0.999\"}"));
        assert!(text.contains("mapreduce_task_seconds_map_count 1000"));
    }

    #[test]
    fn prometheus_every_series_has_help_and_type() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(true);
        reg.incr("c", 1);
        reg.gauge("g", 1.0);
        reg.observe("h", 1);
        reg.observe_quantile("s", 1.0);
        let text = reg.snapshot().to_prometheus();
        let helps = text.lines().filter(|l| l.starts_with("# HELP ")).count();
        let types = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        assert_eq!(helps, 4, "one HELP per series family:\n{text}");
        assert_eq!(types, 4, "one TYPE per series family:\n{text}");
        // HELP must precede TYPE for each series.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.starts_with("# TYPE ") {
                assert!(
                    lines[i - 1].starts_with("# HELP "),
                    "TYPE without HELP: {line}"
                );
            }
        }
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn sanitize_rewrites_bad_chars() {
        assert_eq!(sanitize_metric_name("a.b/c-d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lead"), "_lead");
        assert_eq!(sanitize_metric_name(""), "_");
    }
}
