//! Minimal JSON reading and writing.
//!
//! The workspace's dependency budget has the `serde` shim but no real
//! serializer, so this module hand-rolls the JSON subset the trace
//! pipeline needs in both directions: objects, arrays, strings with
//! escaping, finite numbers, booleans and `null`. The writer is used by
//! the JSONL sink and the Chrome exporter; the parser replays JSONL files
//! and well-formed-ness-checks exported Chrome traces.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving member order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a member of an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that round-
    /// trips losslessly through `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
            _ => Err(self.err(&format!("invalid number `{text}`"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("3.5").unwrap(), JsonValue::Num(3.5));
        assert_eq!(parse("-17").unwrap(), JsonValue::Num(-17.0));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(
            parse("\"a\\nb\\\"c\\u0041\"").unwrap(),
            JsonValue::Str("a\nb\"cA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        let JsonValue::Arr(items) = v.get("a").unwrap() else {
            panic!("expected array");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].get("b").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\":}", "1 2", "tru", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn unicode_survives() {
        let v = parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
    }

    #[test]
    fn u64_extraction_guards_fractions_and_sign() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nquote\" back\\slash\ttab\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn number_formats_nonfinite_as_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(2.5), "2.5");
    }
}
