//! Property tests: every fitted partitioner is **total** (each point of the
//! domain maps to exactly one in-range partition id) and **disjoint**
//! (assignment is a function — deterministic, and consistent with the
//! partitioner's own published boundary lattice), on random bounds and
//! random points *including* exact boundary points.

use proptest::prelude::*;
use skyline_algos::hypersphere::{to_cartesian, HyperPoint};
use skyline_algos::partition::{
    AnglePartitioner, Bounds, DimPartitioner, GridPartitioner, PartitionSpace, RandomPartitioner,
    SpacePartitioner,
};
use skyline_algos::point::Point;

/// Random bounds: `d` in 2..=5, each axis `[lo, lo + width)` with
/// `width > 0`.
fn arb_bounds() -> impl Strategy<Value = Bounds> {
    (2usize..=5).prop_flat_map(|d| {
        (
            proptest::collection::vec(0.0f64..50.0, d),
            proptest::collection::vec(1.0f64..100.0, d),
        )
            .prop_map(|(lo, width)| {
                let max: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
                Bounds::new(lo, max)
            })
    })
}

/// Random interior points plus every boundary-lattice corner the profile
/// exposes: for each axis take its boundaries and domain edges, and build
/// points pinning one axis to each such value while the rest sit at random
/// interior positions.
fn probe_points(part: &dyn SpacePartitioner, bounds: &Bounds, interior: &[Vec<f64>]) -> Vec<Point> {
    let d = part.dim();
    let mut pts: Vec<Point> = interior
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let coords: Vec<f64> = (0..d)
                .map(|k| bounds.min(k) + f[k] * (bounds.max(k) - bounds.min(k)))
                .collect();
            Point::new(i as u64, coords)
        })
        .collect();

    let profile = part.boundary_profile();
    let mut id = interior.len() as u64;
    for axis in &profile.axes {
        let mut specials = axis.boundaries.clone();
        specials.push(axis.domain.0);
        specials.push(axis.domain.1);
        for &v in &specials {
            match profile.space {
                PartitionSpace::Cartesian => {
                    let mut coords: Vec<f64> = (0..d)
                        .map(|k| (bounds.min(k) + bounds.max(k)) / 2.0)
                        .collect();
                    coords[axis.coord] = v;
                    pts.push(Point::new(id, coords));
                    id += 1;
                }
                PartitionSpace::Angular => {
                    // Build the boundary point in angle space and map it back
                    // to Cartesian around the partitioner's origin.
                    let origin = profile
                        .origin
                        .clone()
                        .unwrap_or_else(|| (0..d).map(|k| bounds.min(k)).collect());
                    let angles: Vec<f64> = profile
                        .axes
                        .iter()
                        .map(|a| {
                            if a.coord == axis.coord {
                                v
                            } else {
                                (a.domain.0 + a.domain.1) / 2.0
                            }
                        })
                        .collect();
                    let h = HyperPoint {
                        id,
                        r: 25.0,
                        angles: angles.into_boxed_slice(),
                    };
                    let p = to_cartesian(&h);
                    let coords: Vec<f64> =
                        p.coords().iter().zip(&origin).map(|(c, o)| c + o).collect();
                    pts.push(Point::new(id, coords));
                    id += 1;
                }
                PartitionSpace::Opaque => {}
            }
        }
    }
    pts
}

fn assert_total_and_disjoint(part: &dyn SpacePartitioner, bounds: &Bounds, interior: &[Vec<f64>]) {
    let np = part.num_partitions();
    assert!(np >= 1, "{}: no partitions", part.name());
    for p in probe_points(part, bounds, interior) {
        let id = part.partition_of(&p);
        // Totality: every domain point (boundary points included) owns an
        // in-range id.
        assert!(
            id < np,
            "{}: point {:?} mapped to {id} of {np}",
            part.name(),
            p.coords()
        );
        // Disjointness: assignment is a function of the point — re-asking
        // never moves the point to another partition.
        assert_eq!(
            part.partition_of(&p),
            id,
            "{}: unstable assignment for {:?}",
            part.name(),
            p.coords()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_four_partitioners_are_total_and_disjoint(
        bounds in arb_bounds(),
        np in 1usize..24,
        fracs in proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, 5), 12),
    ) {
        let d = bounds.dim();
        let interior: Vec<Vec<f64>> = fracs.iter().map(|f| f[..d].to_vec()).collect();

        let dim = DimPartitioner::fit(&bounds, np).expect("dim fit");
        assert_total_and_disjoint(&dim, &bounds, &interior);

        let grid = GridPartitioner::fit(&bounds, np).expect("grid fit");
        assert_total_and_disjoint(&grid, &bounds, &interior);

        let angle = AnglePartitioner::fit(&bounds, np).expect("angle fit");
        assert_total_and_disjoint(&angle, &bounds, &interior);

        let random = RandomPartitioner::new(d, np).expect("random");
        assert_total_and_disjoint(&random, &bounds, &interior);
    }

    #[test]
    fn cartesian_assignment_matches_the_published_lattice(
        bounds in arb_bounds(),
        np in 1usize..24,
        fracs in proptest::collection::vec(0.01f64..=0.99, 5),
    ) {
        // For the dim scheme the partition id must equal the interval index
        // of the split coordinate in the published boundary list — the
        // right-closed convention the audit proves against.
        let dim = DimPartitioner::fit(&bounds, np).expect("dim fit");
        let profile = dim.boundary_profile();
        prop_assert_eq!(profile.axes.len(), 1);
        let axis = &profile.axes[0];
        let d = bounds.dim();
        for (i, f) in fracs.iter().enumerate() {
            let mut coords: Vec<f64> = (0..d)
                .map(|k| (bounds.min(k) + bounds.max(k)) / 2.0)
                .collect();
            coords[axis.coord] =
                axis.domain.0 + f * (axis.domain.1 - axis.domain.0);
            let p = Point::new(i as u64, coords);
            let expected = axis
                .boundaries
                .iter()
                .filter(|&&b| b <= p.coord(axis.coord))
                .count();
            prop_assert_eq!(dim.partition_of(&p), expected);
        }
    }
}
