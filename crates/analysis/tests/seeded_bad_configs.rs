//! Each seeded-bad configuration must trigger its documented diagnostic
//! code — the audit's regression suite against silent soundness rot.

use mini_mapreduce::{ClusterConfig, CostModel, SpeculationConfig};
use mrsky_audit::plan::{audit_plan, PlanSpec};
use mrsky_audit::{Code, Severity};
use skyline_algos::partition::{
    AxisProfile, BoundaryProfile, Bounds, GridPartitioner, PartitionSpace, SpacePartitioner,
};
use skyline_algos::point::Point;

/// A partitioner that claims 4 partitions but maps some points to id 7.
struct NotTotal;

impl SpacePartitioner for NotTotal {
    fn name(&self) -> &'static str {
        "bad-total"
    }
    fn dim(&self) -> usize {
        2
    }
    fn num_partitions(&self) -> usize {
        4
    }
    fn partition_of(&self, p: &Point) -> usize {
        if p.coord(0) > 50.0 {
            7
        } else {
            0
        }
    }
}

/// A partitioner publishing out-of-order boundaries.
struct BadBoundaries {
    boundaries: Vec<f64>,
    domain: (f64, f64),
    claimed: usize,
}

impl SpacePartitioner for BadBoundaries {
    fn name(&self) -> &'static str {
        "bad-bounds"
    }
    fn dim(&self) -> usize {
        2
    }
    fn num_partitions(&self) -> usize {
        self.claimed
    }
    fn partition_of(&self, p: &Point) -> usize {
        (self.boundaries.iter().filter(|&&b| b <= p.coord(0)).count()).min(self.claimed - 1)
    }
    fn boundary_profile(&self) -> BoundaryProfile {
        BoundaryProfile {
            scheme: self.name(),
            space: PartitionSpace::Cartesian,
            axes: vec![AxisProfile {
                coord: 0,
                domain: self.domain,
                boundaries: self.boundaries.clone(),
            }],
            origin: None,
        }
    }
}

/// Delegates to a sound grid fit but prunes cells it must not prune.
struct OverzealousPruner(GridPartitioner);

impl SpacePartitioner for OverzealousPruner {
    fn name(&self) -> &'static str {
        "bad-pruner"
    }
    fn dim(&self) -> usize {
        self.0.dim()
    }
    fn num_partitions(&self) -> usize {
        self.0.num_partitions()
    }
    fn partition_of(&self, p: &Point) -> usize {
        self.0.partition_of(p)
    }
    fn prunable(&self, counts: &[usize]) -> Vec<bool> {
        // Prune the origin cell — the one cell that can never be dominated.
        let mut mask = vec![false; counts.len()];
        if let Some(m) = mask.first_mut() {
            *m = true;
        }
        mask
    }
    fn boundary_profile(&self) -> BoundaryProfile {
        self.0.boundary_profile()
    }
}

fn spec_for<'a>(
    part: &'a dyn SpacePartitioner,
    bounds: &'a Bounds,
    cluster: &'a ClusterConfig,
    speculation: &'a SpeculationConfig,
    cost: &'a CostModel,
) -> PlanSpec<'a> {
    PlanSpec {
        partitioner: part,
        bounds,
        cluster,
        speculation,
        cost,
        reducers_job1: part.num_partitions(),
        grid_pruning: false,
        filter_k: 0,
        sector_prune: false,
        threads: 2,
    }
}

struct Fixture {
    bounds: Bounds,
    cluster: ClusterConfig,
    speculation: SpeculationConfig,
    cost: CostModel,
}

impl Fixture {
    fn new() -> Self {
        Self {
            bounds: Bounds::zero_to(100.0, 2),
            cluster: ClusterConfig::new(4),
            speculation: SpeculationConfig::default(),
            cost: CostModel::default(),
        }
    }
}

fn assert_error_code(report: &mrsky_audit::AuditReport, code: Code) {
    let hits = report.with_code(code);
    assert!(
        !hits.is_empty(),
        "expected {code} in:\n{}",
        report.render_text()
    );
    assert!(
        hits.iter().any(|d| d.severity == Severity::Error),
        "{code} should be error-level:\n{}",
        report.render_text()
    );
}

#[test]
fn non_total_partitioner_triggers_mra001() {
    let f = Fixture::new();
    let part = NotTotal;
    let report = audit_plan(&spec_for(
        &part,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::PartitionNotTotal);
}

#[test]
fn decreasing_boundaries_trigger_mra003() {
    let f = Fixture::new();
    let part = BadBoundaries {
        boundaries: vec![60.0, 30.0, 80.0],
        domain: (0.0, 100.0),
        claimed: 4,
    };
    let report = audit_plan(&spec_for(
        &part,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::NonMonotonicBoundaries);
}

#[test]
fn out_of_domain_boundary_triggers_mra004() {
    let f = Fixture::new();
    let part = BadBoundaries {
        boundaries: vec![50.0, 130.0],
        domain: (0.0, 100.0),
        claimed: 3,
    };
    let report = audit_plan(&spec_for(
        &part,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::BoundaryOutsideDomain);
}

#[test]
fn lattice_partition_count_mismatch_triggers_mra005() {
    let f = Fixture::new();
    // 3 boundaries → 4 lattice cells, but the partitioner claims 9.
    let part = BadBoundaries {
        boundaries: vec![25.0, 50.0, 75.0],
        domain: (0.0, 100.0),
        claimed: 9,
    };
    let report = audit_plan(&spec_for(
        &part,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::IndexOverflow);
}

#[test]
fn unsound_pruning_triggers_mra006() {
    let f = Fixture::new();
    let grid = GridPartitioner::fit(&f.bounds, 4).expect("grid fit");
    let part = OverzealousPruner(grid);
    let mut spec = spec_for(&part, &f.bounds, &f.cluster, &f.speculation, &f.cost);
    spec.grid_pruning = true;
    let report = audit_plan(&spec);
    assert_error_code(&report, Code::UnsoundPruning);
}

#[test]
fn zero_reducers_trigger_mra007() {
    let f = Fixture::new();
    let grid = GridPartitioner::fit(&f.bounds, 4).expect("grid fit");
    let mut spec = spec_for(&grid, &f.bounds, &f.cluster, &f.speculation, &f.cost);
    spec.reducers_job1 = 0;
    let report = audit_plan(&spec);
    assert_error_code(&report, Code::ReducerMismatch);
}

#[test]
fn zero_slot_cluster_triggers_mra008() {
    let mut f = Fixture::new();
    f.cluster.map_slots_per_server = 0;
    let grid = GridPartitioner::fit(&f.bounds, 4).expect("grid fit");
    let report = audit_plan(&spec_for(
        &grid,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::ZeroCapacityCluster);
}

#[test]
fn bad_speculation_threshold_triggers_mra008() {
    let mut f = Fixture::new();
    f.speculation.enabled = true;
    f.speculation.threshold = 0.25;
    let grid = GridPartitioner::fit(&f.bounds, 4).expect("grid fit");
    let report = audit_plan(&spec_for(
        &grid,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::ZeroCapacityCluster);
}

#[test]
fn negative_cost_triggers_mra008() {
    let mut f = Fixture::new();
    f.cost.work_unit_cost = -1.0;
    let grid = GridPartitioner::fit(&f.bounds, 4).expect("grid fit");
    let report = audit_plan(&spec_for(
        &grid,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert_error_code(&report, Code::ZeroCapacityCluster);
}

#[test]
fn duplicate_boundaries_warn_mra010_without_blocking() {
    let f = Fixture::new();
    let part = BadBoundaries {
        boundaries: vec![50.0, 50.0, 75.0],
        domain: (0.0, 100.0),
        claimed: 4,
    };
    let report = audit_plan(&spec_for(
        &part,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    let hits = report.with_code(Code::DegenerateAxis);
    assert!(
        !hits.is_empty(),
        "expected MRA010:\n{}",
        report.render_text()
    );
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn excess_partitions_warn_mra011() {
    let f = Fixture::new();
    // 256 partitions against 4 servers × 2 reduce slots = 32 waves.
    let grid = GridPartitioner::fit(&f.bounds, 256).expect("grid fit");
    let report = audit_plan(&spec_for(
        &grid,
        &f.bounds,
        &f.cluster,
        &f.speculation,
        &f.cost,
    ));
    assert!(
        !report.with_code(Code::ExcessPartitionWaves).is_empty(),
        "expected MRA011:\n{}",
        report.render_text()
    );
}
