//! The workspace lint pass (`mrsky-audit lint`).
//!
//! Scans non-test library source for patterns this workspace bans:
//!
//! | rule | pattern | why |
//! |---|---|---|
//! | `no-unwrap` | `.unwrap()` | library code must surface `Result`s, not abort the simulation |
//! | `no-expect` | `.expect(` | same as `no-unwrap`; the message does not make the abort acceptable |
//! | `no-panic` | `panic!(` | explicit aborts belong in binaries and tests only |
//! | `lossy-index-cast` | `as usize` inside `[...]` index arithmetic | silently truncates on 32-bit targets and hides overflow |
//! | `hashmap-state` | `HashMap` in `mini-mapreduce`/`mr-skyline` | iteration order is non-deterministic; reduce/merge paths must use `BTreeMap` |
//!
//! Lines inside `#[cfg(test)]` modules are exempt (tests may assert
//! freely). Existing debt is recorded in an allowlist file
//! (`lint-baseline.txt` at the workspace root) mapping `rule file count`;
//! a file may never *exceed* its allowance, and when it drops below, the
//! pass asks for the allowance to be ratcheted down so the debt cannot
//! grow back.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One banned-pattern occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub excerpt: String,
}

/// Outcome of a lint run after applying the allowlist.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings in files that exceeded their allowance (or have none).
    pub violations: Vec<LintFinding>,
    /// `(rule, file, found, allowed)` where found < allowed: the baseline
    /// should be ratcheted down to `found`.
    pub ratchet: Vec<(String, String, usize, usize)>,
    /// Allowlist entries whose file/rule produced no findings at all.
    pub stale_allowances: Vec<(String, String)>,
    /// Every finding, pre-allowlist — used to regenerate the baseline.
    pub all_findings: Vec<LintFinding>,
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when the pass should fail CI.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human rendering of violations and ratchet advice.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint: {} file(s) scanned, {} finding(s), {} violation(s)",
            self.files_scanned,
            self.all_findings.len(),
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(
                out,
                "  violation[{}] {}:{}: {}",
                v.rule, v.file, v.line, v.excerpt
            );
        }
        for (rule, file, found, allowed) in &self.ratchet {
            let _ = writeln!(
                out,
                "  ratchet[{rule}] {file}: {found} finding(s) < {allowed} allowed — \
                 lower the baseline to {found}"
            );
        }
        for (rule, file) in &self.stale_allowances {
            let _ = writeln!(
                out,
                "  stale allowance [{rule}] {file}: no findings — remove it"
            );
        }
        out
    }

    /// Regenerates the baseline file content from the current findings.
    pub fn baseline(&self) -> String {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
        for f in &self.all_findings {
            *counts.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# mrsky-audit lint baseline: `rule file max-count` per line.\n\
             # Counts may only go DOWN. Regenerate with `mrsky-audit lint --print-baseline`.\n",
        );
        for ((file, rule), n) in counts {
            let _ = writeln!(out, "{rule} {file} {n}");
        }
        out
    }
}

/// Settings for one lint run.
pub struct LintConfig {
    /// Workspace root to scan (`crates/*/src` and `src/` below it).
    pub root: PathBuf,
    /// Allowlist file; missing file means zero allowances.
    pub allowlist: Option<PathBuf>,
}

/// Runs the lint pass.
pub fn run_lint(config: &LintConfig) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut files = Vec::new();
    let crates_dir = config.root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    let root_src = config.root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }
    files.sort();

    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(&config.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scan_file(&rel, &text, &mut report.all_findings);
        report.files_scanned += 1;
    }

    apply_allowlist(config, &mut report)?;
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Strips string literals, char literals with escapes, and comments from a
/// line so pattern matching cannot fire inside them. Block-comment state
/// carries across lines via `in_block_comment`.
fn sanitize(line: &str, in_block_comment: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // String literal: skip to the closing quote, honouring \".
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str("\"\"");
            }
            b'\'' if i + 2 < bytes.len() && bytes[i + 1] == b'\\' => {
                // Escaped char literal like '\n'.
                i += 2;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                i += 1;
                out.push_str("' '");
            }
            b'\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => {
                // Plain char literal like '{' — three bytes exactly.
                out.push_str("' '");
                i += 3;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

fn scan_file(rel: &str, text: &str, findings: &mut Vec<LintFinding>) {
    let mut in_block_comment = false;
    // Depth of the brace nesting; when a `#[cfg(test)]` attribute is seen,
    // the next opening brace starts an exempt region that ends when depth
    // returns to its pre-region value.
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    let mut test_region_floor: Option<i64> = None;

    for (ln, raw) in text.lines().enumerate() {
        let line = sanitize(raw, &mut in_block_comment);
        let trimmed = line.trim();

        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[cfg(all(test") {
            pending_test_attr = true;
        }

        let in_test = test_region_floor.is_some();
        if !in_test {
            check_line(rel, ln + 1, &line, raw, findings);
        }

        for c in line.chars() {
            match c {
                '{' => {
                    if pending_test_attr && test_region_floor.is_none() {
                        test_region_floor = Some(depth);
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_region_floor == Some(depth) {
                        test_region_floor = None;
                    }
                }
                _ => {}
            }
        }
        // An attribute that never reached a brace on a later line (e.g.
        // `#[cfg(test)] use ...;`) stays pending only until an item ends.
        if pending_test_attr && trimmed.ends_with(';') {
            pending_test_attr = false;
        }
    }
}

fn check_line(rel: &str, line_no: usize, line: &str, raw: &str, findings: &mut Vec<LintFinding>) {
    let mut push = |rule: &'static str| {
        findings.push(LintFinding {
            rule,
            file: rel.to_string(),
            line: line_no,
            excerpt: raw.trim().chars().take(90).collect(),
        });
    };
    if line.contains(".unwrap()") {
        push("no-unwrap");
    }
    if line.contains(".expect(") {
        push("no-expect");
    }
    if line.contains("panic!(") && !line.contains("should_panic") {
        push("no-panic");
    }
    if has_cast_inside_index(line) {
        push("lossy-index-cast");
    }
    if line.contains("HashMap")
        && (rel.starts_with("crates/mapreduce/") || rel.starts_with("crates/core/"))
    {
        push("hashmap-state");
    }
}

/// `true` if an `as usize`/`as isize` cast occurs while inside `[...]` on
/// this line — index arithmetic that silently truncates.
fn has_cast_inside_index(line: &str) -> bool {
    let mut bracket_depth = 0i32;
    let bytes = line.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'[' => bracket_depth += 1,
            b']' => bracket_depth -= 1,
            b'a' if bracket_depth > 0 => {
                let rest = &line[i..];
                if (rest.starts_with("as usize") || rest.starts_with("as isize"))
                    && (i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'(')
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn apply_allowlist(config: &LintConfig, report: &mut LintReport) -> io::Result<()> {
    use std::collections::BTreeMap;

    let mut allowed: BTreeMap<(String, String), usize> = BTreeMap::new();
    if let Some(path) = &config.allowlist {
        if path.is_file() {
            for raw in fs::read_to_string(path)?.lines() {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut parts = line.split_whitespace();
                let (Some(rule), Some(file), Some(count)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                if let Ok(n) = count.parse::<usize>() {
                    allowed.insert((rule.to_string(), file.to_string()), n);
                }
            }
        }
    }

    let mut counts: BTreeMap<(String, String), Vec<&LintFinding>> = BTreeMap::new();
    for f in &report.all_findings {
        counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }

    let mut violations = Vec::new();
    let mut ratchet = Vec::new();
    for ((rule, file), found) in &counts {
        let cap = allowed.remove(&(rule.clone(), file.clone())).unwrap_or(0);
        match found.len().cmp(&cap) {
            std::cmp::Ordering::Greater => {
                violations.extend(found.iter().map(|f| (*f).clone()));
            }
            std::cmp::Ordering::Less => {
                ratchet.push((rule.clone(), file.clone(), found.len(), cap));
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    report.stale_allowances = allowed.into_keys().collect();
    report.violations = violations;
    report.ratchet = ratchet;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_strips_strings_and_comments() {
        let mut blk = false;
        assert_eq!(sanitize("let x = 1; // .unwrap()", &mut blk), "let x = 1; ");
        assert_eq!(
            sanitize("let s = \".unwrap()\";", &mut blk),
            "let s = \"\";"
        );
        assert!(!blk);
        let s = sanitize("a /* .unwrap()", &mut blk);
        assert_eq!(s, "a ");
        assert!(blk);
        let s = sanitize(".unwrap() */ b", &mut blk);
        assert_eq!(s, " b");
        assert!(!blk);
        assert_eq!(sanitize("m['{'] = 1;", &mut blk), "m[' '] = 1;");
    }

    #[test]
    fn finds_banned_patterns_outside_tests_only() {
        let src = "\
fn lib() {
    let v = maybe().unwrap();
    let w = maybe().expect(\"why\");
    panic!(\"boom\");
}
#[cfg(test)]
mod tests {
    fn t() {
        let v = maybe().unwrap();
        panic!(\"fine in tests\");
    }
}
fn after_tests() {
    let z = maybe().unwrap();
}
";
        let mut findings = Vec::new();
        scan_file("crates/x/src/lib.rs", src, &mut findings);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec!["no-unwrap", "no-expect", "no-panic", "no-unwrap"]
        );
        assert_eq!(findings[3].line, 14);
    }

    #[test]
    fn index_cast_detection() {
        assert!(has_cast_inside_index("let x = arr[i as usize];"));
        assert!(has_cast_inside_index("buf[(k * 2) as usize] = 0;"));
        assert!(!has_cast_inside_index("let x = i as usize;"));
        assert!(!has_cast_inside_index("let y = arr[i];"));
    }

    #[test]
    fn hashmap_rule_scopes_to_runtime_crates() {
        let mut findings = Vec::new();
        scan_file(
            "crates/mapreduce/src/x.rs",
            "use std::collections::HashMap;\n",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hashmap-state");
        findings.clear();
        scan_file(
            "crates/skyline/src/x.rs",
            "use std::collections::HashMap;\n",
            &mut findings,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn allowlist_ratchets_down() {
        let dir = std::env::temp_dir().join("mrsky-audit-lint-test");
        let src_dir = dir.join("crates/demo/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(src_dir.join("lib.rs"), "fn f() { g().unwrap(); }\n").unwrap();
        let allow = dir.join("baseline.txt");

        // No allowlist: the unwrap is a violation.
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: None,
        })
        .unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(!report.is_clean());

        // Exact allowance: clean.
        fs::write(&allow, "no-unwrap crates/demo/src/lib.rs 1\n").unwrap();
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(allow.clone()),
        })
        .unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(report.ratchet.is_empty());

        // Over-generous allowance: clean but asks to ratchet down.
        fs::write(&allow, "no-unwrap crates/demo/src/lib.rs 5\n").unwrap();
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(allow.clone()),
        })
        .unwrap();
        assert!(report.is_clean());
        assert_eq!(report.ratchet.len(), 1);
        assert_eq!(report.ratchet[0].2, 1);
        assert_eq!(report.ratchet[0].3, 5);

        // Stale entry for a file with no findings.
        fs::write(
            &allow,
            "no-unwrap crates/demo/src/lib.rs 1\nno-panic crates/demo/src/gone.rs 2\n",
        )
        .unwrap();
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(allow),
        })
        .unwrap();
        assert!(report.is_clean());
        assert_eq!(report.stale_allowances.len(), 1);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_output_round_trips() {
        let report = LintReport {
            all_findings: vec![
                LintFinding {
                    rule: "no-unwrap",
                    file: "a.rs".into(),
                    line: 1,
                    excerpt: String::new(),
                },
                LintFinding {
                    rule: "no-unwrap",
                    file: "a.rs".into(),
                    line: 9,
                    excerpt: String::new(),
                },
                LintFinding {
                    rule: "no-panic",
                    file: "b.rs".into(),
                    line: 3,
                    excerpt: String::new(),
                },
            ],
            ..LintReport::default()
        };
        let base = report.baseline();
        assert!(base.contains("no-unwrap a.rs 2"));
        assert!(base.contains("no-panic b.rs 1"));
    }
}
