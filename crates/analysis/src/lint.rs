//! The workspace lint pass (`mrsky-audit lint`).
//!
//! Rules match *token sequences* from [`crate::lexer`], never raw text,
//! so a banned pattern inside a string literal, raw string, char
//! literal, or comment can never fire. Comments are still lexed —
//! they are where `SAFETY:` and `ORDERING:` justifications live.
//!
//! | rule | pattern | why |
//! |---|---|---|
//! | `no-unwrap` | `.unwrap()` | library code must surface `Result`s, not abort the simulation |
//! | `no-expect` | `.expect(` | same as `no-unwrap`; the message does not make the abort acceptable |
//! | `no-panic` | `panic!(` | explicit aborts belong in binaries and tests only |
//! | `lossy-index-cast` | `as usize` inside `[...]` index arithmetic | silently truncates on 32-bit targets and hides overflow |
//! | `hashmap-state` | `HashMap` in `mini-mapreduce`/`mr-skyline` | iteration order is non-deterministic; reduce/merge paths must use `BTreeMap` |
//! | `unsafe-needs-safety-comment` | `unsafe` without a `SAFETY:` comment nearby | every unsafe block must say why it is sound |
//! | `no-wall-clock` | `Instant::now` / `SystemTime::now` in runtime crates | timestamps must come from an injected [`EpochClock`](../trace) so runs replay deterministically |
//! | `relaxed-ordering-audit` | `Ordering::Relaxed` outside a pure counter | needs an `// ORDERING:` comment justifying why relaxed is enough |
//! | `raw-sync-primitive` | `std::sync` primitives in facaded crates | the four model-checked crates must go through `mrsky_model::sync` |
//! | `bounded-channel-only` | `mpsc::channel(` / `unbounded(` / `SegQueue` on request-path crates | an unbounded queue turns overload into unbounded memory growth; the serving path must shed with a typed `Overloaded` rejection instead |
//!
//! Tokens inside `#[cfg(test)]` regions are exempt (tests may assert
//! freely). Existing debt is recorded in an allowlist file
//! (`lint-baseline.txt` at the workspace root) mapping `rule file count`;
//! a file may never *exceed* its allowance, and when it drops below, the
//! pass asks for the allowance to be ratcheted down so the debt cannot
//! grow back. With `--enforce-ratchet` (on in CI), an un-ratcheted or
//! stale allowance fails the run outright.

use crate::lexer::{tokenize, Token, TokenKind};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One banned-pattern occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub excerpt: String,
}

/// Outcome of a lint run after applying the allowlist.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings in files that exceeded their allowance (or have none).
    pub violations: Vec<LintFinding>,
    /// `(rule, file, found, allowed)` where found < allowed: the baseline
    /// should be ratcheted down to `found`.
    pub ratchet: Vec<(String, String, usize, usize)>,
    /// Allowlist entries whose file/rule produced no findings at all.
    pub stale_allowances: Vec<(String, String)>,
    /// Every finding, pre-allowlist — used to regenerate the baseline.
    pub all_findings: Vec<LintFinding>,
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when there are no violations. Ratchet advice and stale
    /// allowances do NOT fail this check — use [`Self::is_clean_strict`]
    /// (the CI mode) for that.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` only when there are no violations, no over-generous
    /// allowances waiting to be ratcheted down, and no stale allowlist
    /// entries. This is what `--enforce-ratchet` checks: debt may never
    /// silently grow back into the slack of an old allowance.
    pub fn is_clean_strict(&self) -> bool {
        self.violations.is_empty() && self.ratchet.is_empty() && self.stale_allowances.is_empty()
    }

    /// Human rendering of violations and ratchet advice.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint: {} file(s) scanned, {} finding(s), {} violation(s)",
            self.files_scanned,
            self.all_findings.len(),
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(
                out,
                "  violation[{}] {}:{}: {}",
                v.rule, v.file, v.line, v.excerpt
            );
        }
        for (rule, file, found, allowed) in &self.ratchet {
            let _ = writeln!(
                out,
                "  ratchet[{rule}] {file}: {found} finding(s) < {allowed} allowed — \
                 lower the baseline to {found}"
            );
        }
        for (rule, file) in &self.stale_allowances {
            let _ = writeln!(
                out,
                "  stale allowance [{rule}] {file}: no findings — remove it"
            );
        }
        out
    }

    /// Regenerates the baseline file content from the current findings.
    pub fn baseline(&self) -> String {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
        for f in &self.all_findings {
            *counts.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# mrsky-audit lint baseline: `rule file max-count` per line.\n\
             # Counts may only go DOWN. Regenerate with `mrsky-audit lint --print-baseline`.\n",
        );
        for ((file, rule), n) in counts {
            let _ = writeln!(out, "{rule} {file} {n}");
        }
        out
    }
}

/// Settings for one lint run.
pub struct LintConfig {
    /// Workspace root to scan (`crates/*/src` and `src/` below it).
    pub root: PathBuf,
    /// Allowlist file. `Some(path)` that does not exist is an error —
    /// a missing baseline must fail loudly, not silently allow nothing
    /// (or worse, silently pass a `--enforce-ratchet` run). `None`
    /// means "no allowances", used by `--print-baseline` regeneration.
    pub allowlist: Option<PathBuf>,
}

/// Runs the lint pass.
pub fn run_lint(config: &LintConfig) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut files = Vec::new();
    let crates_dir = config.root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    let root_src = config.root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }
    files.sort();

    for path in &files {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(&config.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scan_file(&rel, &text, &mut report.all_findings);
        report.files_scanned += 1;
    }

    apply_allowlist(config, &mut report)?;
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crates whose runtime sources may never read the wall clock: their
/// timestamps must flow through an injected `EpochClock`, so simulated
/// runs replay bit-identically. The CLI binary (root `src/`) is the
/// outermost real-time consumer and stays out of scope, as do the
/// bench/analysis tools.
const WALL_CLOCK_SCOPE: &[&str] = &[
    "crates/trace/",
    "crates/mapreduce/",
    "crates/skyline/",
    "crates/chaos/",
    "crates/core/",
    "crates/qws/",
    "crates/model/",
    "crates/serve/",
];

/// The four crates refactored onto the `mrsky_model::sync` facade: any
/// direct `std::sync` primitive here silently escapes the model
/// checker's schedule control.
const RAW_SYNC_SCOPE: &[&str] = &[
    "crates/trace/",
    "crates/mapreduce/",
    "crates/skyline/",
    "crates/chaos/",
    "crates/serve/",
];

/// Crates on the serving/request path: every queue here must be
/// bounded, because an unbounded channel converts overload into
/// unbounded memory growth instead of a typed `Overloaded` rejection
/// (admission control can only shed what it can count).
const REQUEST_PATH_SCOPE: &[&str] = &["crates/serve/", "crates/mapreduce/"];

/// `std::sync` leaves that carry no scheduling behavior of their own
/// and are fine to use directly even in facaded crates.
const ALLOWED_SYNC_LEAVES: &[&str] = &["Arc", "Weak", "OnceLock", "LazyLock"];

/// `Ordering::Relaxed` is exempt when it parameterizes a pure counter
/// bump on the same line (`fetch_add`/`fetch_sub`) — the canonical
/// can't-go-wrong use — otherwise it needs a justification comment.
const COUNTER_OPS: &[&str] = &["fetch_add", "fetch_sub"];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_LOOKBACK_LINES: usize = 6;
/// How many lines above `Ordering::Relaxed` an `ORDERING:` comment may sit.
const ORDERING_LOOKBACK_LINES: usize = 3;

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

/// Scans one file's token stream, appending findings.
fn scan_file(rel: &str, text: &str, findings: &mut Vec<LintFinding>) {
    let tokens = tokenize(text);
    // Indices of non-comment tokens: rules match sequences over these,
    // while comment tokens stay addressable for justification lookups.
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_comment())
        .map(|(i, _)| i)
        .collect();
    let lines: Vec<&str> = text.lines().collect();

    let mut scan = FileScan {
        rel,
        tokens: &tokens,
        code: &code,
        lines: &lines,
        findings,
    };
    scan.walk();
}

struct FileScan<'a, 'src> {
    rel: &'a str,
    tokens: &'a [Token<'src>],
    /// Indices into `tokens` of the non-comment tokens.
    code: &'a [usize],
    lines: &'a [&'src str],
    findings: &'a mut Vec<LintFinding>,
}

impl FileScan<'_, '_> {
    /// The `k`-th code token after position `j` (0 = the token at `j`).
    fn at(&self, j: usize, k: usize) -> Option<&Token<'_>> {
        self.code.get(j + k).map(|&i| &self.tokens[i])
    }

    fn is_punct(&self, j: usize, k: usize, text: &str) -> bool {
        self.at(j, k)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
    }

    fn is_ident(&self, j: usize, k: usize, text: &str) -> bool {
        self.at(j, k)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    /// `::` as two `:` puncts.
    fn is_path_sep(&self, j: usize, k: usize) -> bool {
        self.is_punct(j, k, ":") && self.is_punct(j, k + 1, ":")
    }

    fn push(&mut self, rule: &'static str, line: usize) {
        let excerpt = self
            .lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim_end_matches('\r').trim().chars().take(90).collect())
            .unwrap_or_default();
        self.findings.push(LintFinding {
            rule,
            file: self.rel.to_string(),
            line,
            excerpt,
        });
    }

    /// `true` if any comment containing `needle` appears on lines
    /// `[line - back, line]` — justification comments may sit a few
    /// lines above the code they justify, or trail it on the same line.
    fn comment_near(&self, line: usize, back: usize, needle: &str) -> bool {
        let lo = line.saturating_sub(back);
        self.tokens.iter().any(|t| {
            t.kind.is_comment() && t.line >= lo && t.line <= line && t.text.contains(needle)
        })
    }

    /// `true` if a code ident in `names` appears on exactly `line`.
    fn ident_on_line(&self, line: usize, names: &[&str]) -> bool {
        self.code.iter().any(|&i| {
            let t = &self.tokens[i];
            t.line == line && t.kind == TokenKind::Ident && names.contains(&t.text)
        })
    }

    fn walk(&mut self) {
        let mut depth: i64 = 0;
        let mut sq_depth: i64 = 0;
        // A `#[cfg(test)]` attribute exempts tokens up to the end of the
        // item it decorates: through the matching `}` of the block it
        // opens, or through the `;` of a block-less item.
        let mut pending_test_attr = false;
        let mut test_region_floor: Option<i64> = None;

        let mut j = 0;
        while j < self.code.len() {
            // Attributes are skipped wholesale: their brackets must not
            // count toward index depth, and nothing inside one is a
            // runtime pattern. `#[cfg(test)]`-style attributes arm the
            // test exemption, however many lines they span.
            if self.is_punct(j, 0, "#") {
                let bracket_at = if self.is_punct(j, 1, "[") {
                    Some(1)
                } else if self.is_punct(j, 1, "!") && self.is_punct(j, 2, "[") {
                    Some(2)
                } else {
                    None
                };
                if let Some(off) = bracket_at {
                    let (end, is_test) = self.scan_attribute(j + off);
                    if is_test {
                        pending_test_attr = true;
                    }
                    j = end + 1;
                    continue;
                }
            }

            let in_test = test_region_floor.is_some() || pending_test_attr;
            if !in_test {
                self.rules_at(j, sq_depth);
            }

            if let Some(t) = self.at(j, 0) {
                if t.kind == TokenKind::Punct {
                    match t.text {
                        "{" => {
                            if pending_test_attr && test_region_floor.is_none() {
                                test_region_floor = Some(depth);
                                pending_test_attr = false;
                            }
                            depth += 1;
                        }
                        "}" => {
                            depth -= 1;
                            if test_region_floor == Some(depth) {
                                test_region_floor = None;
                            }
                        }
                        "[" => sq_depth += 1,
                        "]" => sq_depth -= 1,
                        ";" if test_region_floor.is_none() => pending_test_attr = false,
                        _ => {}
                    }
                }
            }
            j += 1;
        }
    }

    /// Scans a balanced `[...]` attribute starting at code position
    /// `open` (the `[`). Returns the position of the closing `]` and
    /// whether the attribute is a test gate — it mentions `cfg` and
    /// `test` without `not`, covering `#[cfg(test)]` and
    /// `#[cfg(all(test, ...))]` but not `#[cfg(not(test))]`.
    fn scan_attribute(&self, open: usize) -> (usize, bool) {
        let mut bd = 0i64;
        let (mut saw_cfg, mut saw_test, mut saw_not) = (false, false, false);
        let mut m = open;
        while m < self.code.len() {
            let t = &self.tokens[self.code[m]];
            match (t.kind, t.text) {
                (TokenKind::Punct, "[") => bd += 1,
                (TokenKind::Punct, "]") => {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                (TokenKind::Ident, "cfg") => saw_cfg = true,
                (TokenKind::Ident, "test") => saw_test = true,
                (TokenKind::Ident, "not") => saw_not = true,
                _ => {}
            }
            m += 1;
        }
        (m, saw_cfg && saw_test && !saw_not)
    }

    /// Applies every rule anchored at code position `j`.
    fn rules_at(&mut self, j: usize, sq_depth: i64) {
        let Some(t) = self.at(j, 0) else { return };
        let (kind, text, line) = (t.kind, t.text, t.line);

        if kind == TokenKind::Punct && text == "." {
            if self.is_ident(j, 1, "unwrap") && self.is_punct(j, 2, "(") {
                self.push("no-unwrap", line);
            } else if self.is_ident(j, 1, "expect") && self.is_punct(j, 2, "(") {
                self.push("no-expect", line);
            }
            return;
        }
        if kind != TokenKind::Ident {
            return;
        }
        match text {
            "panic" if self.is_punct(j, 1, "!") => self.push("no-panic", line),
            "as" if sq_depth > 0
                && (self.is_ident(j, 1, "usize") || self.is_ident(j, 1, "isize")) =>
            {
                self.push("lossy-index-cast", line);
            }
            "HashMap"
                if self.rel.starts_with("crates/mapreduce/")
                    || self.rel.starts_with("crates/core/") =>
            {
                self.push("hashmap-state", line);
            }
            "Instant" | "SystemTime"
                if in_scope(self.rel, WALL_CLOCK_SCOPE)
                    && self.is_path_sep(j, 1)
                    && self.is_ident(j, 3, "now") =>
            {
                self.push("no-wall-clock", line);
            }
            "unsafe" if !self.comment_near(line, SAFETY_LOOKBACK_LINES, "SAFETY:") => {
                self.push("unsafe-needs-safety-comment", line);
            }
            "Ordering" if self.is_path_sep(j, 1) && self.is_ident(j, 3, "Relaxed") => {
                let pure_counter = self.ident_on_line(line, COUNTER_OPS);
                let justified = self.comment_near(line, ORDERING_LOOKBACK_LINES, "ORDERING:");
                if !pure_counter && !justified {
                    self.push("relaxed-ordering-audit", line);
                }
            }
            "std"
                if in_scope(self.rel, RAW_SYNC_SCOPE)
                    && self.is_path_sep(j, 1)
                    && self.is_ident(j, 3, "sync")
                    && self.is_path_sep(j, 4) =>
            {
                self.raw_sync_at(j + 6);
            }
            "parking_lot" | "crossbeam" if in_scope(self.rel, RAW_SYNC_SCOPE) => {
                self.push("raw-sync-primitive", line);
            }
            // `mpsc::channel(...)` is the unbounded constructor;
            // `mpsc::sync_channel(cap)` is the bounded one and passes.
            "mpsc"
                if in_scope(self.rel, REQUEST_PATH_SCOPE)
                    && self.is_path_sep(j, 1)
                    && self.is_ident(j, 3, "channel")
                    && self.is_punct(j, 4, "(") =>
            {
                self.push("bounded-channel-only", line);
            }
            // Unbounded constructors by any path: crossbeam_channel's
            // `unbounded()`, tokio-style `unbounded_channel()`, and the
            // lock-free unbounded `SegQueue`.
            "unbounded" | "unbounded_channel"
                if in_scope(self.rel, REQUEST_PATH_SCOPE) && self.is_punct(j, 1, "(") =>
            {
                self.push("bounded-channel-only", line);
            }
            "SegQueue" if in_scope(self.rel, REQUEST_PATH_SCOPE) => {
                self.push("bounded-channel-only", line);
            }
            _ => {}
        }
    }

    /// Flags disallowed segments after `std::sync::` at code position
    /// `j`: a bare segment (`std::sync::Mutex`, `std::sync::atomic`) or
    /// the first-level segments of a brace group
    /// (`std::sync::{Arc, Mutex}` flags `Mutex` only).
    fn raw_sync_at(&mut self, j: usize) {
        let Some(t) = self.at(j, 0) else { return };
        if t.kind == TokenKind::Ident {
            if !ALLOWED_SYNC_LEAVES.contains(&t.text) {
                self.push("raw-sync-primitive", t.line);
            }
            return;
        }
        if !(t.kind == TokenKind::Punct && t.text == "{") {
            return;
        }
        let mut bd = 0i64;
        let mut k = j;
        let mut segment_head = false;
        while let Some(t) = self.at(k, 0) {
            match (t.kind, t.text) {
                (TokenKind::Punct, "{") => {
                    bd += 1;
                    segment_head = bd == 1;
                }
                (TokenKind::Punct, "}") => {
                    bd -= 1;
                    if bd == 0 {
                        return;
                    }
                }
                (TokenKind::Punct, ",") => segment_head = bd == 1,
                (TokenKind::Ident, name) if segment_head => {
                    segment_head = false;
                    if name != "self" && !ALLOWED_SYNC_LEAVES.contains(&name) {
                        self.push("raw-sync-primitive", t.line);
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
}

fn apply_allowlist(config: &LintConfig, report: &mut LintReport) -> io::Result<()> {
    use std::collections::BTreeMap;

    let mut allowed: BTreeMap<(String, String), usize> = BTreeMap::new();
    if let Some(path) = &config.allowlist {
        if !path.is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "allowlist {} does not exist — a missing baseline must fail, \
                     not silently allow nothing; regenerate it with --print-baseline",
                    path.display()
                ),
            ));
        }
        for raw in fs::read_to_string(path)?.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if let Ok(n) = count.parse::<usize>() {
                allowed.insert((rule.to_string(), file.to_string()), n);
            }
        }
    }

    let mut counts: BTreeMap<(String, String), Vec<&LintFinding>> = BTreeMap::new();
    for f in &report.all_findings {
        counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }

    let mut violations = Vec::new();
    let mut ratchet = Vec::new();
    for ((rule, file), found) in &counts {
        let cap = allowed.remove(&(rule.clone(), file.clone())).unwrap_or(0);
        match found.len().cmp(&cap) {
            std::cmp::Ordering::Greater => {
                violations.extend(found.iter().map(|f| (*f).clone()));
            }
            std::cmp::Ordering::Less => {
                ratchet.push((rule.clone(), file.clone(), found.len(), cap));
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    report.stale_allowances = allowed.into_keys().collect();
    report.violations = violations;
    report.ratchet = ratchet;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> Vec<LintFinding> {
        let mut findings = Vec::new();
        scan_file(rel, src, &mut findings);
        findings
    }

    fn rules(findings: &[LintFinding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn finds_banned_patterns_outside_tests_only() {
        let src = "\
fn lib() {
    let v = maybe().unwrap();
    let w = maybe().expect(\"why\");
    panic!(\"boom\");
}
#[cfg(test)]
mod tests {
    fn t() {
        let v = maybe().unwrap();
        panic!(\"fine in tests\");
    }
}
fn after_tests() {
    let z = maybe().unwrap();
}
";
        let findings = scan("crates/x/src/lib.rs", src);
        assert_eq!(
            rules(&findings),
            vec!["no-unwrap", "no-expect", "no-panic", "no-unwrap"]
        );
        assert_eq!(findings[3].line, 14);
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_fire() {
        let src = "\
fn lib() {
    let a = \"calls .unwrap() and panic!(now)\";
    let b = r#\"raw .expect(\"x\") body\"#;
    // a comment mentioning .unwrap() and panic!(
    /* block comment:
       .expect(\"still a comment\") */
    let c = 'p'; // char literal is not the start of panic!(
}
";
        let findings = scan("crates/x/src/lib.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn bounded_channel_only_fires_on_request_path_crates() {
        let src = "\
fn wire() {
    let (tx, rx) = mpsc::channel();
    let (btx, brx) = mpsc::sync_channel(64);
    let (utx, urx) = unbounded();
    let q = SegQueue::new();
}
";
        let findings = scan("crates/serve/src/lib.rs", src);
        assert_eq!(
            rules(&findings),
            vec![
                "bounded-channel-only",
                "bounded-channel-only",
                "bounded-channel-only"
            ],
            "{findings:?}"
        );
        assert_eq!(findings[0].line, 2);
        // the same source outside the request-path scope is clean
        let elsewhere = scan("crates/trace/src/lib.rs", src);
        assert!(
            !elsewhere.iter().any(|f| f.rule == "bounded-channel-only"),
            "{elsewhere:?}"
        );
    }

    #[test]
    fn multi_line_cfg_test_attribute_exempts_its_block() {
        let src = "\
#[cfg(
    test
)]
mod tests {
    fn t() {
        x().unwrap();
    }
}
fn lib() {
    y().unwrap();
}
";
        let findings = scan("crates/x/src/lib.rs", src);
        assert_eq!(rules(&findings), vec!["no-unwrap"]);
        assert_eq!(findings[0].line, 10);
    }

    #[test]
    fn cfg_not_test_is_not_an_exemption() {
        let src = "\
#[cfg(not(test))]
fn lib() {
    y().unwrap();
}
";
        let findings = scan("crates/x/src/lib.rs", src);
        assert_eq!(rules(&findings), vec!["no-unwrap"]);
    }

    #[test]
    fn crlf_sources_scan_identically() {
        let lf = "fn lib() {\n    a().unwrap();\n}\n";
        let crlf = lf.replace('\n', "\r\n");
        let from_lf = scan("crates/x/src/lib.rs", lf);
        let from_crlf = scan("crates/x/src/lib.rs", &crlf);
        assert_eq!(from_lf, from_crlf);
        assert_eq!(rules(&from_lf), vec!["no-unwrap"]);
        assert!(!from_crlf[0].excerpt.contains('\r'));
    }

    #[test]
    fn index_cast_detection() {
        let hit = scan("crates/x/src/a.rs", "fn f() { let x = arr[i as usize]; }");
        assert_eq!(rules(&hit), vec!["lossy-index-cast"]);
        let hit = scan("crates/x/src/a.rs", "fn f() { buf[(k * 2) as usize] = 0; }");
        assert_eq!(rules(&hit), vec!["lossy-index-cast"]);
        assert!(scan("crates/x/src/a.rs", "fn f() { let x = i as usize; }").is_empty());
        assert!(scan("crates/x/src/a.rs", "fn f() { let y = arr[i]; }").is_empty());
    }

    #[test]
    fn hashmap_rule_scopes_to_runtime_crates() {
        let findings = scan(
            "crates/mapreduce/src/x.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(rules(&findings), vec!["hashmap-state"]);
        assert!(scan(
            "crates/skyline/src/x.rs",
            "use std::collections::HashMap;\n"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_requires_nearby_safety_comment() {
        let bare = "fn f(p: *const u8) { let _ = unsafe { *p }; }\n";
        assert_eq!(
            rules(&scan("crates/x/src/a.rs", bare)),
            vec!["unsafe-needs-safety-comment"]
        );
        let ok = "\
fn f(p: *const u8) {
    // SAFETY: p is non-null and aligned; caller upholds the contract.
    let _ = unsafe { *p };
}
";
        assert!(scan("crates/x/src/a.rs", ok).is_empty());
        let too_far = format!(
            "// SAFETY: way up here.\n{}fn f(p: *const u8) {{ let _ = unsafe {{ *p }}; }}\n",
            "\n".repeat(SAFETY_LOOKBACK_LINES + 1)
        );
        assert_eq!(
            rules(&scan("crates/x/src/a.rs", &too_far)),
            vec!["unsafe-needs-safety-comment"]
        );
    }

    #[test]
    fn wall_clock_scopes_to_runtime_crates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules(&scan("crates/trace/src/sink.rs", src)),
            vec!["no-wall-clock"]
        );
        assert_eq!(
            rules(&scan(
                "crates/skyline/src/x.rs",
                "fn f() { let t = std::time::SystemTime::now(); }\n"
            )),
            vec!["no-wall-clock"]
        );
        // The CLI binary is the sanctioned real-time boundary.
        assert!(scan("src/bin/mrsky.rs", src).is_empty());
        assert!(scan("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn relaxed_ordering_needs_counter_or_justification() {
        let counter = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(scan("crates/x/src/a.rs", counter).is_empty());
        let justified = "\
fn f(b: &AtomicBool) {
    // ORDERING: flag is advisory; a stale read only delays the drain.
    b.store(true, Ordering::Relaxed);
}
";
        assert!(scan("crates/x/src/a.rs", justified).is_empty());
        let bare = "fn f(b: &AtomicBool) { b.store(true, Ordering::Relaxed); }\n";
        assert_eq!(
            rules(&scan("crates/x/src/a.rs", bare)),
            vec!["relaxed-ordering-audit"]
        );
    }

    #[test]
    fn raw_sync_flags_facaded_crates_only() {
        let mutex = "use std::sync::Mutex;\n";
        assert_eq!(
            rules(&scan("crates/chaos/src/a.rs", mutex)),
            vec!["raw-sync-primitive"]
        );
        // Non-facaded crates may use std::sync directly.
        assert!(scan("crates/model/src/a.rs", mutex).is_empty());
        assert!(scan("crates/core/src/a.rs", mutex).is_empty());
        // Ownership-only leaves are fine even in facaded crates.
        assert!(scan("crates/trace/src/a.rs", "use std::sync::Arc;\n").is_empty());
        assert!(scan("crates/trace/src/a.rs", "use std::sync::OnceLock;\n").is_empty());
        // Brace groups flag only the offending first-level segment.
        let group = "use std::sync::{Arc, Mutex};\n";
        let findings = scan("crates/mapreduce/src/a.rs", group);
        assert_eq!(rules(&findings), vec!["raw-sync-primitive"]);
        // Full paths to the atomic module are caught too.
        let atomics = "fn f() { let x = std::sync::atomic::AtomicUsize::new(0); }\n";
        assert_eq!(
            rules(&scan("crates/skyline/src/a.rs", atomics)),
            vec!["raw-sync-primitive"]
        );
        assert_eq!(
            rules(&scan("crates/trace/src/a.rs", "use parking_lot::Mutex;\n")),
            vec!["raw-sync-primitive"]
        );
    }

    #[test]
    fn missing_allowlist_is_an_error_not_a_silent_pass() {
        let dir = std::env::temp_dir().join("mrsky-audit-lint-missing-baseline");
        fs::create_dir_all(&dir).unwrap();
        let err = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(dir.join("lint-baseline.txt")),
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allowlist_ratchets_down() {
        let dir = std::env::temp_dir().join("mrsky-audit-lint-test");
        let src_dir = dir.join("crates/demo/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(src_dir.join("lib.rs"), "fn f() { g().unwrap(); }\n").unwrap();
        let allow = dir.join("baseline.txt");

        // No allowlist: the unwrap is a violation.
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: None,
        })
        .unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(!report.is_clean());

        // Exact allowance: clean, strictly so.
        fs::write(&allow, "no-unwrap crates/demo/src/lib.rs 1\n").unwrap();
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(allow.clone()),
        })
        .unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(report.is_clean_strict());
        assert!(report.ratchet.is_empty());

        // Over-generous allowance: lenient-clean, but strict mode fails
        // and asks to ratchet down.
        fs::write(&allow, "no-unwrap crates/demo/src/lib.rs 5\n").unwrap();
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(allow.clone()),
        })
        .unwrap();
        assert!(report.is_clean());
        assert!(!report.is_clean_strict());
        assert_eq!(report.ratchet.len(), 1);
        assert_eq!(report.ratchet[0].2, 1);
        assert_eq!(report.ratchet[0].3, 5);

        // Stale entry for a file with no findings: also a strict failure.
        fs::write(
            &allow,
            "no-unwrap crates/demo/src/lib.rs 1\nno-panic crates/demo/src/gone.rs 2\n",
        )
        .unwrap();
        let report = run_lint(&LintConfig {
            root: dir.clone(),
            allowlist: Some(allow),
        })
        .unwrap();
        assert!(report.is_clean());
        assert!(!report.is_clean_strict());
        assert_eq!(report.stale_allowances.len(), 1);

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_output_round_trips() {
        let report = LintReport {
            all_findings: vec![
                LintFinding {
                    rule: "no-unwrap",
                    file: "a.rs".into(),
                    line: 1,
                    excerpt: String::new(),
                },
                LintFinding {
                    rule: "no-unwrap",
                    file: "a.rs".into(),
                    line: 9,
                    excerpt: String::new(),
                },
                LintFinding {
                    rule: "no-panic",
                    file: "b.rs".into(),
                    line: 3,
                    excerpt: String::new(),
                },
            ],
            ..LintReport::default()
        };
        let base = report.baseline();
        assert!(base.contains("no-unwrap a.rs 2"));
        assert!(base.contains("no-panic b.rs 1"));
    }
}
