//! Structured diagnostics with stable codes.
//!
//! Every check in the audit emits [`Diagnostic`]s carrying a stable
//! [`Code`] (`MRA001`…), a [`Severity`], and a human-readable message, so
//! that CI can gate on exact codes and the allowlist can reference them
//! without string-matching messages. The full code table is in
//! `DESIGN.md` and printed by `mrsky-audit codes`.

use std::fmt;

/// Stable diagnostic codes. Never renumber — retire codes instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// A probe point mapped to no partition or to an out-of-range id.
    PartitionNotTotal,
    /// A partition id can never be produced for any point of the domain.
    UnreachablePartition,
    /// Axis boundaries are out of order (not monotonically increasing).
    NonMonotonicBoundaries,
    /// An axis boundary lies outside the axis domain.
    BoundaryOutsideDomain,
    /// Cell-index linearization can overflow `usize`, or the boundary
    /// lattice disagrees with the partitioner's own partition count.
    IndexOverflow,
    /// The dominance-based cell-pruning mask is not conservative.
    UnsoundPruning,
    /// Reducer count is zero or wastes reduce slots against the partition
    /// count.
    ReducerMismatch,
    /// The simulated cluster, scheduler, or cost model cannot make
    /// progress (zero slots, bad thresholds, non-finite costs).
    ZeroCapacityCluster,
    /// Two partitions both claim a boundary point (ownership at a
    /// boundary disagrees with the right-closed convention).
    DisjointnessViolation,
    /// An axis has a zero-width interval (duplicate boundaries or a
    /// boundary pinned to the domain edge): some partitions will be empty.
    DegenerateAxis,
    /// Far more partitions than reduce slots: the reduce phase runs in
    /// many waves and per-task startup dominates.
    ExcessPartitionWaves,
    /// Grid pruning was requested but the fitted partitioner can never
    /// prune (prefix grid or non-grid scheme) — silently disabled.
    PruningUnavailable,
    /// The filter/witness-pruning configuration would drop a true skyline
    /// point (or the filter is configured off while pruning depends on it).
    UnsoundFilter,
}

impl Code {
    /// The stable wire identifier, e.g. `MRA003`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::PartitionNotTotal => "MRA001",
            Code::UnreachablePartition => "MRA002",
            Code::NonMonotonicBoundaries => "MRA003",
            Code::BoundaryOutsideDomain => "MRA004",
            Code::IndexOverflow => "MRA005",
            Code::UnsoundPruning => "MRA006",
            Code::ReducerMismatch => "MRA007",
            Code::ZeroCapacityCluster => "MRA008",
            Code::DisjointnessViolation => "MRA009",
            Code::DegenerateAxis => "MRA010",
            Code::ExcessPartitionWaves => "MRA011",
            Code::PruningUnavailable => "MRA012",
            Code::UnsoundFilter => "MRA013",
        }
    }

    /// One-line description for `mrsky-audit codes` and the docs table.
    pub fn description(self) -> &'static str {
        match self {
            Code::PartitionNotTotal => {
                "partition function is not total: a probe point maps to no in-range partition"
            }
            Code::UnreachablePartition => "a partition id is unreachable for every domain point",
            Code::NonMonotonicBoundaries => "axis boundaries are not monotonically increasing",
            Code::BoundaryOutsideDomain => "an axis boundary lies outside its domain",
            Code::IndexOverflow => {
                "cell-index linearization overflows usize or disagrees with the partition count"
            }
            Code::UnsoundPruning => "dominance-based cell pruning would drop undominated cells",
            Code::ReducerMismatch => "reducer count is zero or mismatched with the partition count",
            Code::ZeroCapacityCluster => "cluster/scheduler/cost configuration cannot run any task",
            Code::DisjointnessViolation => {
                "boundary ownership violates the right-closed interval convention"
            }
            Code::DegenerateAxis => "an axis interval has zero width: its partitions stay empty",
            Code::ExcessPartitionWaves => "partition count far exceeds reduce slots (many waves)",
            Code::PruningUnavailable => "grid pruning requested but unavailable for this fit",
            Code::UnsoundFilter => {
                "filter/witness-pruning configuration would drop a true skyline point"
            }
        }
    }

    /// Every defined code, in numeric order.
    pub fn all() -> &'static [Code] {
        &[
            Code::PartitionNotTotal,
            Code::UnreachablePartition,
            Code::NonMonotonicBoundaries,
            Code::BoundaryOutsideDomain,
            Code::IndexOverflow,
            Code::UnsoundPruning,
            Code::ReducerMismatch,
            Code::ZeroCapacityCluster,
            Code::DisjointnessViolation,
            Code::DegenerateAxis,
            Code::ExcessPartitionWaves,
            Code::PruningUnavailable,
            Code::UnsoundFilter,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is. `Error` findings make [`AuditReport::has_errors`]
/// true and block `SkylineJob::run` unless forced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Plan is unsound or cannot run: refuse to execute.
    Error,
    /// Plan runs but wastes resources or hides a likely mistake.
    Warning,
    /// Observation that may help tuning.
    Info,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the plan validator.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Human-readable explanation with the offending values inlined.
    pub message: String,
    /// What the finding is about, e.g. `axis 1` or `partition 7`.
    pub subject: String,
}

impl Diagnostic {
    pub fn new(
        code: Code,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity,
            message: message.into(),
            subject: subject.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.subject, self.message
        )
    }
}

/// The full result of auditing one plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Number of probe points exercised while proving totality/disjointness.
    pub probes: usize,
    /// Scheme name of the audited partitioner.
    pub scheme: String,
}

impl AuditReport {
    /// `true` if any finding has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with the given code, in emission order.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Sorts findings by severity (errors first), then code.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| a.severity.cmp(&b.severity).then(a.code.cmp(&b.code)));
    }

    /// Multi-line human rendering, one finding per line.
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit of `{}` plan: {} finding(s) over {} probe point(s)",
            self.scheme,
            self.diagnostics.len(),
            self.probes
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        if self.diagnostics.is_empty() {
            out.push_str("  plan is clean\n");
        }
        out
    }

    /// Machine-readable rendering (same hand-rolled JSON style as the
    /// report writer in `mr-skyline`, which this crate cannot depend on).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"scheme\":{},\"probes\":{},\"errors\":{},\"diagnostics\":[",
            json_string(&self.scheme),
            self.probes,
            self.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"subject\":{},\"message\":{}}}",
                d.code,
                d.severity,
                json_string(&d.subject),
                json_string(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = Code::all();
        let mut seen = std::collections::BTreeSet::new();
        for c in all {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("MRA"));
            assert!(!c.description().is_empty());
        }
        assert_eq!(Code::PartitionNotTotal.as_str(), "MRA001");
        assert_eq!(Code::PruningUnavailable.as_str(), "MRA012");
        assert_eq!(Code::UnsoundFilter.as_str(), "MRA013");
    }

    #[test]
    fn report_error_detection_and_render() {
        let mut r = AuditReport {
            scheme: "angle".into(),
            probes: 42,
            ..AuditReport::default()
        };
        assert!(!r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            Code::DegenerateAxis,
            Severity::Warning,
            "axis 0",
            "duplicate boundary 0.5",
        ));
        assert!(!r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            Code::PartitionNotTotal,
            Severity::Error,
            "probe (0.1, 0.2)",
            "mapped to id 9 of 4",
        ));
        assert!(r.has_errors());
        r.sort();
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        let text = r.render_text();
        assert!(text.contains("MRA001"));
        assert!(text.contains("MRA010"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let r = AuditReport {
            scheme: "grid".into(),
            probes: 1,
            diagnostics: vec![Diagnostic::new(
                Code::IndexOverflow,
                Severity::Error,
                "lattice",
                "says \"too big\"\n",
            )],
        };
        let j = r.to_json();
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\\\"too big\\\"\\n"));
        assert!(j.contains("\"code\":\"MRA005\""));
    }
}
