//! A minimal Rust lexer for the lint pass.
//!
//! `mrsky-audit lint` used to match banned patterns against
//! string-stripped *lines*, which broke on raw strings, multi-line
//! literals, lifetimes vs char literals, and CRLF sources. This module
//! tokenizes whole files instead so rules can match token *sequences*
//! and look at real comments (for `SAFETY:` / `ORDERING:`
//! justifications) without ever firing inside a literal.
//!
//! The lexer is deliberately small: it distinguishes identifiers,
//! lifetimes, string/char/number literals, single-character
//! punctuation, and comments. That is enough for every lint rule; it
//! does not attempt full Rust lexical fidelity (e.g. it treats a raw
//! identifier `r#match` as the punct `#` between two idents, which no
//! rule cares about).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `panic`, `HashMap`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included in `text`).
    Lifetime,
    /// Any string literal: `"..."`, `b"..."`, `r"..."`, `r#"..."#`, ...
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'a'`.
    Char,
    /// A numeric literal (integers and floats, suffixes included).
    Number,
    /// A single punctuation character.
    Punct,
    /// A `// ...` comment (text includes the slashes, excludes the newline).
    LineComment,
    /// A `/* ... */` comment, nesting-aware (text includes delimiters).
    BlockComment,
}

impl TokenKind {
    /// Comments are skipped by pattern rules but searched for
    /// `SAFETY:` / `ORDERING:` justifications.
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token, borrowing its text from the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    pub text: &'a str,
}

/// Tokenizes `src`. Never fails: malformed trailing input degrades to
/// punct/ident tokens rather than an error, because the lint pass must
/// keep going on files rustc would reject.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: usize,
    out: Vec<Token<'a>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte length of the UTF-8 character starting with `b`.
fn char_len(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b >> 5 == 0b110 => 2,
        _ if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.i < self.bytes.len() {
            let start = self.i;
            let line = self.line;
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                // `\r` covers CRLF sources; the `\n` right after it
                // still advances the line counter.
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
                        self.i += 1;
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'"' => {
                    self.escaped_string();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.quote(start, line),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ if is_ident_start(b) => self.ident_or_literal_prefix(start, line),
                _ => {
                    self.i += char_len(b);
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize) {
        self.out.push(Token {
            kind,
            line,
            text: &self.src[start..self.i],
        });
    }

    /// Consumes a nesting-aware `/* ... */`, `self.i` on the `/*`.
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.i < self.bytes.len() {
            match (self.bytes[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                    if depth == 0 {
                        return;
                    }
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Consumes a `"..."` with `\` escapes, `self.i` on the opening quote.
    fn escaped_string(&mut self) {
        self.i += 1;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Consumes `r"..."` / `r#"..."#` bodies: no escapes, the literal
    /// ends at `"` followed by `hashes` hash marks. `self.i` is on the
    /// opening quote.
    fn raw_string(&mut self, hashes: usize) {
        self.i += 1;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                    self.i += 1;
                    if closed {
                        self.i += hashes;
                        return;
                    }
                }
                _ => self.i += 1,
            }
        }
    }

    /// Disambiguates `'` between a lifetime and a char literal.
    fn quote(&mut self, start: usize, line: usize) {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: '\n', '\'', '\u{1F600}'.
                self.i += 3; // quote, backslash, escaped byte
                while self.i < self.bytes.len() && self.bytes[self.i] != b'\'' {
                    self.i += 1;
                }
                self.i = (self.i + 1).min(self.bytes.len());
                self.push(TokenKind::Char, start, line);
            }
            Some(b) if is_ident_start(b) => {
                // Either 'a' (char) or 'a / 'static (lifetime): scan the
                // ident run and look for a closing quote right after it.
                let mut j = self.i + 1;
                while j < self.bytes.len() && is_ident_char(self.bytes[j]) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push(TokenKind::Char, start, line);
                } else {
                    self.i = j;
                    self.push(TokenKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '{' or '['.
                self.i += 2;
                while self.i < self.bytes.len() && self.bytes[self.i] != b'\'' {
                    self.i += char_len(self.bytes[self.i]);
                }
                self.i = (self.i + 1).min(self.bytes.len());
                self.push(TokenKind::Char, start, line);
            }
            None => {
                self.i += 1;
                self.push(TokenKind::Punct, start, line);
            }
        }
    }

    fn number(&mut self) {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            if is_ident_char(b) {
                self.i += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // Float like 1.5 — but never swallow `..` range syntax.
                self.i += 1;
            } else {
                break;
            }
        }
    }

    /// An identifier — unless it is the prefix of a string/char literal
    /// (`r"..."`, `b"..."`, `br#"..."#`, `b'x'`).
    fn ident_or_literal_prefix(&mut self, start: usize, line: usize) {
        while self.i < self.bytes.len() && is_ident_char(self.bytes[self.i]) {
            self.i += 1;
        }
        let ident = &self.src[start..self.i];
        let raw_prefix = matches!(ident, "r" | "br" | "cr");
        let plain_prefix = matches!(ident, "b" | "c");
        match self.bytes.get(self.i) {
            Some(b'"') if raw_prefix => {
                self.raw_string(0);
                self.push(TokenKind::Str, start, line);
            }
            Some(b'"') if plain_prefix => {
                self.escaped_string();
                self.push(TokenKind::Str, start, line);
            }
            Some(b'#') if raw_prefix => {
                let mut hashes = 0;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.i += hashes;
                    self.raw_string(hashes);
                    self.push(TokenKind::Str, start, line);
                } else {
                    // A raw identifier like `r#match`: emit the prefix
                    // ident; the `#` lexes as punct on the next pass.
                    self.push(TokenKind::Ident, start, line);
                }
            }
            Some(b'\'') if ident == "b" && self.peek(1) != Some(b'\'') => {
                // Byte char b'x' — but not `b'` followed by a lifetime
                // position (impossible in valid Rust after an ident).
                let q = self.i;
                self.quote(q, line);
                // quote() pushed a Char token for just 'x'; widen it to
                // include the b prefix.
                if let Some(last) = self.out.last_mut() {
                    last.text = &self.src[start..q + last.text.len()];
                }
            }
            _ => self.push(TokenKind::Ident, start, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = tokenize("fn f() {\n  x.y\n}\n");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 1, 1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(toks[5].text, "x");
        assert_eq!(toks[6].kind, TokenKind::Punct);
    }

    #[test]
    fn strings_swallow_their_contents() {
        let toks = kinds("let s = \".unwrap() // not a comment\";");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains(".unwrap()")));
        assert!(!toks.iter().any(|(k, _)| k.is_comment()));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds("let s = r#\"panic!(\"inner\")\"#; done");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|(_, t)| *t == "done"));
        let toks = kinds("r\"no hashes\" b\"bytes\" br#\"both\"#");
        assert!(toks.iter().all(|(k, _)| *k == TokenKind::Str));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { m['{'] = '\\n'; let l: &'static str; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'{'", "'\\n'"]);
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let toks = tokenize("a /* one /* two */ still */ b\nc");
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert_eq!(toks[2].text, "b");
        assert_eq!(toks[3].line, 2);
    }

    #[test]
    fn crlf_sources_lex_cleanly() {
        let toks = tokenize("fn f() {\r\n  g();\r\n}\r\n");
        assert!(toks.iter().all(|t| !t.text.contains('\r')));
        let g = toks.iter().find(|t| t.text == "g");
        assert_eq!(g.map(|t| t.line), Some(2));
    }

    #[test]
    fn byte_char_and_numbers() {
        let toks = kinds("let x = b'a'; let y = 0x00ff_u64; let z = 1.5;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && *t == "b'a'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "0x00ff_u64"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "1.5"));
    }

    #[test]
    fn range_syntax_is_not_a_float() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "10"));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Punct && *t == ".")
                .count(),
            2
        );
    }
}
