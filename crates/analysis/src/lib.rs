//! `mrsky-audit` — plan-time static analysis for the MR-skyline suite.
//!
//! Two layers:
//!
//! 1. **Plan validator** ([`plan::audit_plan`]): given a fitted space
//!    partitioner and the runtime configuration it will execute under,
//!    proves partition totality/disjointness by interval reasoning over
//!    the boundary lattice plus exhaustive boundary probing, verifies
//!    pruning conservativeness, and cross-checks scheduler/cluster/cost
//!    settings. Findings carry stable `MRA0xx` codes ([`diag::Code`]) so
//!    both the driver (`SkylineJob::run` refuses error-level plans) and CI
//!    can gate on them.
//! 2. **Source lint pass** ([`lint::run_lint`]): lexes workspace sources
//!    ([`lexer`]) and matches banned *token sequences*
//!    (`unwrap`/`expect`/`panic!` in library code, lossy index casts,
//!    non-deterministic `HashMap` state, wall-clock reads, undocumented
//!    `unsafe`, unjustified `Ordering::Relaxed`, raw `std::sync` in the
//!    model-checked crates) against a ratchet-down allowlist.
//!
//! The `mrsky-audit` binary fronts both layers for CI and ad-hoc use.

pub mod diag;
pub mod lexer;
pub mod lint;
pub mod plan;

pub use diag::{AuditReport, Code, Diagnostic, Severity};
pub use lint::{run_lint, LintConfig, LintReport};
pub use plan::{audit_plan, PlanSpec};
